#include "minos/obs/trace.h"

#include <utility>

#include "gtest/gtest.h"
#include "minos/obs/metrics.h"
#include "minos/util/clock.h"

namespace minos::obs {
namespace {

TEST(TraceSpanTest, RecordsSimClockDurations) {
  SimClock clock(100);
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("fetch");
    clock.Advance(250);
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  const SpanRecord& rec = tracer.spans()[0];
  EXPECT_EQ(rec.name, "fetch");
  EXPECT_EQ(rec.start_us, 100);
  EXPECT_EQ(rec.end_us, 350);
  EXPECT_EQ(rec.duration_us(), 250);
  EXPECT_EQ(rec.depth, 0);
  EXPECT_EQ(rec.parent, -1);
  EXPECT_EQ(tracer.open_depth(), 0);
}

TEST(TraceSpanTest, NestedSpansTrackDepthAndParent) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    TraceSpan outer = tracer.StartSpan("open");
    clock.Advance(10);
    {
      TraceSpan inner = tracer.StartSpan("enter");
      EXPECT_EQ(tracer.open_depth(), 2);
      clock.Advance(5);
    }
    clock.Advance(10);
    TraceSpan sibling = tracer.StartSpan("tour");
    clock.Advance(1);
    sibling.End();
  }
  // Records are kept in start order: open, enter, tour.
  ASSERT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.spans()[0].name, "open");
  EXPECT_EQ(tracer.spans()[0].depth, 0);
  EXPECT_EQ(tracer.spans()[0].parent, -1);
  EXPECT_EQ(tracer.spans()[1].name, "enter");
  EXPECT_EQ(tracer.spans()[1].depth, 1);
  EXPECT_EQ(tracer.spans()[1].parent, 0);
  EXPECT_EQ(tracer.spans()[2].name, "tour");
  EXPECT_EQ(tracer.spans()[2].depth, 1);
  EXPECT_EQ(tracer.spans()[2].parent, 0);
  // The outer span closed last and covers the whole interval.
  EXPECT_EQ(tracer.spans()[0].duration_us(), 26);
  EXPECT_EQ(tracer.spans()[1].duration_us(), 5);
}

TEST(TraceSpanTest, EndIsIdempotentAndMoveSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan span = tracer.StartSpan("a");
  clock.Advance(3);
  span.End();
  clock.Advance(100);
  span.End();  // No-op.
  TraceSpan moved = std::move(span);
  moved.End();  // Moved-from source already finished; still a no-op.
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].duration_us(), 3);

  // A live span survives a move and finishes exactly once.
  TraceSpan b = tracer.StartSpan("b");
  TraceSpan b2 = std::move(b);
  clock.Advance(7);
  b2.End();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].duration_us(), 7);
}

TEST(TraceSpanTest, MirrorsDurationsIntoRegistryHistogram) {
  SimClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);
  tracer.set_metrics_registry(&registry);
  for (int i = 1; i <= 3; ++i) {
    TraceSpan span = tracer.StartSpan("page_turn");
    clock.Advance(i * 10);
  }
  Histogram* h = registry.histogram("span.page_turn_us");
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 60.0);
}

TEST(TraceSpanTest, ClearWhileOpenIsSafe) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan span = tracer.StartSpan("orphan");
  tracer.Clear();
  EXPECT_EQ(tracer.open_depth(), 0);
  span.End();  // Must not touch the cleared record list.
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceSpanTest, JsonRoundTrip) {
  SimClock clock(7);
  Tracer tracer(&clock);
  {
    TraceSpan outer = tracer.StartSpan("open \"quoted\"");
    clock.Advance(11);
    TraceSpan inner = tracer.StartSpan("enter");
    clock.Advance(2);
    inner.End();
    clock.Advance(1);
  }
  const std::string json = tracer.ToJson();
  auto parsed = Tracer::FromJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), tracer.spans().size());
  for (size_t i = 0; i < parsed->size(); ++i) {
    const SpanRecord& a = tracer.spans()[i];
    const SpanRecord& b = (*parsed)[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.start_us, b.start_us);
    EXPECT_EQ(a.end_us, b.end_us);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.parent, b.parent);
  }
}

TEST(TraceSpanTest, NullClockReadsZero) {
  Tracer tracer;
  {
    TraceSpan span = tracer.StartSpan("no_clock");
  }
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].start_us, 0);
  EXPECT_EQ(tracer.spans()[0].end_us, 0);
}

TEST(TraceSpanTest, ExplicitParentIgnoresAmbientStack) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan root = tracer.StartSpan("root");
  const TraceContext root_ctx = root.context();
  TraceSpan ambient = tracer.StartSpan("ambient");
  // Started against root's context while "ambient" is the innermost
  // open ambient span: the explicit parent wins.
  TraceSpan child = tracer.StartSpan("child", root_ctx);
  EXPECT_EQ(child.context().trace_id, root_ctx.trace_id);
  EXPECT_EQ(child.context().parent_span_id, root_ctx.span_id);
  EXPECT_EQ(child.context().depth, root_ctx.depth + 1);
  // ...and the explicit span never joins the ambient stack.
  EXPECT_EQ(tracer.current_context().span_id, ambient.context().span_id);
  child.End();
  ambient.End();
  root.End();

  // An invalid parent context roots a fresh trace.
  TraceSpan fresh = tracer.StartSpan("fresh", TraceContext{});
  EXPECT_NE(fresh.context().trace_id, root_ctx.trace_id);
  EXPECT_EQ(fresh.context().parent_span_id, 0u);
}

TEST(TraceSpanTest, MaybeStartSpanRequiresTracerAndValidContext) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan root = tracer.StartSpan("root");
  EXPECT_FALSE(MaybeStartSpan(nullptr, "x", root.context()).has_value());
  EXPECT_FALSE(MaybeStartSpan(&tracer, "x", TraceContext{}).has_value());
  EXPECT_FALSE(ContextOf(std::nullopt).valid());
  std::optional<TraceSpan> child =
      MaybeStartSpan(&tracer, "x", root.context());
  ASSERT_TRUE(child.has_value());
  EXPECT_EQ(child->context().parent_span_id, root.context().span_id);
  EXPECT_TRUE(ContextOf(child).valid());
}

TEST(TraceSpanTest, RingBufferEvictsOldestAndCountsDrops) {
  SimClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);
  tracer.set_metrics_registry(&registry);
  tracer.set_capacity(4);
  for (int i = 0; i < 7; ++i) {
    TraceSpan span = tracer.StartSpan("s" + std::to_string(i));
    clock.Advance(1);
  }
  EXPECT_EQ(tracer.spans().size(), 4u);
  EXPECT_EQ(tracer.dropped_spans(), 3u);
  EXPECT_EQ(registry.counter("trace.dropped_spans")->value(), 3);
  // OrderedSpans unwinds the ring: oldest surviving record first.
  const std::vector<SpanRecord> ordered = tracer.OrderedSpans();
  ASSERT_EQ(ordered.size(), 4u);
  EXPECT_EQ(ordered.front().name, "s3");
  EXPECT_EQ(ordered.back().name, "s6");
  // ToJson serializes the wrapped buffer in the same order, and the
  // round trip through FromJson preserves it.
  auto parsed = Tracer::FromJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 4u);
  for (size_t i = 0; i < parsed->size(); ++i) {
    EXPECT_EQ((*parsed)[i].name, ordered[i].name);
    EXPECT_EQ((*parsed)[i].span_id, ordered[i].span_id);
    EXPECT_EQ((*parsed)[i].start_us, ordered[i].start_us);
  }
}

TEST(TraceSpanTest, RingEvictionMakesStaleHandlesInert) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_capacity(2);
  TraceSpan old_span = tracer.StartSpan("old");
  {
    TraceSpan a = tracer.StartSpan("a");
    TraceSpan b = tracer.StartSpan("b");  // Evicts "old".
    clock.Advance(5);
  }
  clock.Advance(100);
  old_span.End();     // Record reclaimed: must be a no-op, not a crash.
  old_span.AddTag("late", "1");
  const std::vector<SpanRecord> ordered = tracer.OrderedSpans();
  ASSERT_EQ(ordered.size(), 2u);
  EXPECT_EQ(ordered[0].name, "a");
  EXPECT_EQ(ordered[1].name, "b");
}

// --- Head sampling ----------------------------------------------------

TEST(TraceSamplingTest, RateZeroSuppressesEveryRootCompletely) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.SetSampleRate(0.0);
  for (int i = 0; i < 3; ++i) {
    TraceSpan root = tracer.StartSpan("root");
    EXPECT_FALSE(root.context().valid());
    clock.Advance(10);
    root.AddTag("k", "v");  // Must be inert, not crash.
    {
      // Ambient children of a suppressed root are suppressed too.
      TraceSpan child = tracer.StartSpan("child");
      EXPECT_FALSE(child.context().valid());
      EXPECT_FALSE(tracer.current_context().valid());
    }
    root.End();
  }
  EXPECT_TRUE(tracer.spans().empty());  // Zero spans, zero orphans.
  EXPECT_EQ(tracer.sampled_out(), 3u);
  EXPECT_EQ(tracer.open_depth(), 0);  // Marker push/pop balanced.
}

TEST(TraceSamplingTest, HalfRateKeepsEveryOtherRootDeterministically) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.SetSampleRate(0.5);
  std::vector<bool> kept;
  for (int i = 0; i < 6; ++i) {
    TraceSpan root = tracer.StartSpan("root", TraceContext{});
    kept.push_back(root.context().valid());
    root.End();
  }
  // The error accumulator admits the 2nd, 4th, 6th root: exact halves,
  // no randomness, so a replayed scenario samples the same traces.
  EXPECT_EQ(kept, (std::vector<bool>{false, true, false, true, false,
                                     true}));
  EXPECT_EQ(tracer.spans().size(), 3u);
  EXPECT_EQ(tracer.sampled_out(), 3u);
}

TEST(TraceSamplingTest, ValidParentBypassesSamplingAndRateOneKeepsAll) {
  SimClock clock;
  Tracer tracer(&clock);
  TraceSpan admitted = tracer.StartSpan("root");  // Rate 1: kept.
  const TraceContext ctx = admitted.context();
  EXPECT_TRUE(ctx.valid());
  admitted.End();
  tracer.SetSampleRate(0.0);
  // A child of an already-admitted trace always records — its root made
  // the sampling decision for the whole tree.
  TraceSpan child = tracer.StartSpan("child", ctx);
  EXPECT_TRUE(child.context().valid());
  child.End();
  EXPECT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[1].parent_span_id, ctx.span_id);
}

TEST(TraceSamplingTest, SuppressedAmbientNestingStaysBalanced) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.SetSampleRate(0.0);
  {
    TraceSpan a = tracer.StartSpan("a");
    {
      TraceSpan b = tracer.StartSpan("b");
      {
        TraceSpan c = tracer.StartSpan("c");
        EXPECT_FALSE(tracer.current_context().valid());
      }
    }
  }
  EXPECT_EQ(tracer.open_depth(), 0);
  // Suppression markers are not parents: a later admitted root is still
  // a root.
  tracer.SetSampleRate(1.0);
  TraceSpan fresh = tracer.StartSpan("fresh");
  EXPECT_EQ(fresh.context().parent_span_id, 0u);
  fresh.End();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].depth, 0);
}

TEST(TraceSamplingTest, ClearResetsAccumulatorAndCounter) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.SetSampleRate(0.5);
  tracer.StartSpan("a").End();  // Suppressed (accumulator at 0.5).
  EXPECT_EQ(tracer.sampled_out(), 1u);
  tracer.Clear();
  EXPECT_EQ(tracer.sampled_out(), 0u);
  // The accumulator restarted too: the replay makes the same decisions.
  tracer.StartSpan("a").End();
  EXPECT_EQ(tracer.sampled_out(), 1u);
  tracer.StartSpan("b").End();
  EXPECT_EQ(tracer.spans().size(), 1u);
}

TEST(SanitizeSpanNameTest, StripsDigitRunsIntoIdTag) {
  std::string ids;
  EXPECT_EQ(SanitizeSpanName("open#42", &ids), "open#%id");
  EXPECT_EQ(ids, "42");
  ids.clear();
  EXPECT_EQ(SanitizeSpanName("tour#7.page12", &ids), "tour#%id.page%id");
  EXPECT_EQ(ids, "7,12");
  EXPECT_EQ(SanitizeSpanName("no_digits"), "no_digits");
  EXPECT_EQ(SanitizeSpanName("123"), "%id");
}

TEST(TraceSpanTest, MetricCardinalityBoundedAcrossObjectIds) {
  SimClock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);
  tracer.set_metrics_registry(&registry);
  for (int id = 1; id <= 40; ++id) {
    TraceSpan span = tracer.StartSpan("open#" + std::to_string(id));
    clock.Advance(2);
  }
  // Forty distinct object ids collapse into one histogram; the ids
  // survive as a %id tag on each record instead.
  const MetricsSnapshot snap = registry.Snapshot();
  size_t span_histograms = 0;
  for (const HistogramSummary& h : snap.histograms) {
    if (h.name.rfind("span.", 0) == 0) ++span_histograms;
  }
  EXPECT_EQ(span_histograms, 1u);
  const HistogramSummary* h = snap.FindHistogram("span.open#%id_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 40);
  const std::string* tag = tracer.spans().front().FindTag("%id");
  ASSERT_NE(tag, nullptr);
  EXPECT_EQ(*tag, "1");
}

TEST(TraceSpanTest, KeepsSlowestRootTracesAsExemplars) {
  SimClock clock;
  Tracer tracer(&clock);
  tracer.set_exemplar_capacity(2);
  for (Micros d : {10, 50, 30, 40}) {
    TraceSpan root = tracer.StartSpan("req");
    TraceSpan child = tracer.StartSpan("work");
    clock.Advance(d);
    child.End();
    root.End();
  }
  ASSERT_EQ(tracer.exemplars().size(), 2u);
  EXPECT_EQ(tracer.exemplars()[0].duration_us, 50);
  EXPECT_EQ(tracer.exemplars()[1].duration_us, 40);
  // An exemplar snapshots the whole trace, not just the root.
  EXPECT_EQ(tracer.exemplars()[0].spans.size(), 2u);
  EXPECT_EQ(tracer.exemplars()[0].root_name, "req");
}

TEST(TraceSpanTest, ChromeTraceEmitsCompleteEvents) {
  SimClock clock(50);
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("fetch");
    span.AddTag("shard", static_cast<int64_t>(3));
    clock.Advance(25);
  }
  const std::string chrome = tracer.ToChromeTrace();
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\":\"fetch\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ts\":50"), std::string::npos);
  EXPECT_NE(chrome.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(chrome.find("\"shard\":\"3\""), std::string::npos);
}

TEST(TraceSpanTest, ToJsonCarriesMetaHeader) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("work");
    clock.Advance(9);
  }
  Tracer::TraceMeta meta;
  meta.bench = "unit \"bench\"";
  meta.measured_us = 9;
  const std::string json = tracer.ToJson(meta);
  EXPECT_NE(json.find("\"schema\":\"minos.trace.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bench\":\"unit \\\"bench\\\"\""),
            std::string::npos);
  EXPECT_NE(json.find("\"measured_us\":9"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
}

TEST(TraceSpanTest, FromJsonRejectsMalformedDocuments) {
  // None of these may crash; all must return a Status.
  EXPECT_FALSE(Tracer::FromJson("").ok());
  EXPECT_FALSE(Tracer::FromJson("{").ok());
  EXPECT_FALSE(Tracer::FromJson("[]").ok());
  EXPECT_FALSE(Tracer::FromJson("42").ok());
  // Wrong or missing schema tag.
  EXPECT_FALSE(
      Tracer::FromJson("{\"schema\":\"minos.metrics.v1\",\"spans\":[]}")
          .ok());
  EXPECT_FALSE(Tracer::FromJson("{\"spans\":[]}").ok());
  // Missing or malformed spans.
  EXPECT_FALSE(Tracer::FromJson("{\"schema\":\"minos.trace.v1\"}").ok());
  EXPECT_FALSE(
      Tracer::FromJson("{\"schema\":\"minos.trace.v1\",\"spans\":[7]}")
          .ok());
  EXPECT_FALSE(Tracer::FromJson("{\"schema\":\"minos.trace.v1\","
                                "\"spans\":[{\"name\":7}]}")
                   .ok());
  EXPECT_FALSE(Tracer::FromJson("{\"schema\":\"minos.trace.v1\","
                                "\"spans\":[{\"name\":\"a\","
                                "\"start_us\":\"late\"}]}")
                   .ok());
  EXPECT_FALSE(Tracer::FromJson("{\"schema\":\"minos.trace.v1\","
                                "\"spans\":[{\"name\":\"a\","
                                "\"tags\":[1,2]}]}")
                   .ok());
  EXPECT_FALSE(Tracer::FromJson("{\"schema\":\"minos.trace.v1\","
                                "\"spans\":[{\"name\":\"a\","
                                "\"tags\":{\"k\":7}}]}")
                   .ok());
}

TEST(TraceSpanTest, FromJsonRoundTripsTagsAndEscapes) {
  SimClock clock;
  Tracer tracer(&clock);
  {
    TraceSpan span = tracer.StartSpan("fetch \"q\" \\ path");
    span.AddTag("outcome", "ok \"quoted\"");
    span.AddTag("shard", static_cast<int64_t>(2));
    clock.Advance(4);
  }
  auto parsed = Tracer::FromJson(tracer.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].name, "fetch \"q\" \\ path");
  ASSERT_EQ((*parsed)[0].tags.size(), 2u);
  const std::string* outcome = (*parsed)[0].FindTag("outcome");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(*outcome, "ok \"quoted\"");
}

}  // namespace
}  // namespace minos::obs
