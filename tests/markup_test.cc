#include "minos/text/markup.h"

#include <gtest/gtest.h>

namespace minos::text {
namespace {

constexpr char kSample[] = R"(.TITLE The MINOS Report
.ABSTRACT
This paper describes the system.
.CHAPTER Introduction
.PP
Multimedia data bases become feasible. They need browsing.
.PP
Voice is *important* for _communication_ today.
.SECTION Motivation
Workstations offer high resolution displays.
.CHAPTER Design
.PP
The presentation manager resides in the workstation.
.REFERENCES
Christodoulakis 1985.
)";

TEST(MarkupTest, ParsesTitle) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  const auto& titles = doc->Components(LogicalUnit::kTitle);
  ASSERT_EQ(titles.size(), 1u);
  EXPECT_EQ(titles[0].title, "The MINOS Report");
}

TEST(MarkupTest, ParsesChaptersWithNames) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  const auto& chapters = doc->Components(LogicalUnit::kChapter);
  ASSERT_EQ(chapters.size(), 2u);
  EXPECT_EQ(chapters[0].title, "Introduction");
  EXPECT_EQ(chapters[1].title, "Design");
  EXPECT_LT(chapters[0].span.begin, chapters[1].span.begin);
}

TEST(MarkupTest, ChapterSpansCoverTheirContent) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  const auto& chapters = doc->Components(LogicalUnit::kChapter);
  const auto& sections = doc->Components(LogicalUnit::kSection);
  ASSERT_EQ(sections.size(), 1u);
  // The Motivation section sits inside the Introduction chapter.
  EXPECT_GE(sections[0].span.begin, chapters[0].span.begin);
  EXPECT_LE(sections[0].span.end, chapters[0].span.end);
}

TEST(MarkupTest, ParsesAbstractAndReferences) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Components(LogicalUnit::kAbstract).size(), 1u);
  EXPECT_EQ(doc->Components(LogicalUnit::kReferences).size(), 1u);
}

TEST(MarkupTest, ParagraphCount) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  // Abstract body, 2 in Introduction, 1 in Motivation (implicit),
  // 1 in Design, 1 in References.
  EXPECT_EQ(doc->Components(LogicalUnit::kParagraph).size(), 6u);
}

TEST(MarkupTest, EmphasisMarkersStripped) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->contents().find('*'), std::string::npos);
  EXPECT_EQ(doc->contents().find('_'), std::string::npos);
  ASSERT_EQ(doc->emphasis().size(), 2u);
  const auto& bold = doc->emphasis()[0];
  EXPECT_EQ(bold.kind, Emphasis::kBold);
  EXPECT_EQ(doc->contents().substr(bold.span.begin, bold.span.length()),
            "important");
  const auto& under = doc->emphasis()[1];
  EXPECT_EQ(under.kind, Emphasis::kUnderline);
  EXPECT_EQ(doc->contents().substr(under.span.begin, under.span.length()),
            "communication");
}

TEST(MarkupTest, ItalicEmphasis) {
  MarkupParser parser;
  auto doc = parser.Parse(".PP\nthis is /tilted/ text\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->emphasis().size(), 1u);
  EXPECT_EQ(doc->emphasis()[0].kind, Emphasis::kItalic);
}

TEST(MarkupTest, UnterminatedEmphasisRejected) {
  MarkupParser parser;
  auto doc = parser.Parse(".PP\nthis is *unterminated\n");
  EXPECT_TRUE(doc.status().IsInvalidArgument());
}

TEST(MarkupTest, UnknownTagRejected) {
  MarkupParser parser;
  EXPECT_TRUE(parser.Parse(".BOGUS arg\n").status().IsInvalidArgument());
}

TEST(MarkupTest, BlankLineEndsParagraph) {
  MarkupParser parser;
  auto doc = parser.Parse("first line\n\nsecond paragraph\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Components(LogicalUnit::kParagraph).size(), 2u);
}

TEST(MarkupTest, BodyLinesJoinWithSpaces) {
  MarkupParser parser;
  auto doc = parser.Parse(".PP\nline one\nline two\n");
  ASSERT_TRUE(doc.ok());
  EXPECT_NE(doc->contents().find("one line two"), std::string::npos);
}

TEST(MarkupTest, DerivesSentencesAndWords) {
  MarkupParser parser;
  auto doc = parser.Parse(kSample);
  ASSERT_TRUE(doc.ok());
  EXPECT_GT(doc->Components(LogicalUnit::kSentence).size(), 5u);
  EXPECT_GT(doc->Components(LogicalUnit::kWord).size(), 30u);
}

TEST(MarkupTest, EmptyInputYieldsEmptyDocument) {
  MarkupParser parser;
  auto doc = parser.Parse("");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->size(), 0u);
}

TEST(MarkupTest, ReferencesSurviveBlankLines) {
  MarkupParser parser;
  auto doc = parser.Parse(".REFERENCES\nref one.\n\nref two.\n");
  ASSERT_TRUE(doc.ok());
  const auto& refs = doc->Components(LogicalUnit::kReferences);
  ASSERT_EQ(refs.size(), 1u);
  // Both references fall inside the references span.
  EXPECT_NE(doc->contents().substr(refs[0].span.begin).find("ref two"),
            std::string::npos);
}

}  // namespace
}  // namespace minos::text
