#include "minos/image/raster.h"

#include <gtest/gtest.h>

namespace minos::image {
namespace {

int InkedPixels(const Bitmap& bm) {
  int count = 0;
  for (int y = 0; y < bm.height(); ++y) {
    for (int x = 0; x < bm.width(); ++x) {
      if (bm.At(x, y) > 0) ++count;
    }
  }
  return count;
}

TEST(RasterTest, HorizontalLine) {
  Bitmap bm(10, 3);
  DrawLine(&bm, {0, 1}, {9, 1}, 255);
  for (int x = 0; x < 10; ++x) EXPECT_EQ(bm.At(x, 1), 255);
  EXPECT_EQ(InkedPixels(bm), 10);
}

TEST(RasterTest, DiagonalLineEndpoints) {
  Bitmap bm(10, 10);
  DrawLine(&bm, {0, 0}, {9, 9}, 200);
  EXPECT_EQ(bm.At(0, 0), 200);
  EXPECT_EQ(bm.At(9, 9), 200);
  EXPECT_EQ(InkedPixels(bm), 10);
}

TEST(RasterTest, LineClipsSafely) {
  Bitmap bm(5, 5);
  DrawLine(&bm, {-10, 2}, {20, 2}, 255);  // No crash; clipped.
  EXPECT_EQ(bm.At(0, 2), 255);
  EXPECT_EQ(bm.At(4, 2), 255);
}

TEST(RasterTest, CircleOutlineSymmetric) {
  Bitmap bm(21, 21);
  DrawCircle(&bm, {10, 10}, 8, 255);
  EXPECT_EQ(bm.At(18, 10), 255);
  EXPECT_EQ(bm.At(2, 10), 255);
  EXPECT_EQ(bm.At(10, 18), 255);
  EXPECT_EQ(bm.At(10, 2), 255);
  EXPECT_EQ(bm.At(10, 10), 0);  // Hollow.
}

TEST(RasterTest, FillCircleCoversInterior) {
  Bitmap bm(21, 21);
  FillCircle(&bm, {10, 10}, 5, 255);
  EXPECT_EQ(bm.At(10, 10), 255);
  EXPECT_EQ(bm.At(13, 10), 255);
  EXPECT_EQ(bm.At(17, 10), 0);
  // Area roughly pi r^2.
  EXPECT_NEAR(InkedPixels(bm), 3.14159 * 25, 12);
}

TEST(RasterTest, ZeroRadiusCircleIsAPoint) {
  Bitmap bm(5, 5);
  DrawCircle(&bm, {2, 2}, 0, 255);
  EXPECT_EQ(bm.At(2, 2), 255);
  EXPECT_EQ(InkedPixels(bm), 1);
}

TEST(RasterTest, PolygonOutlineClosed) {
  Bitmap bm(20, 20);
  DrawPolygon(&bm, {{2, 2}, {17, 2}, {17, 17}, {2, 17}}, 255);
  EXPECT_EQ(bm.At(10, 2), 255);   // Top edge.
  EXPECT_EQ(bm.At(2, 10), 255);   // Left edge (closing segment).
  EXPECT_EQ(bm.At(10, 10), 0);    // Interior empty.
}

TEST(RasterTest, FillPolygonEvenOdd) {
  Bitmap bm(20, 20);
  FillPolygon(&bm, {{2, 2}, {17, 2}, {17, 17}, {2, 17}}, 100);
  EXPECT_EQ(bm.At(10, 10), 100);
  EXPECT_EQ(bm.At(1, 1), 0);
  EXPECT_EQ(bm.At(18, 18), 0);
}

TEST(RasterTest, FillTriangle) {
  Bitmap bm(20, 20);
  FillPolygon(&bm, {{0, 0}, {19, 0}, {0, 19}}, 255);
  EXPECT_EQ(bm.At(3, 3), 255);     // Inside.
  EXPECT_EQ(bm.At(15, 15), 0);     // Outside the hypotenuse.
}

TEST(RasterTest, PolylineOpen) {
  Bitmap bm(20, 20);
  DrawPolyline(&bm, {{0, 0}, {19, 0}, {19, 19}}, 255);
  EXPECT_EQ(bm.At(10, 0), 255);
  EXPECT_EQ(bm.At(19, 10), 255);
  EXPECT_EQ(bm.At(10, 10), 0);  // No closing segment.
}

TEST(RasterTest, RenderObjectDispatch) {
  Bitmap bm(30, 30);
  GraphicsObject circle;
  circle.shape = ShapeKind::kCircle;
  circle.vertices = {{15, 15}};
  circle.radius = 5;
  circle.filled = true;
  circle.ink = 200;
  RenderObject(&bm, circle);
  EXPECT_EQ(bm.At(15, 15), 200);
}

TEST(RasterTest, RasterizeWholeImage) {
  GraphicsImage img(40, 40);
  GraphicsObject box;
  box.shape = ShapeKind::kPolygon;
  box.vertices = {{5, 5}, {35, 5}, {35, 35}, {5, 35}};
  img.Add(box);
  const Bitmap bm = Rasterize(img);
  EXPECT_EQ(bm.width(), 40);
  EXPECT_EQ(bm.At(20, 5), 255);
}

TEST(RasterTest, RasterizeHighlightsDrawHalo) {
  GraphicsImage img(40, 40);
  GraphicsObject dot;
  dot.shape = ShapeKind::kPoint;
  dot.vertices = {{20, 20}};
  const uint32_t id = img.Add(dot);
  const Bitmap plain = Rasterize(img);
  const Bitmap highlighted = Rasterize(img, {id});
  EXPECT_GT(InkedPixels(highlighted), InkedPixels(plain));
}

}  // namespace
}  // namespace minos::image
