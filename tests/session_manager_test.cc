// The event-driven SessionManager: admission control that queues (never
// drops), idle reaping that releases leases and speculation, per-session
// prefetch budgets and owner-aware eviction (one greedy session sheds
// its own pages, never a reader's), learned per-user stride, the writer
// append flow invalidating delivery plans, per-session trace sampling,
// and bit-identical epochs at any task-pool worker count.

#include "minos/session/session_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minos/obs/trace.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/shard_router.h"
#include "minos/text/formatter.h"
#include "minos/text/markup.h"

namespace minos::session {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;
using storage::ObjectId;
using Kind = SessionEvent::Kind;

/// One shard's full server stack: its own device, archiver, versions and
/// link, so per-shard behaviour stays independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

/// A paged text object; a wider layout packs more bytes per page, so
/// relative page weight between objects is controllable.
MultimediaObject PagedObject(ObjectId id, int paragraphs, int width = 40,
                             int height = 8) {
  MultimediaObject obj(id);
  obj.descriptor().layout.width = width;
  obj.descriptor().layout.height = height;
  std::string markup;
  for (int i = 0; i < paragraphs; ++i) {
    markup += ".PP\nreaders skim long report paragraph number " +
              std::to_string(i) + " with steady browsing cadence\n";
  }
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

SessionEvent Ev(SessionId s, Kind kind) {
  SessionEvent e;
  e.session = s;
  e.kind = kind;
  return e;
}

SessionEvent OpenEv(SessionId s, ObjectId object) {
  SessionEvent e = Ev(s, Kind::kOpen);
  e.object = object;
  return e;
}

SessionEvent TurnEv(SessionId s, int delta) {
  SessionEvent e = Ev(s, Kind::kPageTurn);
  e.delta = delta;
  return e;
}

SessionEvent JumpEv(SessionId s, int page) {
  SessionEvent e = Ev(s, Kind::kJump);
  e.page = page;
  return e;
}

SessionEvent SearchEv(SessionId s, std::vector<std::string> words) {
  SessionEvent e = Ev(s, Kind::kSearch);
  e.words = std::move(words);
  return e;
}

SessionEvent AppendEv(SessionId s, ObjectId object, std::string text) {
  SessionEvent e = Ev(s, Kind::kAppend);
  e.object = object;
  e.append_text = std::move(text);
  return e;
}

/// A manager over a sharded store and a local registry, so session and
/// prefetch counters start from zero.
struct SessionHarness {
  SimClock clock;
  obs::MetricsRegistry registry;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::optional<server::ShardRouter> router;
  std::optional<SessionManager> manager;

  void Build(size_t shards, SessionOptions options = {},
             uint64_t ids_per_shard = 100) {
    for (size_t i = 0; i < shards; ++i) {
      stacks.push_back(std::make_unique<ShardStack>(&clock));
    }
    std::vector<server::ObjectServer*> servers;
    for (auto& stack : stacks) servers.push_back(&stack->server);
    router.emplace(servers, &clock, server::RangePlacement(ids_per_shard),
                   server::ShardRouterOptions{});
    options.registry = &registry;
    if (options.prefetch.registry == nullptr) {
      options.prefetch.registry = &registry;
    }
    manager.emplace(&*router, &clock, options);
  }

  void WireAppend() {
    manager->SetAppendHandler(
        [this](ObjectId id, const std::string& text) {
          server::ObjectServer::AppendParts parts;
          parts.text = text;
          return router->Append(id, parts).status();
        });
  }

  int64_t Count(const std::string& name) {
    return static_cast<int64_t>(registry.counter(name)->value());
  }
};

// --- Admission control -------------------------------------------------

TEST(SessionManagerTest, AdmissionCapQueuesFifoAndNeverDrops) {
  SessionHarness h;
  SessionOptions options;
  options.max_concurrent = 2;
  h.Build(1, options);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 4)).ok());

  const SessionId a = h.manager->Open("reader");
  const SessionId b = h.manager->Open("reader");
  const SessionId c = h.manager->Open("reader");
  (void)b;
  EXPECT_EQ(h.manager->state(c), SessionState::kQueued);
  EXPECT_EQ(h.manager->active_count(), 2u);
  EXPECT_EQ(h.manager->queued_count(), 1u);
  EXPECT_EQ(h.Count("session.admission_queued_total"), 1);

  // An event to the queued session is deferred, never dropped: the
  // caller learns to resubmit.
  auto out = h.manager->PumpEpoch({OpenEv(c, 1)});
  EXPECT_TRUE(out[0].status.IsUnavailable());
  EXPECT_EQ(h.Count("session.deferred_events_total"), 1);
  EXPECT_EQ(h.manager->state(c), SessionState::kQueued);

  // Closing an active session frees a slot; the queue admits FIFO at
  // the next epoch's pre-pass.
  out = h.manager->PumpEpoch({Ev(a, Kind::kClose)});
  EXPECT_TRUE(out[0].status.ok());
  h.manager->PumpEpoch({});
  EXPECT_EQ(h.manager->state(c), SessionState::kIdle);
  EXPECT_EQ(h.manager->active_count(), 2u);
  EXPECT_EQ(h.manager->queued_count(), 0u);
  EXPECT_EQ(h.Count("session.queue_admitted_total"), 1);
}

TEST(SessionManagerTest, QueuedSessionCanCloseWithoutASlot) {
  SessionHarness h;
  SessionOptions options;
  options.max_concurrent = 1;
  h.Build(1, options);
  h.manager->Open("reader");
  const SessionId queued = h.manager->Open("reader");
  ASSERT_EQ(h.manager->state(queued), SessionState::kQueued);
  auto out = h.manager->PumpEpoch({Ev(queued, Kind::kClose)});
  EXPECT_TRUE(out[0].status.ok());
  EXPECT_EQ(h.manager->state(queued), SessionState::kClosed);
  EXPECT_EQ(h.Count("session.closed_total"), 1);
  // The dead entry never consumes the slot later.
  h.manager->PumpEpoch({});
  EXPECT_EQ(h.manager->active_count(), 1u);
}

// --- Open / page-turn flow ---------------------------------------------

TEST(SessionManagerTest, OpenDeliversFirstPageAndLeasesTheShard) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId a = h.manager->Open("reader");
  auto out = h.manager->PumpEpoch({OpenEv(a, 1)});
  ASSERT_TRUE(out[0].status.ok()) << out[0].status.ToString();
  EXPECT_EQ(h.manager->state(a), SessionState::kReading);
  EXPECT_EQ(h.manager->page(a), 1);
  EXPECT_GT(h.manager->page_count(a), 1);
  EXPECT_GT(out[0].latency_us, 0);
  // Affinity of shard 0 is 1; the open leased one stream against it.
  EXPECT_EQ(h.manager->lease_count(1), 1);
  EXPECT_EQ(h.Count("session.opens_total"), 1);
}

TEST(SessionManagerTest, TurnIntoSpeculatedPageIsAPrefetchHit) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId a = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  // The open speculated pages 2 and 3 (stride 1, depth 2) and the epoch
  // pumped them onto the background channel.
  EXPECT_GT(h.manager->prefetch()->OutstandingBytes(a), 0u);
  h.clock.Advance(MillisToMicros(500));  // The user reads page 1.
  auto out = h.manager->PumpEpoch({TurnEv(a, 1)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[0].prefetch_hit);
  EXPECT_EQ(out[0].latency_us, 0);  // Fully overlapped with reading.
  EXPECT_EQ(h.manager->page(a), 2);
}

TEST(SessionManagerTest, TurnWithoutAnOpenObjectFailsPrecondition) {
  SessionHarness h;
  h.Build(1);
  const SessionId a = h.manager->Open("reader");
  auto out = h.manager->PumpEpoch({TurnEv(a, 1)});
  EXPECT_TRUE(out[0].status.IsFailedPrecondition());
}

// --- Idle reaping ------------------------------------------------------

TEST(SessionManagerTest, IdleReapReleasesLeasesAndSpeculation) {
  SessionHarness h;
  SessionOptions options;
  options.idle_deadline_us = MillisToMicros(500);
  h.Build(1, options);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId a = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  ASSERT_EQ(h.manager->lease_count(1), 1);
  ASSERT_GT(h.manager->prefetch()->OutstandingBytes(a), 0u);

  h.clock.Advance(MillisToMicros(600));  // Past the idle deadline.
  h.manager->PumpEpoch({});
  EXPECT_EQ(h.manager->state(a), SessionState::kClosed);
  EXPECT_EQ(h.Count("session.reaped_total"), 1);
  EXPECT_EQ(h.manager->active_count(), 0u);
  // Every resource came back: the shard lease and the speculative
  // footprint (ready entries die wasted, queued die cancelled).
  EXPECT_EQ(h.manager->lease_count(1), 0);
  EXPECT_EQ(h.manager->prefetch()->OutstandingBytes(a), 0u);

  // Events after the reap answer NotFound-like, not crash: the state
  // machine is terminal.
  auto out = h.manager->PumpEpoch({TurnEv(a, 1)});
  EXPECT_TRUE(out[0].status.IsNotFound());
}

TEST(SessionManagerTest, ReapWithInflightSpeculationCancelsCleanly) {
  SessionHarness h;
  SessionOptions options;
  options.idle_deadline_us = MillisToMicros(200);
  h.Build(1, options);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId a = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  // Issue the staged work so entries sit ready-but-unconsumed, then
  // reap while that "inflight" speculation is still booked.
  h.manager->prefetch()->Pump();
  ASSERT_GT(h.manager->prefetch()->ready_count(), 0u);
  h.clock.Advance(MillisToMicros(300));
  h.manager->PumpEpoch({});
  EXPECT_EQ(h.manager->state(a), SessionState::kClosed);
  EXPECT_EQ(h.manager->prefetch()->ready_count(), 0u);
  EXPECT_EQ(h.manager->prefetch()->queued_count(), 0u);
  EXPECT_EQ(h.manager->prefetch()->OutstandingBytes(a), 0u);
  // The cancelled pages count wasted — they were staged and never read.
  EXPECT_GT(h.Count("prefetch.wasted"), 0);
}

// --- Prefetch budgets and owner-aware eviction -------------------------

TEST(SessionManagerTest, ZeroBudgetDefersAllSpeculation) {
  SessionHarness h;
  SessionOptions options;
  options.prefetch_budget_bytes = 0;
  h.Build(1, options);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId a = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  EXPECT_EQ(h.manager->prefetch()->OutstandingBytes(a), 0u);
  EXPECT_GT(h.Count("session.budget_deferred_total"), 0);
  // The session still works — page turns just pay the foreground cost.
  h.clock.Advance(MillisToMicros(100));
  auto out = h.manager->PumpEpoch({TurnEv(a, 1)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_FALSE(out[0].prefetch_hit);
  EXPECT_GT(out[0].latency_us, 0);
}

TEST(SessionManagerTest, GreedySessionEvictsItsOwnPagesNeverAReaders) {
  SessionHarness h;
  SessionOptions options;
  options.prefetch.ready_capacity = 2;
  h.Build(1, options);
  // The reader's object has light pages; the skimmer's object packs
  // several times the bytes per page (wider layout), so the skimmer is
  // always the fattest owner in the ready set.
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12, 40, 8)).ok());
  ASSERT_TRUE(h.router->Store(PagedObject(2, 24, 100, 40)).ok());

  const SessionId reader = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(reader, 1)})[0].status.ok());
  h.clock.Advance(MillisToMicros(400));  // Reader's pages 2,3 go ready.

  const SessionId skimmer = h.manager->Open("skimmer");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(skimmer, 2)})[0].status.ok());
  h.clock.Advance(MillisToMicros(400));
  h.manager->prefetch()->Pump();  // Skimmer's pages go ready too.

  // Four ready entries against a capacity of two: both evictions come
  // out of the skimmer's own (fatter) footprint.
  EXPECT_LE(h.manager->prefetch()->ready_count(), 2u);
  EXPECT_GT(h.manager->prefetch()->OutstandingBytes(reader), 0u);

  // The reader's staged page survived the skimmer's flood: its next
  // turn is still a free hit.
  auto out = h.manager->PumpEpoch({TurnEv(reader, 1)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[0].prefetch_hit);
  EXPECT_EQ(out[0].latency_us, 0);
}

// --- Learned stride ----------------------------------------------------

TEST(SessionManagerTest, StrideLearnsTheSkimmersCadence) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 80)).ok());
  const SessionId a = h.manager->Open("skimmer");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  ASSERT_GE(h.manager->page_count(a), 20);
  EXPECT_EQ(h.manager->stride(a), 1);  // Everyone starts as a reader.

  // Four three-page turns converge the EWMA onto stride 3.
  for (int turn = 0; turn < 4; ++turn) {
    h.clock.Advance(MillisToMicros(300));
    ASSERT_TRUE(h.manager->PumpEpoch({TurnEv(a, 3)})[0].status.ok());
  }
  EXPECT_EQ(h.manager->stride(a), 3);

  // Speculation now targets cursor + 3 (not the fixed next page), so
  // the skimmer's next turn lands on a staged page.
  h.clock.Advance(MillisToMicros(300));
  auto out = h.manager->PumpEpoch({TurnEv(a, 3)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[0].prefetch_hit);
}

TEST(SessionManagerTest, JumpCancelsOnlyOwnOutOfRadiusSpeculation) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 80)).ok());
  ASSERT_TRUE(h.router->Store(PagedObject(2, 80)).ok());
  const SessionId a = h.manager->Open("reader");
  const SessionId b = h.manager->Open("reader");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(b, 2)})[0].status.ok());
  ASSERT_GE(h.manager->page_count(a), 20);
  ASSERT_GT(h.manager->prefetch()->OutstandingBytes(a), 0u);
  const uint64_t b_bytes = h.manager->prefetch()->OutstandingBytes(b);
  ASSERT_GT(b_bytes, 0u);

  // A jumps far away: its near-cursor speculation is stale and dies,
  // B's entries are untouched.
  h.clock.Advance(MillisToMicros(100));
  auto out = h.manager->PumpEpoch({JumpEv(a, 20)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_EQ(h.manager->page(a), 20);
  EXPECT_EQ(h.manager->prefetch()->OutstandingBytes(b), b_bytes);
}

// --- The writer flow ---------------------------------------------------

TEST(SessionManagerTest, AppendInvalidatesPlansAndForcesRedelivery) {
  SessionHarness h;
  h.Build(1);
  h.WireAppend();
  ASSERT_TRUE(h.router->Store(PagedObject(1, 12)).ok());
  const SessionId reader = h.manager->Open("reader");
  const SessionId writer = h.manager->Open("writer");
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(reader, 1)})[0].status.ok());

  // Page 1 is at the terminal: revisiting it is free.
  h.clock.Advance(MillisToMicros(100));
  auto out = h.manager->PumpEpoch({JumpEv(reader, 1)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_TRUE(out[0].prefetch_hit);

  out = h.manager->PumpEpoch(
      {AppendEv(writer, 1, " appended words change every page")});
  ASSERT_TRUE(out[0].status.ok()) << out[0].status.ToString();
  EXPECT_EQ(h.Count("session.appends_total"), 1);
  EXPECT_EQ(h.Count("session.plan_invalidations_total"), 1);
  // The reader's speculative footprint for the object died with the
  // plan — stale ranges must never be delivered.
  EXPECT_EQ(h.manager->prefetch()->OutstandingBytes(reader), 0u);

  // The appended text re-apportioned every page, so the "delivered"
  // page 1 is stale and gets re-staged against the fresh plan.
  h.clock.Advance(MillisToMicros(100));
  out = h.manager->PumpEpoch({JumpEv(reader, 1)});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_FALSE(out[0].prefetch_hit);
  EXPECT_GT(out[0].latency_us, 0);
}

TEST(SessionManagerTest, AppendWithoutAHandlerIsUnsupported) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 4)).ok());
  const SessionId a = h.manager->Open("writer");
  auto out = h.manager->PumpEpoch({AppendEv(a, 1, "x")});
  EXPECT_TRUE(out[0].status.IsUnsupported());
}

// --- Search ------------------------------------------------------------

TEST(SessionManagerTest, SearchReturnsRankedHitsAndEntersBrowsing) {
  SessionHarness h;
  h.Build(2, {}, 2);
  for (ObjectId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(h.router->Store(PagedObject(id, 6)).ok());
  }
  const SessionId a = h.manager->Open("searcher");
  auto out = h.manager->PumpEpoch({SearchEv(a, {"paragraph"})});
  ASSERT_TRUE(out[0].status.ok());
  EXPECT_GT(out[0].results, 0u);
  EXPECT_GT(out[0].latency_us, 0);
  EXPECT_EQ(h.manager->state(a), SessionState::kBrowsing);
  EXPECT_EQ(h.Count("session.searches_total"), 1);
}

// --- Trace sampling ----------------------------------------------------

TEST(SessionManagerTest, SampledOutSessionsRecordNothing) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 8)).ok());
  obs::Tracer tracer(&h.clock);
  tracer.SetSampleRate(0.0);
  h.manager->SetTracer(&tracer);
  const SessionId a = h.manager->Open("reader");
  EXPECT_FALSE(h.manager->sampled(a));
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  h.clock.Advance(MillisToMicros(100));
  h.manager->PumpEpoch({TurnEv(a, 1)});
  h.manager->PumpEpoch({Ev(a, Kind::kClose)});
  // Zero spans — not a truncated tree, not orphans. And the sampled
  // lifetime total ignores the unsampled session entirely.
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_GT(tracer.sampled_out(), 0u);
  EXPECT_EQ(h.manager->traced_active_us(), 0);
}

TEST(SessionManagerTest, SampledSessionRootsOneConnectedSpanTree) {
  SessionHarness h;
  h.Build(1);
  ASSERT_TRUE(h.router->Store(PagedObject(1, 8)).ok());
  obs::Tracer tracer(&h.clock);
  h.manager->SetTracer(&tracer);
  const SessionId a = h.manager->Open("reader");
  EXPECT_TRUE(h.manager->sampled(a));
  ASSERT_TRUE(h.manager->PumpEpoch({OpenEv(a, 1)})[0].status.ok());
  h.clock.Advance(MillisToMicros(100));
  h.manager->PumpEpoch({TurnEv(a, 1)});
  h.manager->PumpEpoch({Ev(a, Kind::kClose)});
  EXPECT_GT(h.manager->traced_active_us(), 0);

  // One root (the session), and every other span's parent exists: the
  // whole session is one connected tree.
  ASSERT_FALSE(tracer.spans().empty());
  std::set<uint64_t> ids;
  for (const obs::SpanRecord& rec : tracer.spans()) ids.insert(rec.span_id);
  size_t roots = 0;
  for (const obs::SpanRecord& rec : tracer.spans()) {
    if (rec.parent_span_id == 0) {
      ++roots;
      EXPECT_EQ(rec.name, "session#" + std::to_string(a));
    } else {
      EXPECT_TRUE(ids.count(rec.parent_span_id) > 0)
          << rec.name << " is an orphan";
    }
  }
  EXPECT_EQ(roots, 1u);
}

// --- Worker-count determinism ------------------------------------------

/// FNV-1a fold of one 64-bit value into a running digest.
uint64_t Mix(uint64_t digest, uint64_t value) {
  return (digest ^ value) * 0x100000001b3ULL;
}

struct StormResult {
  Micros elapsed = 0;
  uint64_t digest = 0;
  std::map<std::string, int64_t> counters;
};

/// A fixed mixed-session storm against a fresh three-shard fabric on a
/// `workers`-thread pool. Every field must be bit-identical across
/// worker counts.
StormResult RunStorm(int workers) {
  SessionHarness h;
  SessionOptions options;
  options.max_concurrent = 12;
  options.idle_deadline_us = MillisToMicros(900);
  h.Build(3, options, 4);
  h.WireAppend();
  for (ObjectId id = 1; id <= 12; ++id) {
    EXPECT_TRUE(h.router->Store(PagedObject(id, 10)).ok());
  }
  runtime::TaskPool pool(&h.clock, workers);
  h.manager->SetTaskPool(&pool);

  std::vector<SessionId> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(
        h.manager->Open(i % 3 == 0 ? "skimmer" : "reader"));
  }
  StormResult out;
  auto fold = [&](const std::vector<SessionOutcome>& outcomes) {
    for (const SessionOutcome& o : outcomes) {
      out.digest = Mix(out.digest, static_cast<uint64_t>(o.status.code()));
      out.digest = Mix(out.digest, static_cast<uint64_t>(o.latency_us));
      out.digest = Mix(out.digest, o.prefetch_hit ? 1 : 0);
      out.digest = Mix(out.digest, o.results);
    }
  };

  std::vector<SessionEvent> opens;
  // Session 15 stays idle for the reap; 12..14 start queued.
  for (int i = 0; i < 12; ++i) {
    opens.push_back(OpenEv(ids[static_cast<size_t>(i)],
                           static_cast<ObjectId>(i % 12 + 1)));
  }
  fold(h.manager->PumpEpoch(opens));
  for (int epoch = 0; epoch < 6; ++epoch) {
    h.clock.Advance(MillisToMicros(200));
    std::vector<SessionEvent> events;
    for (int i = 0; i < 11; ++i) {
      const SessionId s = ids[static_cast<size_t>(i)];
      if (epoch == 2 && i == 4) {
        events.push_back(SearchEv(s, {"paragraph"}));
      } else if (epoch == 3 && i == 7) {
        events.push_back(AppendEv(s, 5, " storm append"));
      } else if (epoch == 4 && i < 2) {
        events.push_back(Ev(s, Kind::kClose));
      } else if (epoch >= 4 && i < 2) {
        continue;  // Closed sessions stay silent.
      } else if (i % 4 == 3) {
        events.push_back(JumpEv(s, (epoch * (i + 3)) % 7 + 1));
      } else {
        events.push_back(TurnEv(s, i % 3 == 0 ? 3 : 1));
      }
    }
    fold(h.manager->PumpEpoch(events));
  }
  out.elapsed = h.clock.Now();
  for (const auto& [name, value] : h.registry.Snapshot().counters) {
    if (value != 0) out.counters[name] = value;
  }
  return out;
}

TEST(SessionManagerTest, StormIsBitIdenticalAcrossWorkerCounts) {
  const StormResult base = RunStorm(1);
  ASSERT_TRUE(base.counters.count("session.reaped_total") > 0);
  ASSERT_TRUE(base.counters.count("session.admission_queued_total") > 0);
  for (int workers : {2, 4}) {
    const StormResult run = RunStorm(workers);
    EXPECT_EQ(run.elapsed, base.elapsed) << workers << " workers";
    EXPECT_EQ(run.digest, base.digest) << workers << " workers";
    EXPECT_EQ(run.counters, base.counters) << workers << " workers";
  }
}

}  // namespace
}  // namespace minos::session
