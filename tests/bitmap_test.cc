#include "minos/image/bitmap.h"

#include <gtest/gtest.h>

namespace minos::image {
namespace {

TEST(RectTest, ContainsAndIntersects) {
  Rect r{10, 10, 5, 5};
  EXPECT_TRUE(r.Contains(10, 10));
  EXPECT_TRUE(r.Contains(14, 14));
  EXPECT_FALSE(r.Contains(15, 15));
  EXPECT_TRUE(r.Intersects(Rect{14, 14, 10, 10}));
  EXPECT_FALSE(r.Intersects(Rect{15, 10, 5, 5}));
  EXPECT_EQ(r.area(), 25);
}

TEST(RectTest, Intersection) {
  Rect r{0, 0, 10, 10};
  EXPECT_EQ(r.Intersect(Rect{5, 5, 10, 10}), (Rect{5, 5, 5, 5}));
  EXPECT_EQ(r.Intersect(Rect{20, 20, 5, 5}), (Rect{}));
  EXPECT_EQ(r.Intersect(r), r);
}

TEST(BitmapTest, StartsBlank) {
  Bitmap bm(4, 3);
  EXPECT_EQ(bm.width(), 4);
  EXPECT_EQ(bm.height(), 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) EXPECT_EQ(bm.At(x, y), 0);
  }
}

TEST(BitmapTest, OutOfBoundsReadsZeroWritesIgnored) {
  Bitmap bm(2, 2);
  EXPECT_EQ(bm.At(-1, 0), 0);
  EXPECT_EQ(bm.At(5, 5), 0);
  bm.Set(-1, 0, 255);  // No crash, no effect.
  bm.Set(2, 0, 255);
  EXPECT_EQ(bm.At(0, 0), 0);
}

TEST(BitmapTest, BlendTakesMax) {
  Bitmap bm(2, 2);
  bm.Set(0, 0, 100);
  bm.Blend(0, 0, 50);
  EXPECT_EQ(bm.At(0, 0), 100);
  bm.Blend(0, 0, 200);
  EXPECT_EQ(bm.At(0, 0), 200);
}

TEST(BitmapTest, FillRectClips) {
  Bitmap bm(4, 4);
  bm.FillRect(Rect{2, 2, 10, 10}, 7);
  EXPECT_EQ(bm.At(1, 1), 0);
  EXPECT_EQ(bm.At(2, 2), 7);
  EXPECT_EQ(bm.At(3, 3), 7);
}

TEST(BitmapTest, BlitOverwritesIncludingBlanks) {
  Bitmap dst(4, 4);
  dst.Fill(9);
  Bitmap src(2, 2);  // All zeros.
  dst.Blit(src, 1, 1);
  EXPECT_EQ(dst.At(1, 1), 0);  // Blank copied over ink.
  EXPECT_EQ(dst.At(0, 0), 9);
}

TEST(BitmapTest, BlendOverIsTransparencyRule) {
  Bitmap dst(2, 2);
  dst.Set(0, 0, 100);
  Bitmap src(2, 2);
  src.Set(0, 0, 50);
  src.Set(1, 1, 200);
  dst.BlendOver(src, 0, 0);
  EXPECT_EQ(dst.At(0, 0), 100);  // Existing darker ink kept.
  EXPECT_EQ(dst.At(1, 1), 200);  // New ink laid down.
}

TEST(BitmapTest, OverwriteByIsOverwriteRule) {
  Bitmap dst(2, 2);
  dst.Set(0, 0, 100);
  dst.Set(1, 0, 80);
  Bitmap src(2, 2);
  src.Set(0, 0, 30);  // Inked: replaces (even if lighter).
  // (1,0) blank in src: leaves dst intact.
  dst.OverwriteBy(src, 0, 0);
  EXPECT_EQ(dst.At(0, 0), 30);
  EXPECT_EQ(dst.At(1, 0), 80);
}

TEST(BitmapTest, SubBitmapClipsAndPads) {
  Bitmap bm(4, 4);
  bm.Set(3, 3, 77);
  Bitmap sub = bm.SubBitmap(Rect{2, 2, 4, 4});
  EXPECT_EQ(sub.width(), 4);
  EXPECT_EQ(sub.height(), 4);
  EXPECT_EQ(sub.At(1, 1), 77);
  EXPECT_EQ(sub.At(3, 3), 0);  // Outside the source: blank.
}

TEST(BitmapTest, DigestSensitiveToContentAndShape) {
  Bitmap a(4, 4), b(4, 4), c(2, 8);
  EXPECT_EQ(a.Digest(), b.Digest());
  b.Set(1, 1, 1);
  EXPECT_NE(a.Digest(), b.Digest());
  EXPECT_NE(a.Digest(), c.Digest());  // Same pixel count, different shape.
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap bm(3, 2);
  bm.Set(0, 0, 1);
  bm.Set(2, 1, 255);
  auto restored = Bitmap::Deserialize(bm.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, bm);
}

TEST(BitmapTest, DeserializeRejectsTruncation) {
  Bitmap bm(8, 8);
  const std::string bytes = bm.Serialize();
  EXPECT_TRUE(Bitmap::Deserialize(std::string_view(bytes).substr(0, 10))
                  .status()
                  .IsCorruption());
}

TEST(BitmapTest, ByteSize) {
  Bitmap bm(10, 20);
  EXPECT_EQ(bm.ByteSize(), 200u);
}

TEST(BitmapTest, EmptyBitmap) {
  Bitmap bm;
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.ByteSize(), 0u);
  auto restored = Bitmap::Deserialize(bm.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

}  // namespace
}  // namespace minos::image
