// Fault injection and recovery: seeded injector determinism, the exact
// retry backoff schedule, circuit-breaker transitions, checksum-detected
// corruption recovery, and graceful degradation of presentations when a
// part does not survive retrieval.

#include "minos/server/fault.h"

#include <gtest/gtest.h>

#include <optional>

#include "minos/core/presentation_manager.h"
#include "minos/object/part_codec.h"
#include "minos/server/object_server.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"
#include "minos/text/markup.h"
#include "minos/util/coding.h"
#include "minos/voice/synthesizer.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

// --- Backoff schedule ------------------------------------------------

TEST(RetryPolicyTest, UnjitteredScheduleIsExponentialAndClamped) {
  RetryPolicy policy;
  policy.jitter = 0;
  EXPECT_EQ(policy.BackoffFor(1, nullptr), MillisToMicros(2));
  EXPECT_EQ(policy.BackoffFor(2, nullptr), MillisToMicros(4));
  EXPECT_EQ(policy.BackoffFor(3, nullptr), MillisToMicros(8));
  EXPECT_EQ(policy.BackoffFor(4, nullptr), MillisToMicros(16));
  // Growth clamps at max_backoff_us.
  EXPECT_EQ(policy.BackoffFor(8, nullptr), MillisToMicros(250));
  EXPECT_EQ(policy.BackoffFor(20, nullptr), MillisToMicros(250));
}

TEST(RetryPolicyTest, SeededJitterIsExactlyReproducible) {
  const RetryPolicy policy;  // jitter = 0.25
  Random a(42), b(42);
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const Micros da = policy.BackoffFor(attempt, &a);
    const Micros db = policy.BackoffFor(attempt, &b);
    EXPECT_EQ(da, db) << "attempt " << attempt;
    // Jitter stays within +/- 25% of the unjittered value.
    RetryPolicy flat = policy;
    flat.jitter = 0;
    const double base = static_cast<double>(flat.BackoffFor(attempt, nullptr));
    EXPECT_GE(static_cast<double>(da), base * 0.75 - 1);
    EXPECT_LE(static_cast<double>(da), base * 1.25 + 1);
  }
}

TEST(RetryPolicyTest, RetryWithBackoffAdvancesClockByExactSchedule) {
  SimClock clock;
  RetryPolicy policy;
  policy.jitter = 0;
  int calls = 0;
  auto result = RetryWithBackoff<int>(policy, &clock, nullptr, [&] {
    return ++calls < 3 ? StatusOr<int>(Status::Unavailable("flaky"))
                       : StatusOr<int>(7);
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 7);
  EXPECT_EQ(calls, 3);
  // Two waits: 2 ms after the first failure, 4 ms after the second.
  EXPECT_EQ(clock.Now(), MillisToMicros(6));
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  SimClock clock;
  int calls = 0;
  auto result =
      RetryWithBackoff<int>(RetryPolicy::Default(), &clock, nullptr, [&] {
        ++calls;
        return StatusOr<int>(Status::NotFound("no such object"));
      });
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.Now(), 0);
}

TEST(RetryPolicyTest, ExhaustionReturnsLastErrorUnchanged) {
  SimClock clock;
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0;
  int calls = 0;
  auto result = RetryWithBackoff<int>(policy, &clock, nullptr, [&] {
    ++calls;
    return StatusOr<int>(Status::Corruption("checksum mismatch"));
  });
  // The underlying Corruption must survive so callers can classify it
  // (the salvage path depends on this).
  EXPECT_TRUE(result.status().IsCorruption());
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, DeadlineBudgetStopsRetrying) {
  SimClock clock;
  RetryPolicy policy;
  policy.jitter = 0;
  policy.deadline_us = MillisToMicros(5);  // Allows the 2 ms wait only.
  int calls = 0;
  auto result = RetryWithBackoff<int>(policy, &clock, nullptr, [&] {
    ++calls;
    return StatusOr<int>(Status::Unavailable("down"));
  });
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_EQ(calls, 2);  // Second wait (4 ms) would overrun the budget.
}

// --- Fault injector ---------------------------------------------------

TEST(FaultInjectorTest, SameSeedSameFaultSequence) {
  SimClock clock_a, clock_b;
  obs::MetricsRegistry reg_a, reg_b;
  FaultInjector a(FaultProfile::Storm(), 123, &clock_a, &reg_a);
  FaultInjector b(FaultProfile::Storm(), 123, &clock_b, &reg_b);
  for (int i = 0; i < 200; ++i) {
    const Status sa = a.OnOperation("op");
    const Status sb = b.OnOperation("op");
    EXPECT_EQ(sa.code(), sb.code()) << "op " << i;
  }
  EXPECT_EQ(clock_a.Now(), clock_b.Now());
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);
}

TEST(FaultInjectorTest, FailFirstNThenSucceed) {
  SimClock clock;
  obs::MetricsRegistry reg;
  FaultProfile profile;
  profile.fail_first_n = 3;
  FaultInjector injector(profile, 9, &clock, &reg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(injector.OnOperation("op").IsUnavailable());
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(injector.OnOperation("op").ok());
  }
  EXPECT_EQ(injector.faults_injected(), 3u);
}

TEST(FaultInjectorTest, InjectedTimeoutChargesSimulatedTime) {
  SimClock clock;
  obs::MetricsRegistry reg;
  FaultProfile profile;
  profile.timeout_rate = 1.0;
  FaultInjector injector(profile, 1, &clock, &reg);
  EXPECT_TRUE(injector.OnOperation("transfer").IsDeadlineExceeded());
  EXPECT_EQ(clock.Now(), profile.timeout_us);
}

TEST(FaultInjectorTest, CorruptionAlwaysChangesThePayload) {
  SimClock clock;
  obs::MetricsRegistry reg;
  FaultProfile profile;
  profile.corrupt_rate = 1.0;
  FaultInjector injector(profile, 77, &clock, &reg);
  const std::string original(64, 'x');
  for (int i = 0; i < 50; ++i) {
    std::string payload = original;
    EXPECT_TRUE(injector.MaybeCorrupt(&payload));
    EXPECT_NE(payload, original);
    EXPECT_EQ(payload.size(), original.size());
  }
}

// --- Part checksums ---------------------------------------------------

TEST(PartChecksumTest, FlippedByteIsDetectedAsCorruption) {
  object::AttributeMap attrs;
  attrs["department"] = "radiology";
  attrs["kind"] = "memo";
  const std::string encoded = object::EncodeAttributes(attrs);
  ASSERT_TRUE(object::DecodeAttributes(encoded).ok());
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    std::string mutated = encoded;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    EXPECT_TRUE(object::DecodeAttributes(mutated).status().IsCorruption())
        << "flip at " << pos << " escaped the checksum";
  }
}

TEST(PartChecksumTest, VoicePartChecksumCoversSampleData) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nspoken checksum coverage\n");
  ASSERT_TRUE(doc.ok());
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  voice::VoiceDocument vdoc(synth.Synthesize(*doc).value());
  std::string encoded = object::EncodeVoiceDocument(vdoc);
  ASSERT_TRUE(object::DecodeVoiceDocument(encoded).ok());
  // A flip deep inside the PCM samples — structurally invisible, only
  // the checksum can catch it.
  encoded[encoded.size() / 2] ^= 0x01;
  EXPECT_TRUE(object::DecodeVoiceDocument(encoded).status().IsCorruption());
}

// --- Circuit breaker --------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresAndFailsFast) {
  SimClock clock;
  obs::MetricsRegistry reg;
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_us = MillisToMicros(100);
  CircuitBreaker breaker(options, &clock, "test", &reg);

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.Admit().ok());
    breaker.RecordFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(reg.gauge("test.breaker_open")->value(), 1.0);
  EXPECT_TRUE(breaker.Admit().IsUnavailable());  // Fast fail, no cooldown.
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccess) {
  SimClock clock;
  obs::MetricsRegistry reg;
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_us = MillisToMicros(100);
  CircuitBreaker breaker(options, &clock, "test", &reg);
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  clock.Advance(MillisToMicros(100));
  EXPECT_TRUE(breaker.Admit().ok());  // The half-open probe.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(reg.gauge("test.breaker_open")->value(), 0.0);
  EXPECT_EQ(reg.counter("test.breaker_closes_total")->value(), 1.0);
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  SimClock clock;
  obs::MetricsRegistry reg;
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  options.cooldown_us = MillisToMicros(100);
  CircuitBreaker breaker(options, &clock, "test", &reg);
  breaker.RecordFailure();
  breaker.RecordFailure();
  clock.Advance(MillisToMicros(100));
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.RecordFailure();  // The probe failed.
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_TRUE(breaker.Admit().IsUnavailable());  // Cooldown restarted.
  EXPECT_EQ(reg.counter("test.breaker_opens_total")->value(), 2.0);
}

// --- End to end: the fetch path under faults --------------------------

class FaultedServerTest : public ::testing::Test {
 protected:
  FaultedServerTest()
      : device_("optical", 65536, 512,
                storage::DeviceCostModel::Instant(), true, &clock_),
        cache_(256),
        archiver_(&device_, &cache_),
        link_(Link::Ethernet(&clock_)),
        server_(&archiver_, &versions_, &clock_, &link_) {}

  MultimediaObject TextObject(storage::ObjectId id,
                              const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  /// An audio-mode object that also carries the equivalent text part —
  /// the shape that can degrade to a visual presentation.
  MultimediaObject AudioObject(storage::ObjectId id,
                               const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(*doc);
    EXPECT_TRUE(track.ok());
    EXPECT_TRUE(
        obj.SetVoicePart(voice::VoiceDocument(std::move(track).value()))
            .ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    obj.descriptor().driving_mode = object::DrivingMode::kAudio;
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  Link link_;
  ObjectServer server_;
};

TEST_F(FaultedServerTest, RetriesHideBringUpFaultsFromTheCaller) {
  ASSERT_TRUE(server_.Store(TextObject(1, "retried body")).ok());
  FaultProfile profile;
  profile.fail_first_n = 3;
  FaultInjector injector(profile, 5, &clock_);
  link_.SetFaultInjector(&injector);

  auto fetched = server_.Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("retried"),
            std::string::npos);
  EXPECT_EQ(injector.faults_injected(), 3u);
}

TEST_F(FaultedServerTest, ExhaustedRetriesSurfaceTheFault) {
  ASSERT_TRUE(server_.Store(TextObject(1, "unreachable body")).ok());
  FaultProfile profile;
  profile.drop_rate = 1.0;  // Every transfer is lost.
  FaultInjector injector(profile, 5, &clock_);
  link_.SetFaultInjector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 3;
  server_.SetRetryPolicy(policy);

  const Status status = server_.Fetch(1).status();
  EXPECT_TRUE(status.IsUnavailable() || status.IsDeadlineExceeded())
      << status.ToString();
}

TEST_F(FaultedServerTest, DeadLinkTripsTheBreakerAndFailsFast) {
  ASSERT_TRUE(server_.Store(TextObject(1, "dead link body")).ok());
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector(profile, 5, &clock_);
  link_.SetFaultInjector(&injector);
  CircuitBreaker::Options options;
  options.failure_threshold = 4;
  link_.ConfigureBreaker(options);

  // Enough failed fetches to exceed the threshold.
  server_.Fetch(1).ok();
  server_.Fetch(1).ok();
  EXPECT_EQ(link_.breaker().state(), CircuitBreaker::State::kOpen);
  // While open the link fails fast: the injector sees no more traffic.
  const uint64_t faults_before = injector.faults_injected();
  server_.Fetch(1).ok();
  EXPECT_EQ(injector.faults_injected(), faults_before);
}

TEST_F(FaultedServerTest, WireCorruptionIsHealedByRetry) {
  ASSERT_TRUE(server_.Store(TextObject(1, "healed payload")).ok());
  // Corrupt roughly half the deliveries; the checksum catches each hit
  // and a retry eventually delivers clean bytes. Seeded: deterministic.
  FaultProfile profile;
  profile.corrupt_rate = 0.5;
  FaultInjector injector(profile, 21, &clock_);
  server_.SetFaultInjector(&injector);

  for (int i = 0; i < 10; ++i) {
    auto fetched = server_.Fetch(1);
    ASSERT_TRUE(fetched.ok()) << "fetch " << i;
    EXPECT_NE(fetched->text_part().contents().find("healed"),
              std::string::npos);
  }
  EXPECT_GT(injector.faults_injected(), 0u);
}

TEST_F(FaultedServerTest,
       FlakyProfileBrowsingCompletesWithoutUserVisibleFailures) {
  // The acceptance gate: 10% drops + 1% corruption, symmetric browsing
  // (text and audio objects) completes with zero user-visible failures.
  ASSERT_TRUE(
      server_.Store(TextObject(1, "hospital admission fracture memo")).ok());
  ASSERT_TRUE(server_.Store(AudioObject(2, "hospital voice report")).ok());
  FaultInjector injector(FaultProfile::Flaky(), 0xF1A2, &clock_);
  link_.SetFaultInjector(&injector);

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto browser = workstation.Query({"hospital"});
  ASSERT_TRUE(browser.ok());
  EXPECT_EQ(browser->size(), 2u);
  ASSERT_TRUE(workstation.Present(1).ok());
  ASSERT_TRUE(workstation.Present(2).ok());
  EXPECT_GT(injector.faults_injected(), 0u);
  EXPECT_TRUE(workstation.presentation().degraded_parts().empty());
}

// --- Device-level read faults (BlockDevice::SetReadFaultHook) ---------

/// A server over a cache-less archiver, so every Fetch really reads the
/// device and the read fault hook sees the traffic.
class DeviceFaultTest : public FaultedServerTest {
 protected:
  DeviceFaultTest() : uncached_(&device_, nullptr) {
    uncached_server_.emplace(&uncached_, &versions_, &clock_, &link_);
  }

  storage::Archiver uncached_;
  std::optional<ObjectServer> uncached_server_;
};

TEST_F(DeviceFaultTest, TransientMediaErrorsAreRetriedTransparently) {
  ASSERT_TRUE(uncached_server_->Store(TextObject(1, "media body")).ok());
  FaultProfile profile;
  profile.fail_first_n = 2;
  FaultInjector injector(profile, 3, &clock_);
  device_.SetReadFaultHook(
      [&](uint64_t, uint64_t, std::string*) {
        return injector.OnOperation("device read");
      });

  // The first two device reads fail as media errors; the retry loop
  // re-reads and the caller never sees the fault.
  auto fetched = uncached_server_->Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("media"),
            std::string::npos);
  EXPECT_EQ(injector.faults_injected(), 2u);
  device_.SetReadFaultHook(nullptr);
}

TEST_F(DeviceFaultTest, MediaCorruptionIsCaughtByChecksumsAndHealed) {
  ASSERT_TRUE(uncached_server_->Store(TextObject(1, "healed media")).ok());
  // Corrupt roughly half the device reads in place: structurally
  // invisible, only the part checksums can catch it. Seeded, so the
  // healing retries are deterministic.
  FaultProfile profile;
  profile.corrupt_rate = 0.5;
  FaultInjector injector(profile, 21, &clock_);
  device_.SetReadFaultHook(
      [&](uint64_t, uint64_t, std::string* out) {
        injector.MaybeCorrupt(out);
        return Status::OK();
      });

  for (int i = 0; i < 10; ++i) {
    auto fetched = uncached_server_->Fetch(1);
    ASSERT_TRUE(fetched.ok()) << "fetch " << i;
    EXPECT_NE(fetched->text_part().contents().find("healed"),
              std::string::npos);
  }
  EXPECT_GT(injector.faults_injected(), 0u);
  device_.SetReadFaultHook(nullptr);
}

TEST_F(DeviceFaultTest, ClearedHookStopsInjecting) {
  ASSERT_TRUE(uncached_server_->Store(TextObject(1, "quiet body")).ok());
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector always_fail(profile, 7, &clock_);
  device_.SetReadFaultHook(
      [&](uint64_t, uint64_t, std::string*) {
        return always_fail.OnOperation("device read");
      });
  EXPECT_FALSE(uncached_server_->Fetch(1).ok());

  device_.SetReadFaultHook(nullptr);
  EXPECT_TRUE(uncached_server_->Fetch(1).ok());
}

// --- Device-level write faults (Store/Append path) --------------------

TEST_F(DeviceFaultTest, FailedAppendLeavesNoVersionRecordBehind) {
  // A media error mid-append must not diverge the version store from the
  // archive: Store fails, and neither the catalog nor the version store
  // believes the object exists.
  FaultProfile profile;
  profile.fail_first_n = 1;
  FaultInjector injector(profile, 11, &clock_);
  device_.SetWriteFaultHook([&](uint64_t, std::string*) {
    return injector.OnOperation("device write");
  });

  EXPECT_FALSE(uncached_server_->Store(TextObject(1, "lost body")).ok());
  EXPECT_TRUE(versions_.Current(1).status().IsNotFound());
  EXPECT_TRUE(uncached_server_->Fetch(1).status().IsNotFound());
  EXPECT_EQ(uncached_server_->object_count(), 0u);

  // The device healed (fail_first_n consumed): the same object stores
  // and fetches cleanly, at a fresh archive offset past the failed one.
  auto addr = uncached_server_->Store(TextObject(1, "landed body"));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE(versions_.Current(1).ok());
  auto fetched = uncached_server_->Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("landed"),
            std::string::npos);
  device_.SetWriteFaultHook(nullptr);
}

TEST_F(DeviceFaultTest, TornWriteIsCaughtByChecksumsAndSalvaged) {
  // A torn append: the write commits, but one byte in the middle of the
  // voice part lands garbled. Structurally the object decodes; only the
  // voice checksum can catch the tear, and the salvage path must drop
  // exactly that part.
  MultimediaObject obj = AudioObject(3, "torn write voice body");

  // Serialization math mirroring Store: the torn byte's absolute archive
  // offset is append base + payload base + voice offset + half length.
  std::string bytes = obj.SerializeArchived().value();
  Decoder dec(bytes);
  std::string desc_bytes;
  ASSERT_TRUE(dec.GetLengthPrefixed(&desc_bytes).ok());
  auto desc = object::ObjectDescriptor::Deserialize(desc_bytes);
  ASSERT_TRUE(desc.ok());
  uint64_t data_len = 0;
  for (const object::PartPointer& p : desc->parts) {
    if (!p.in_archiver) data_len += p.length;
  }
  const uint64_t payload_base = bytes.size() - data_len;
  auto voice = desc->FindPart("voice");
  ASSERT_TRUE(voice.ok());
  const uint64_t torn_abs = uncached_.size() + payload_base +
                            voice->offset + voice->length / 2;

  device_.SetWriteFaultHook([&](uint64_t block, std::string* data) {
    const uint64_t lo = block * device_.block_size();
    if (torn_abs >= lo && torn_abs < lo + data->size()) {
      (*data)[torn_abs - lo] ^= 0x01;
    }
    return Status::OK();
  });
  ASSERT_TRUE(uncached_server_->Store(obj).ok());
  device_.SetWriteFaultHook(nullptr);

  // The strict decode fails persistently (the tear is on the media, not
  // the wire), so the fetch salvages: text survives, voice drops.
  auto fetched = uncached_server_->Fetch(3);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched->has_text());
  EXPECT_FALSE(fetched->has_voice());
  EXPECT_NE(fetched->text_part().contents().find("torn"),
            std::string::npos);
}

TEST_F(DeviceFaultTest, WriteFaultHookMayNotResizeThePayload) {
  device_.SetWriteFaultHook([&](uint64_t, std::string* data) {
    data->push_back('x');
    return Status::OK();
  });
  EXPECT_FALSE(uncached_server_->Store(TextObject(9, "resized")).ok());
  device_.SetWriteFaultHook(nullptr);
}

// --- Graceful degradation ---------------------------------------------

/// Serializes `obj` and flips one byte in the middle of its voice part,
/// so only the voice checksum fails.
std::string CorruptVoicePart(const MultimediaObject& obj) {
  std::string bytes = obj.SerializeArchived().value();
  Decoder dec(bytes);
  std::string desc_bytes;
  EXPECT_TRUE(dec.GetLengthPrefixed(&desc_bytes).ok());
  auto desc = object::ObjectDescriptor::Deserialize(desc_bytes);
  EXPECT_TRUE(desc.ok());
  uint64_t data_len = 0;
  for (const object::PartPointer& p : desc->parts) {
    if (!p.in_archiver) data_len += p.length;
  }
  const uint64_t payload_base = bytes.size() - data_len;
  auto voice = desc->FindPart("voice");
  EXPECT_TRUE(voice.ok());
  bytes[payload_base + voice->offset + voice->length / 2] ^= 0x01;
  return bytes;
}

TEST(DegradationTest, LenientDecodeDropsUnreadableVoicePart) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\ndegradable spoken text body\n");
  ASSERT_TRUE(doc.ok());
  MultimediaObject obj(5);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  ASSERT_TRUE(
      obj.SetVoicePart(voice::VoiceDocument(synth.Synthesize(*doc).value()))
          .ok());
  ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  obj.descriptor().driving_mode = object::DrivingMode::kAudio;
  ASSERT_TRUE(obj.Archive().ok());
  const std::string corrupted = CorruptVoicePart(obj);

  // The strict decode refuses the object...
  EXPECT_TRUE(MultimediaObject::DeserializeArchived(5, corrupted)
                  .status()
                  .IsCorruption());
  // ...the lenient decode salvages everything but the voice part.
  MultimediaObject::PartSalvageReport report;
  auto salvaged =
      MultimediaObject::DeserializeArchivedLenient(5, corrupted, &report);
  ASSERT_TRUE(salvaged.ok());
  EXPECT_TRUE(report.degraded());
  ASSERT_EQ(report.dropped_parts.size(), 1u);
  EXPECT_EQ(report.dropped_parts[0], "voice");
  EXPECT_FALSE(salvaged->has_voice());
  EXPECT_TRUE(salvaged->has_text());
}

TEST(DegradationTest, AudioObjectWithoutVoicePresentsItsTextPart) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nfallback text presentation body\n");
  ASSERT_TRUE(doc.ok());
  MultimediaObject obj(6);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  ASSERT_TRUE(
      obj.SetVoicePart(voice::VoiceDocument(synth.Synthesize(*doc).value()))
          .ok());
  ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  obj.descriptor().driving_mode = object::DrivingMode::kAudio;
  ASSERT_TRUE(obj.Archive().ok());
  const std::string corrupted = CorruptVoicePart(obj);

  SimClock clock;
  render::Screen screen;
  core::PresentationManager pm(&screen, &clock);
  pm.SetResolver([&](storage::ObjectId id) {
    MultimediaObject::PartSalvageReport report;
    return MultimediaObject::DeserializeArchivedLenient(id, corrupted,
                                                        &report);
  });

  // The open succeeds in the fallback direction: text shown visually.
  ASSERT_TRUE(pm.Open(6).ok());
  EXPECT_TRUE(pm.current_degraded());
  EXPECT_NE(pm.visual_browser(), nullptr);
  EXPECT_EQ(pm.audio_browser(), nullptr);
  ASSERT_EQ(pm.degraded_parts().size(), 1u);
  EXPECT_EQ(pm.degraded_parts()[0].part, "voice");
  EXPECT_EQ(pm.degraded_parts()[0].object_id, 6u);
  // The substitution is on the event timeline.
  EXPECT_EQ(pm.log().OfKind(core::EventKind::kDegraded).size(), 1u);
}

// --- Storms over the miniature and ranked-query paths -----------------

TEST_F(FaultedServerTest, StormDuringGatherYieldsPartialDegradedStrip) {
  for (storage::ObjectId id : {1u, 2u, 3u}) {
    ASSERT_TRUE(
        server_.Store(TextObject(id, "stormy strip body")).ok());
  }
  // One transfer fails and retries are off, so exactly one card drops
  // out of the strip — deterministically.
  FaultProfile profile;
  profile.fail_first_n = 1;
  FaultInjector injector(profile, 11, &clock_);
  link_.SetFaultInjector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 1;
  server_.SetRetryPolicy(policy);

  const double dropped_before =
      obs::MetricsRegistry::Default().counter("server.cards_dropped")
          ->value();
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto browser = workstation.Query({"stormy"});
  ASSERT_TRUE(browser.ok());  // Degraded, never an error.
  EXPECT_EQ(browser->size(), 2u);
  EXPECT_EQ(obs::MetricsRegistry::Default()
                .counter("server.cards_dropped")
                ->value(),
            dropped_before + 1);
  // The gap is on the record: a degraded miniature note and an event.
  ASSERT_EQ(workstation.presentation().degraded_parts().size(), 1u);
  EXPECT_EQ(workstation.presentation().degraded_parts()[0].object_id, 1u);
  EXPECT_EQ(workstation.presentation().degraded_parts()[0].part,
            "miniature");
  EXPECT_FALSE(workstation.presentation()
                   .log()
                   .OfKind(core::EventKind::kDegraded)
                   .empty());
}

TEST_F(FaultedServerTest, StormDuringRankedGatherDegradesNotCrashes) {
  for (storage::ObjectId id : {1u, 2u, 3u, 4u}) {
    ASSERT_TRUE(
        server_.Store(TextObject(id, "ranked storm body")).ok());
  }
  // A full storm: drops, timeouts, corruption and latency spikes, with
  // retries on. Scoring never rides the link, so ranked hit lists stay
  // complete; card gathers may thin out but must never error.
  FaultInjector injector(FaultProfile::Storm(), 0xBAD, &clock_);
  link_.SetFaultInjector(&injector);

  for (int round = 0; round < 8; ++round) {
    const std::vector<query::ScoredHit> hits =
        server_.QueryRanked({"ranked"}, 10);
    EXPECT_EQ(hits.size(), 4u);
    auto cards = server_.GatherCardsRanked({"ranked"}, 10);
    ASSERT_TRUE(cards.ok()) << cards.status().ToString();
    EXPECT_LE(cards->size(), hits.size());
    // Whatever survived is still in relevance order.
    for (size_t i = 1; i < cards->size(); ++i) {
      EXPECT_GE((*cards)[i - 1].score, (*cards)[i].score);
    }
  }
  EXPECT_GT(injector.faults_injected(), 0u);
}

TEST_F(FaultedServerTest, StormedRankedWorkstationNotesDroppedCards) {
  for (storage::ObjectId id : {1u, 2u, 3u}) {
    ASSERT_TRUE(server_.Store(TextObject(id, "noted storm body")).ok());
  }
  FaultProfile profile;
  profile.fail_first_n = 2;
  FaultInjector injector(profile, 23, &clock_);
  link_.SetFaultInjector(&injector);
  RetryPolicy policy;
  policy.max_attempts = 1;
  server_.SetRetryPolicy(policy);

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto browser = workstation.QueryRanked({"noted"}, 10);
  ASSERT_TRUE(browser.ok());
  EXPECT_EQ(browser->size(), 1u);  // Two of three cards dropped.
  EXPECT_EQ(workstation.presentation().degraded_parts().size(), 2u);
  for (const auto& note : workstation.presentation().degraded_parts()) {
    EXPECT_EQ(note.part, "miniature");
  }
}

TEST(StormShardTest, StormedShardDegradesScatterGathersNotCrashes) {
  SimClock clock;
  struct Stack {
    explicit Stack(SimClock* clock)
        : device("shard", 65536, 512,
                 storage::DeviceCostModel::Instant(), true, clock),
          cache(256),
          archiver(&device, &cache),
          link(Link::Ethernet(clock)),
          server(&archiver, &versions, clock, &link) {}
    storage::BlockDevice device;
    storage::BlockCache cache;
    storage::Archiver archiver;
    storage::VersionStore versions;
    Link link;
    ObjectServer server;
  };
  Stack a(&clock), b(&clock);
  ShardRouter router({&a.server, &b.server}, &clock, HashPlacement(),
                     ShardRouterOptions{});  // Replication 2: full copies.
  text::MarkupParser parser;
  for (storage::ObjectId id = 1; id <= 6; ++id) {
    MultimediaObject obj(id);
    auto doc = parser.Parse(".PP\nsharded storm body\n");
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    ASSERT_TRUE(obj.Archive().ok());
    ASSERT_TRUE(router.Store(obj).ok());
  }

  // Shard a's link storms hard enough to trip its breaker; shard b has
  // every replica, so gathers stay complete across the failover.
  CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  a.link.ConfigureBreaker(breaker);
  FaultProfile dead;
  dead.drop_rate = 1.0;
  FaultInjector injector(dead, 0x57A, &clock);
  a.link.SetFaultInjector(&injector);

  for (int round = 0; round < 4; ++round) {
    auto cards = router.GatherCards({"sharded"});
    ASSERT_TRUE(cards.ok()) << cards.status().ToString();
    EXPECT_EQ(cards->size(), 6u);
    auto ranked = router.GatherCardsRanked({"sharded"}, 4);
    ASSERT_TRUE(ranked.ok()) << ranked.status().ToString();
    EXPECT_EQ(ranked->size(), 4u);
  }
  EXPECT_EQ(a.link.breaker().state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(router.live_count(), 1u);
  // The storm tripped the shard out of the scatter set; the ranked
  // query keeps answering from the surviving replica set.
  EXPECT_EQ(router.QueryRanked({"sharded"}, 10).size(), 6u);
}

}  // namespace
}  // namespace minos::server
