#include "minos/storage/block_device.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

BlockDevice MakeDevice(SimClock* clock, bool worm = false,
                       DeviceCostModel cost = DeviceCostModel::Instant()) {
  return BlockDevice("dev", /*num_blocks=*/64, /*block_size=*/16, cost, worm,
                     clock);
}

TEST(BlockDeviceTest, WriteThenReadRoundTrip) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  const std::string data(32, 'x');  // Two blocks.
  ASSERT_TRUE(dev.Write(3, data).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(3, 2, &out).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDeviceTest, UnwrittenBlocksReadAsZeros) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  std::string out;
  ASSERT_TRUE(dev.Read(0, 1, &out).ok());
  EXPECT_EQ(out, std::string(16, '\0'));
}

TEST(BlockDeviceTest, PartialBlockWriteRejected) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  EXPECT_TRUE(dev.Write(0, "short").IsInvalidArgument());
}

TEST(BlockDeviceTest, OutOfRangeAccessRejected) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  std::string out;
  EXPECT_TRUE(dev.Read(63, 2, &out).IsOutOfRange());
  EXPECT_TRUE(dev.Write(64, std::string(16, 'a')).IsOutOfRange());
}

TEST(BlockDeviceTest, WormRejectsRewrite) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock, /*worm=*/true);
  const std::string data(16, 'a');
  ASSERT_TRUE(dev.Write(5, data).ok());
  EXPECT_TRUE(dev.Write(5, data).IsFailedPrecondition());
  // A different block is still writable.
  EXPECT_TRUE(dev.Write(6, data).ok());
}

TEST(BlockDeviceTest, MagneticAllowsRewrite) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock, /*worm=*/false);
  const std::string a(16, 'a'), b(16, 'b');
  ASSERT_TRUE(dev.Write(5, a).ok());
  ASSERT_TRUE(dev.Write(5, b).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(5, 1, &out).ok());
  EXPECT_EQ(out, b);
}

TEST(BlockDeviceTest, BlocksUsedTracksHighWater) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  EXPECT_EQ(dev.blocks_used(), 0u);
  ASSERT_TRUE(dev.Write(0, std::string(48, 'x')).ok());
  EXPECT_EQ(dev.blocks_used(), 3u);
  ASSERT_TRUE(dev.Write(1, std::string(16, 'y')).ok());
  EXPECT_EQ(dev.blocks_used(), 3u);  // Rewrite does not add.
}

TEST(BlockDeviceTest, StatsCountAccesses) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  ASSERT_TRUE(dev.Write(0, std::string(32, 'x')).ok());
  std::string out;
  ASSERT_TRUE(dev.Read(0, 2, &out).ok());
  ASSERT_TRUE(dev.Read(1, 1, &out).ok());
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().reads, 2u);
  EXPECT_EQ(dev.stats().blocks_written, 2u);
  EXPECT_EQ(dev.stats().blocks_read, 3u);
  dev.ResetStats();
  EXPECT_EQ(dev.stats().reads, 0u);
}

TEST(BlockDeviceTest, CostModelChargesClock) {
  SimClock clock;
  DeviceCostModel cost;
  cost.seek_base = 100;
  cost.seek_per_block = 1.0;
  cost.rotational_latency = 10;
  cost.transfer_per_block = 5;
  BlockDevice dev("d", 100, 16, cost, false, &clock);
  std::string out;
  // Head at 0; read block 20, 2 blocks: seek 100+20, rot 10, xfer 10.
  ASSERT_TRUE(dev.Read(20, 2, &out).ok());
  EXPECT_EQ(clock.Now(), 100 + 20 + 10 + 10);
  // Head now at 22; sequential read at 22: no seek.
  const Micros before = clock.Now();
  ASSERT_TRUE(dev.Read(22, 1, &out).ok());
  EXPECT_EQ(clock.Now() - before, 10 + 5);
}

TEST(BlockDeviceTest, SeekCostCappedAtMax) {
  DeviceCostModel cost;
  cost.seek_base = 10;
  cost.seek_per_block = 1.0;
  cost.seek_max = 50;
  EXPECT_EQ(cost.SeekCost(0, 1000), 50);
  EXPECT_EQ(cost.SeekCost(0, 0), 0);
  EXPECT_EQ(cost.SeekCost(0, 20), 30);
}

TEST(BlockDeviceTest, EstimateMatchesActualCharge) {
  SimClock clock;
  BlockDevice dev("d", 1000, 16, DeviceCostModel::OpticalDisk(), false,
                  &clock);
  const Micros est = dev.EstimateServiceTime(500, 4);
  std::string out;
  const Micros before = clock.Now();
  ASSERT_TRUE(dev.Read(500, 4, &out).ok());
  EXPECT_EQ(clock.Now() - before, est);
}

TEST(BlockDeviceTest, OpticalSlowerThanMagnetic) {
  const DeviceCostModel opt = DeviceCostModel::OpticalDisk();
  const DeviceCostModel mag = DeviceCostModel::MagneticDisk();
  const Micros opt_cost = opt.SeekCost(0, 10000) + opt.rotational_latency +
                          opt.TransferCost(100);
  const Micros mag_cost = mag.SeekCost(0, 10000) + mag.rotational_latency +
                          mag.TransferCost(100);
  EXPECT_GT(opt_cost, mag_cost);
}

TEST(BlockDeviceTest, NearSeekTierCheapensShortMoves) {
  DeviceCostModel cost = DeviceCostModel::OpticalDisk();
  ASSERT_GT(cost.near_seek_threshold, 0u);
  // Within the tier: flat track-to-track cost.
  EXPECT_EQ(cost.SeekCost(100, 100 + cost.near_seek_threshold),
            cost.near_seek_cost);
  EXPECT_EQ(cost.SeekCost(100, 101), cost.near_seek_cost);
  // Beyond the tier: the actuator model applies and is far costlier.
  EXPECT_GT(cost.SeekCost(100, 100 + cost.near_seek_threshold + 1),
            10 * cost.near_seek_cost);
  // Zero-distance seeks stay free.
  EXPECT_EQ(cost.SeekCost(100, 100), 0);
}

TEST(BlockDeviceTest, NearSeekTierDisabledByDefaultModels) {
  DeviceCostModel custom;
  custom.seek_base = 100;
  custom.seek_per_block = 1.0;
  // near_seek_threshold defaults to 0: the tier never applies.
  EXPECT_EQ(custom.SeekCost(0, 1), 101);
}

TEST(BlockDeviceTest, SeeksCountedOnlyOnMove) {
  SimClock clock;
  BlockDevice dev("d", 100, 16, DeviceCostModel::MagneticDisk(), false,
                  &clock);
  std::string out;
  ASSERT_TRUE(dev.Read(10, 2, &out).ok());   // Seek from 0 to 10.
  ASSERT_TRUE(dev.Read(12, 1, &out).ok());   // Sequential: no seek.
  ASSERT_TRUE(dev.Read(0, 1, &out).ok());    // Seek back.
  EXPECT_EQ(dev.stats().seeks, 2u);
}

}  // namespace
}  // namespace minos::storage
