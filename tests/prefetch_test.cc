// The asynchronous prefetch pipeline: background-channel time model
// (free hits, residual waits, foreground fallback), jump cancellation,
// fault posture (speculative failures never trip the foreground
// breaker), backoff windows spent pumping, and the end-to-end demand
// paging path through the workstation.

#include "minos/server/prefetch.h"

#include <gtest/gtest.h>

#include <string>

#include "minos/core/visual_browser.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"
#include "minos/text/formatter.h"
#include "minos/text/markup.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

/// A queue over a local registry so counters start from zero.
struct QueueHarness {
  SimClock clock;
  obs::MetricsRegistry registry;
  PrefetchQueue queue;

  explicit QueueHarness(PrefetchOptions options = {})
      : queue(&clock, nullptr, WithRegistry(options, &registry)) {}

  static PrefetchOptions WithRegistry(PrefetchOptions options,
                                      obs::MetricsRegistry* registry) {
    options.registry = registry;
    return options;
  }

  /// Work that models a transfer of `cost` simulated time.
  PrefetchQueue::PageWork Costing(Micros cost) {
    return [this, cost] {
      clock.Advance(cost);
      return Status::OK();
    };
  }

  int64_t Count(const std::string& name) {
    return static_cast<int64_t>(registry.counter("prefetch." + name)->value());
  }
};

constexpr PrefetchKey Page(uint64_t object_id, int index) {
  return PrefetchKey{PrefetchKind::kVisualPage, object_id, index};
}

// --- Background-channel time model ------------------------------------

TEST(PrefetchQueueTest, HitAfterFullOverlapIsFree) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(10)));
  h.queue.Pump();
  // The foreground clock never saw the speculative work.
  EXPECT_EQ(h.clock.Now(), 0);

  h.clock.Advance(MillisToMicros(50));  // The user reads the page.
  EXPECT_TRUE(h.queue.TakePage(Page(1, 2)));
  EXPECT_EQ(h.clock.Now(), MillisToMicros(50));  // No extra wait.
  EXPECT_EQ(h.Count("hits"), 1);
  EXPECT_EQ(h.Count("issued"), 1);
}

TEST(PrefetchQueueTest, EarlyConsumerWaitsOnlyTheResidual) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(10)));
  h.queue.Pump();
  h.clock.Advance(MillisToMicros(4));  // Turn the page early.
  EXPECT_TRUE(h.queue.TakePage(Page(1, 2)));
  // Waited out the remaining 6 ms of background transfer, not all 10.
  EXPECT_EQ(h.clock.Now(), MillisToMicros(10));
  EXPECT_EQ(h.Count("partial_hits"), 1);
}

TEST(PrefetchQueueTest, BackgroundChannelIsSerialized) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(10)));
  h.queue.WantPage(Page(1, 3), 2, h.Costing(MillisToMicros(10)));
  h.queue.Pump();
  // One channel: the second transfer queues behind the first, so its
  // completion is at 20 ms, not 10.
  EXPECT_EQ(h.queue.background_free_at(), MillisToMicros(20));
  h.clock.Advance(MillisToMicros(19));
  EXPECT_TRUE(h.queue.TakePage(Page(1, 3)));
  EXPECT_EQ(h.clock.Now(), MillisToMicros(20));
}

TEST(PrefetchQueueTest, BackedUpChannelFallsBackToForeground) {
  PrefetchOptions options;
  options.max_page_wait_us = MillisToMicros(5);
  QueueHarness h(options);
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(50)));
  h.queue.Pump();
  // Residual would be 50 ms — more than the cap: the entry is dropped
  // and the caller is told to do the (cheap) foreground transfer.
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));
  EXPECT_EQ(h.clock.Now(), 0);  // Never blocked the foreground.
  EXPECT_EQ(h.Count("misses"), 1);
  EXPECT_EQ(h.Count("wasted"), 1);
  // The entry is gone, not retried later.
  EXPECT_EQ(h.queue.ready_count(), 0u);
}

TEST(PrefetchQueueTest, QueuedUnissuedEntryIsSupersededByForeground) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(10)));
  // No Pump: the cursor arrived before any idle window.
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));
  EXPECT_EQ(h.Count("misses"), 1);
  EXPECT_EQ(h.queue.queued_count(), 0u);  // Dropped, not left behind.
}

TEST(PrefetchQueueTest, DuplicateWantsAreIgnored) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(10)));
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(99)));
  EXPECT_EQ(h.Count("enqueued"), 1);
  EXPECT_EQ(h.queue.queued_count(), 1u);
}

TEST(PrefetchQueueTest, PumpIssuesNearestDistanceFirst) {
  PrefetchOptions options;
  options.max_inflight_per_pump = 1;
  QueueHarness h(options);
  h.queue.WantPage(Page(1, 5), 3, h.Costing(MillisToMicros(10)));
  h.queue.WantPage(Page(1, 3), 1, h.Costing(MillisToMicros(10)));
  h.queue.Pump();
  // The nearer page (distance 1) was issued, the farther one is still
  // queued.
  EXPECT_EQ(h.queue.ready_count(), 1u);
  h.clock.Advance(MillisToMicros(10));
  EXPECT_TRUE(h.queue.TakePage(Page(1, 3)));
  EXPECT_EQ(h.Count("hits"), 1);
}

// --- Jump cancellation -------------------------------------------------

TEST(PrefetchQueueTest, JumpCancelsQueuedAndWastesReadyEntries) {
  PrefetchOptions options;
  options.max_inflight_per_pump = 2;
  options.pages_ahead = 2;
  options.pages_behind = 1;
  QueueHarness h(options);
  for (int page = 2; page <= 5; ++page) {
    h.queue.WantPage(Page(1, page), page - 1,
                     h.Costing(MillisToMicros(5)));
  }
  h.queue.Pump();  // Issues pages 2 and 3; pages 4 and 5 stay queued.
  ASSERT_EQ(h.queue.ready_count(), 2u);
  ASSERT_EQ(h.queue.queued_count(), 2u);

  // The user jumps to page 40: everything around the old cursor is
  // stale (radius is max(pages_ahead, pages_behind) = 2).
  h.queue.OnJump(PrefetchKind::kVisualPage, 1, 40);
  EXPECT_EQ(h.Count("wasted"), 2);     // Ready pages 2, 3: work discarded.
  EXPECT_EQ(h.Count("cancelled"), 2);  // Queued pages 4, 5: never ran.

  // A stale ready page can never be delivered after the jump.
  h.clock.Advance(MillisToMicros(100));
  for (int page = 2; page <= 5; ++page) {
    EXPECT_FALSE(h.queue.TakePage(Page(1, page))) << "page " << page;
  }
}

TEST(PrefetchQueueTest, JumpKeepsEntriesInsideTheNewRadius) {
  QueueHarness h;  // pages_ahead 2 -> keep radius 2.
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantPage(Page(1, 41), 39, h.Costing(MillisToMicros(5)));
  h.queue.Pump();
  h.queue.OnJump(PrefetchKind::kVisualPage, 1, 40);
  // Page 41 is within radius of the new cursor: still ready for a hit.
  h.clock.Advance(MillisToMicros(100));
  EXPECT_TRUE(h.queue.TakePage(Page(1, 41)));
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));
}

TEST(PrefetchQueueTest, JumpOnlyDropsTheMatchingObjectAndKind) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantPage(Page(2, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.Pump();
  h.queue.OnJump(PrefetchKind::kVisualPage, 1, 40);
  h.clock.Advance(MillisToMicros(100));
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));  // Stale.
  EXPECT_TRUE(h.queue.TakePage(Page(2, 2)));   // Another object: kept.
}

TEST(PrefetchQueueTest, CancelAllDropsEverything) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantPage(Page(1, 3), 2, h.Costing(MillisToMicros(5)));
  h.queue.Pump();  // Both issue (default max_inflight_per_pump = 2).
  h.queue.WantPage(Page(1, 4), 3, h.Costing(MillisToMicros(5)));
  h.queue.CancelAll();
  EXPECT_EQ(h.Count("wasted"), 2);
  EXPECT_EQ(h.Count("cancelled"), 1);
  EXPECT_EQ(h.queue.queued_count() + h.queue.ready_count(), 0u);
}

TEST(PrefetchQueueTest, EvictionKeepsTheReadySetBounded) {
  PrefetchOptions options;
  options.ready_capacity = 1;
  options.max_inflight_per_pump = 2;
  QueueHarness h(options);
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantPage(Page(1, 3), 2, h.Costing(MillisToMicros(5)));
  h.queue.Pump();
  // Capacity 1: the stalest ready entry was evicted as wasted.
  EXPECT_EQ(h.queue.ready_count(), 1u);
  EXPECT_EQ(h.Count("wasted"), 1);
  h.clock.Advance(MillisToMicros(100));
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));  // The evicted one.
  EXPECT_TRUE(h.queue.TakePage(Page(1, 3)));
}

// --- Failures and the backoff sleeper ----------------------------------

TEST(PrefetchQueueTest, FailedWorkIsDroppedButStillOccupiesTheChannel) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, [&h] {
    h.clock.Advance(MillisToMicros(8));  // Timed out after 8 ms.
    return Status::Unavailable("link drop");
  });
  h.queue.WantPage(Page(1, 3), 2, h.Costing(MillisToMicros(10)));
  h.queue.Pump();
  EXPECT_EQ(h.Count("errors"), 1);
  EXPECT_EQ(h.clock.Now(), 0);  // The foreground never saw the failure.
  // The failed attempt held the channel for 8 ms before the next
  // transfer could start.
  EXPECT_EQ(h.queue.background_free_at(), MillisToMicros(18));
  h.clock.Advance(MillisToMicros(100));
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));  // Dropped, not retried.
  EXPECT_TRUE(h.queue.TakePage(Page(1, 3)));
}

TEST(PrefetchQueueTest, BackoffSleeperPumpsTheQueueThenWaits) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(3)));
  BackoffSleeper sleeper = h.queue.MakeBackoffSleeper();
  // A foreground retry waits out its backoff window; the window is
  // spent starting the queued background transfer.
  sleeper(MillisToMicros(20));
  EXPECT_EQ(h.clock.Now(), MillisToMicros(20));  // The wait happened...
  EXPECT_TRUE(h.queue.TakePage(Page(1, 2)));     // ...and so did the work.
  EXPECT_EQ(h.clock.Now(), MillisToMicros(20));  // Free hit: no recharge.
  EXPECT_EQ(h.Count("hits"), 1);
}

TEST(PrefetchQueueTest, ObjectAndMiniaturePayloadsRoundTrip) {
  QueueHarness h;
  h.queue.WantObject(7, 0, [&h]() -> StatusOr<MultimediaObject> {
    h.clock.Advance(MillisToMicros(5));
    return MultimediaObject(7);
  });
  h.queue.WantMiniature(3, 1, [&h]() -> StatusOr<MiniatureCard> {
    h.clock.Advance(MillisToMicros(2));
    MiniatureCard card;
    card.id = 9;
    return card;
  });
  h.queue.Pump();
  h.clock.Advance(MillisToMicros(20));
  auto object = h.queue.TakeObject(7);
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->id(), 7u);
  auto card = h.queue.TakeMiniature(3, 9);
  ASSERT_TRUE(card.has_value());
  EXPECT_EQ(card->id, 9u);
  EXPECT_EQ(h.Count("hits"), 2);
  // Consumed entries do not linger.
  EXPECT_FALSE(h.queue.TakeObject(7).has_value());
  EXPECT_FALSE(h.queue.TakeMiniature(3, 9).has_value());
}

TEST(PrefetchQueueTest, TakeMiniatureRejectsAnotherObjectsCard) {
  QueueHarness h;
  h.queue.WantMiniature(3, 1, [&h]() -> StatusOr<MiniatureCard> {
    h.clock.Advance(MillisToMicros(2));
    MiniatureCard card;
    card.id = 9;
    return card;
  });
  h.queue.Pump();
  h.clock.Advance(MillisToMicros(20));
  // Position 3 now names object 5 (a new query strip): the staged card
  // of object 9 must be dropped, never delivered.
  EXPECT_FALSE(h.queue.TakeMiniature(3, 5).has_value());
  EXPECT_EQ(h.Count("wasted"), 1);
  EXPECT_EQ(h.Count("misses"), 1);
  EXPECT_EQ(h.Count("hits"), 0);
  EXPECT_EQ(h.queue.ready_count(), 0u);
}

TEST(PrefetchQueueTest, CancelKindDropsOnlyThatKind) {
  QueueHarness h;
  h.queue.WantMiniature(0, 1, []() -> StatusOr<MiniatureCard> {
    return MiniatureCard{};
  });
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.Pump();
  h.queue.Cancel(PrefetchKind::kMiniature);
  h.clock.Advance(MillisToMicros(100));
  EXPECT_FALSE(h.queue.TakeMiniature(0, 0).has_value());
  EXPECT_TRUE(h.queue.TakePage(Page(1, 2)));  // Pages untouched.
}

TEST(PrefetchQueueTest, CancelObjectSparesOtherObjectsAndMiniatures) {
  QueueHarness h;
  h.queue.WantPage(Page(1, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantPage(Page(2, 2), 1, h.Costing(MillisToMicros(5)));
  h.queue.WantMiniature(0, 1, []() -> StatusOr<MiniatureCard> {
    MiniatureCard card;
    card.id = 4;
    return card;
  });
  h.queue.Pump();
  h.queue.Pump();  // Default max_inflight_per_pump = 2: issue all three.
  h.queue.CancelObject(1);
  h.clock.Advance(MillisToMicros(100));
  EXPECT_FALSE(h.queue.TakePage(Page(1, 2)));  // Re-opened: invalidated.
  EXPECT_TRUE(h.queue.TakePage(Page(2, 2)));
  EXPECT_TRUE(h.queue.TakeMiniature(0, 4).has_value());
}

// --- Fault posture: the breaker belongs to the foreground ---------------

TEST(PrefetchBreakerTest, BackgroundFailuresDoNotTripTheForegroundBreaker) {
  SimClock clock;
  obs::MetricsRegistry registry;
  Link link = Link::Ethernet(&clock, &registry);
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  link.ConfigureBreaker(options);
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector(profile, 11, &clock, &registry);
  link.SetFaultInjector(&injector);

  // A whole burst of failed speculative transfers...
  for (int i = 0; i < 6; ++i) {
    Link::BackgroundScope background(&link);
    EXPECT_FALSE(link.Transfer(4096).ok());
  }
  // ...leaves the breaker closed for the foreground path.
  EXPECT_EQ(link.breaker().state(), CircuitBreaker::State::kClosed);

  // The same failures in the foreground trip it as before.
  EXPECT_FALSE(link.Transfer(4096).ok());
  EXPECT_FALSE(link.Transfer(4096).ok());
  EXPECT_EQ(link.breaker().state(), CircuitBreaker::State::kOpen);
}

TEST(PrefetchBreakerTest, OpenBreakerStillFastFailsBackgroundTransfers) {
  SimClock clock;
  obs::MetricsRegistry registry;
  Link link = Link::Ethernet(&clock, &registry);
  CircuitBreaker::Options options;
  options.failure_threshold = 2;
  link.ConfigureBreaker(options);
  FaultProfile profile;
  profile.drop_rate = 1.0;
  FaultInjector injector(profile, 11, &clock, &registry);
  link.SetFaultInjector(&injector);
  EXPECT_FALSE(link.Transfer(4096).ok());
  EXPECT_FALSE(link.Transfer(4096).ok());
  ASSERT_EQ(link.breaker().state(), CircuitBreaker::State::kOpen);

  // Prefetching over a known-dead link is pointless: fast fail, and the
  // injector sees no more traffic.
  const uint64_t faults_before = injector.faults_injected();
  Link::BackgroundScope background(&link);
  EXPECT_TRUE(link.Transfer(4096).status().IsUnavailable());
  EXPECT_EQ(injector.faults_injected(), faults_before);
}

// --- End to end: demand paging through the workstation ------------------

class PrefetchWorkstationTest : public ::testing::Test {
 protected:
  PrefetchWorkstationTest()
      : device_("optical", 65536, 512,
                storage::DeviceCostModel::Instant(), true, &clock_),
        cache_(256),
        archiver_(&device_, &cache_),
        link_(Link::Ethernet(&clock_)),
        server_(&archiver_, &versions_, &clock_, &link_) {}

  /// A multi-page text object (one visual page per formatted text page).
  /// `keyword` makes the object findable by a query no other object
  /// matches.
  MultimediaObject PagedObject(storage::ObjectId id, int paragraphs,
                               const std::string& keyword = "") {
    MultimediaObject obj(id);
    obj.descriptor().layout.width = 48;
    obj.descriptor().layout.height = 12;
    std::string markup;
    for (int i = 0; i < paragraphs; ++i) {
      markup += ".PP\n" + (keyword.empty() ? "" : keyword + " ") +
                "hospital admission record paragraph describing the "
                "fracture treatment and recovery plan in enough words to "
                "spill across formatted pages\n";
    }
    text::MarkupParser parser;
    auto doc = parser.Parse(markup);
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    text::TextFormatter formatter(obj.descriptor().layout);
    const size_t pages = formatter.Paginate(obj.text_part()).value().size();
    EXPECT_GE(pages, 2u);
    for (size_t i = 0; i < pages; ++i) {
      VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      obj.descriptor().pages.push_back(page);
    }
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  static int64_t Count(const std::string& name) {
    return static_cast<int64_t>(
        obs::MetricsRegistry::Default().counter(name)->value());
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  Link link_;
  ObjectServer server_;
};

TEST_F(PrefetchWorkstationTest, SkeletonFetchTransfersFewerBytesThanWhole) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 10)).ok());
  const uint64_t before_whole = link_.bytes_transferred();
  ASSERT_TRUE(server_.Fetch(1, ObjectServer::FetchGranularity::kWhole).ok());
  const uint64_t whole = link_.bytes_transferred() - before_whole;
  const uint64_t before_skeleton = link_.bytes_transferred();
  ASSERT_TRUE(
      server_.Fetch(1, ObjectServer::FetchGranularity::kSkeleton).ok());
  const uint64_t skeleton = link_.bytes_transferred() - before_skeleton;
  // The skeleton defers the pageable text: strictly fewer bytes on the
  // wire at open time.
  EXPECT_LT(skeleton, whole);
  EXPECT_GT(skeleton, 0u);
}

TEST_F(PrefetchWorkstationTest, PageTurnsAfterPrefetchAreFreeHits) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 10)).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();
  const int64_t hits_before = Count("prefetch.hits");

  ASSERT_TRUE(workstation.Present(1).ok());
  core::VisualBrowser* browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  // Read, turn; the background staged the next page during the read.
  for (int turn = 0; turn < 3; ++turn) {
    clock_.Advance(MillisToMicros(200));
    const Micros start = clock_.Now();
    ASSERT_TRUE(browser->NextPage().ok());
    EXPECT_LE(clock_.Now() - start, MillisToMicros(1)) << "turn " << turn;
  }
  EXPECT_GE(Count("prefetch.hits") - hits_before, 3);
}

TEST_F(PrefetchWorkstationTest, DemandPagingChargesEachRangeOnce) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 10)).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();
  ASSERT_TRUE(workstation.Present(1).ok());
  core::VisualBrowser* browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  while (browser->NextPage().ok()) {
    clock_.Advance(MillisToMicros(50));
  }
  // Every page has been delivered: revisiting transfers nothing new.
  const uint64_t bytes_after_first_pass = link_.bytes_transferred();
  ASSERT_TRUE(browser->GotoPage(1).ok());
  while (browser->NextPage().ok()) {
  }
  EXPECT_EQ(link_.bytes_transferred(), bytes_after_first_pass);
}

// Satellite: a goto-page jump mid-prefetch cancels or demotes the stale
// entries and never delivers a stale page.
TEST_F(PrefetchWorkstationTest, GotoPageMidPrefetchDropsStaleEntries) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 28)).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();
  ASSERT_TRUE(workstation.Present(1).ok());
  core::VisualBrowser* browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  const int last = browser->page_count();
  ASSERT_GE(last, 6);
  // Settle into forward browsing so pages 2.. are staged ahead.
  clock_.Advance(MillisToMicros(200));
  ASSERT_TRUE(browser->NextPage().ok());
  ASSERT_GT(workstation.prefetch()->ready_count() +
                workstation.prefetch()->queued_count(),
            0u);

  const int64_t dropped_before =
      Count("prefetch.wasted") + Count("prefetch.cancelled");
  ASSERT_TRUE(browser->GotoPage(last).ok());  // Random seek: a jump.
  // The speculative work around the old cursor was discarded...
  EXPECT_GT(Count("prefetch.wasted") + Count("prefetch.cancelled"),
            dropped_before);
  EXPECT_GT(Count("prefetch.wasted"), 0);
  // ...and the landing page is the real one, not a stale delivery.
  EXPECT_EQ(browser->current_page(), last);
  // Stale entries for the abandoned neighbourhood are gone from the
  // queue: nothing can deliver them any more.
  clock_.Advance(MillisToMicros(500));
  EXPECT_FALSE(workstation.prefetch()->TakePage(
      PrefetchKey{PrefetchKind::kVisualPage, 1, 2}));
}

TEST_F(PrefetchWorkstationTest, LazyQueryMaterializesCardsUnderTheCursor) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 4)).ok());
  ASSERT_TRUE(server_.Store(PagedObject(2, 4)).ok());
  ASSERT_TRUE(server_.Store(PagedObject(3, 4)).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();
  auto browser = workstation.Query({"hospital"});
  ASSERT_TRUE(browser.ok());
  ASSERT_EQ(browser->size(), 3u);
  auto current = browser->Current();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->id, 1u);
  ASSERT_TRUE(browser->Next().ok());
  current = browser->Current();
  ASSERT_TRUE(current.ok());
  EXPECT_EQ((*current)->id, 2u);
  EXPECT_EQ(browser->Select().value(), 2u);
}

// A card staged for one query's strip must never be delivered as the
// card of whatever object occupies the same position in the next
// query's strip (nor poison the thumb cache with the wrong thumbnail).
TEST_F(PrefetchWorkstationTest, FreshQueryNeverDeliversStaleMiniatures) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 4, "alpha")).ok());
  ASSERT_TRUE(server_.Store(PagedObject(2, 4, "beta")).ok());
  ASSERT_TRUE(server_.Store(PagedObject(3, 4, "gamma")).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();

  auto first = workstation.Query({"hospital"});
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 3u);
  // Walking the strip stages the flanking cards — including object 1's
  // card at position 0.
  ASSERT_TRUE(first->Next().ok());
  clock_.Advance(MillisToMicros(200));

  // The new strip has object 2 at position 0.
  auto second = workstation.Query({"beta"});
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  auto card = second->Current();
  ASSERT_TRUE(card.ok());
  EXPECT_EQ((*card)->id, 2u);
}

// Re-opening an object restarts its delivery plan: the fresh skeleton
// fetch discounts the page bytes again, so entries staged during the
// previous open must not satisfy them as free hits — the second
// read-through must charge the link exactly what the first did.
TEST_F(PrefetchWorkstationTest, ReopeningAnObjectChargesItsPagesAgain) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 10)).ok());
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();

  const uint64_t before_first = link_.bytes_transferred();
  ASSERT_TRUE(workstation.Present(1).ok());
  core::VisualBrowser* browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  while (browser->NextPage().ok()) {
    clock_.Advance(MillisToMicros(50));
  }
  const uint64_t first_open = link_.bytes_transferred() - before_first;

  const uint64_t before_second = link_.bytes_transferred();
  ASSERT_TRUE(workstation.Present(1).ok());
  browser = workstation.presentation().visual_browser();
  ASSERT_NE(browser, nullptr);
  while (browser->NextPage().ok()) {
    clock_.Advance(MillisToMicros(50));
  }
  EXPECT_EQ(link_.bytes_transferred() - before_second, first_open);
}

// The server outlives the workstation by contract; a retried fetch
// after the session ends must not invoke the dead queue's backoff
// sleeper (caught by ASan as a use-after-free before the fix).
TEST_F(PrefetchWorkstationTest, ServerRetriesSafelyAfterWorkstationDies) {
  ASSERT_TRUE(server_.Store(PagedObject(1, 4)).ok());
  {
    render::Screen screen;
    Workstation workstation(&server_, &screen, &clock_);
    workstation.EnablePrefetch();
    ASSERT_TRUE(workstation.Present(1).ok());
  }
  obs::MetricsRegistry registry;
  FaultProfile profile;
  profile.drop_rate = 0.5;
  FaultInjector injector(profile, 7, &clock_, &registry);
  link_.SetFaultInjector(&injector);
  for (int i = 0; i < 10; ++i) {
    (void)server_.Fetch(1);  // Drops force retries and backoff sleeps.
  }
  link_.SetFaultInjector(nullptr);
}

TEST(ApportionStreamTest, SplitsEvenlyWithRemainderOnTheLastPage) {
  EXPECT_EQ(ApportionStream(100, 1, 4),
            (std::pair<uint64_t, uint64_t>{0, 25}));
  EXPECT_EQ(ApportionStream(10, 3, 3),
            (std::pair<uint64_t, uint64_t>{6, 4}));
  EXPECT_EQ(ApportionStream(0, 1, 4), (std::pair<uint64_t, uint64_t>{0, 0}));
  EXPECT_EQ(ApportionStream(100, 5, 4),
            (std::pair<uint64_t, uint64_t>{0, 0}));
}

// A stream smaller than its page count must still be delivered — the
// whole of it rides with every page (the delivered-set makes the first
// visitor the one that transfers it), not vanish into zero-byte chunks.
TEST(ApportionStreamTest, TinyStreamRidesWholeWithEveryPage) {
  for (int page = 1; page <= 9; ++page) {
    EXPECT_EQ(ApportionStream(5, page, 9),
              (std::pair<uint64_t, uint64_t>{0, 5}))
        << "page " << page;
  }
}

}  // namespace
}  // namespace minos::server
