#include <gtest/gtest.h>

#include "minos/render/export.h"
#include "minos/render/font5x7.h"
#include "minos/render/screen.h"
#include "minos/text/markup.h"

namespace minos::render {
namespace {

using image::Bitmap;
using image::Rect;

int InkedPixels(const Bitmap& bm, const Rect& r) {
  int count = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (bm.At(x, y) > 0) ++count;
    }
  }
  return count;
}

TEST(FontTest, GlyphsNonEmptyForPrintable) {
  for (char c = '!'; c <= '~'; ++c) {
    const uint8_t* glyph = Font5x7::Glyph(c);
    int bits = 0;
    for (int i = 0; i < 5; ++i) bits += __builtin_popcount(glyph[i]);
    EXPECT_GT(bits, 0) << "glyph for '" << c << "' is blank";
  }
}

TEST(FontTest, SpaceIsBlank) {
  const uint8_t* glyph = Font5x7::Glyph(' ');
  for (int i = 0; i < 5; ++i) EXPECT_EQ(glyph[i], 0);
  // Out-of-range characters render as space.
  EXPECT_EQ(Font5x7::Glyph('\x7F'), Font5x7::Glyph(' '));
}

TEST(FontTest, DrawCharInksPixels) {
  Bitmap bm(10, 10);
  Font5x7::DrawChar(&bm, 0, 0, 'A', 255);
  EXPECT_GT(InkedPixels(bm, Rect{0, 0, 10, 10}), 5);
}

TEST(FontTest, BoldThickerThanPlain) {
  Bitmap plain(10, 10), bold(10, 10);
  Font5x7::DrawChar(&plain, 0, 0, 'I', 255, false);
  Font5x7::DrawChar(&bold, 0, 0, 'I', 255, true);
  EXPECT_GT(InkedPixels(bold, Rect{0, 0, 10, 10}),
            InkedPixels(plain, Rect{0, 0, 10, 10}));
}

TEST(FontTest, UnderlineAddsRow) {
  Bitmap bm(10, 12);
  Font5x7::DrawChar(&bm, 0, 0, 'x', 255, false, true);
  int row_ink = 0;
  for (int x = 0; x < Font5x7::kCellWidth; ++x) {
    if (bm.At(x, Font5x7::kGlyphHeight + 1) > 0) ++row_ink;
  }
  EXPECT_EQ(row_ink, Font5x7::kCellWidth);
}

TEST(FontTest, ScaledGlyphCoversScaledArea) {
  Bitmap small(10, 10), big(20, 20);
  Font5x7::DrawChar(&small, 0, 0, 'H', 255);
  Font5x7::DrawStringScaled(&big, 0, 0, "H", 2, 255);
  const int small_ink = InkedPixels(small, Rect{0, 0, 10, 10});
  const int big_ink = InkedPixels(big, Rect{0, 0, 20, 20});
  EXPECT_EQ(big_ink, 4 * small_ink);  // Each pixel becomes a 2x2 block.
}

TEST(FontTest, ScaledStringAdvancesByScaledCells) {
  Bitmap bm(100, 30);
  const int end = Font5x7::DrawStringScaled(&bm, 0, 0, "ab", 3, 255);
  EXPECT_EQ(end, 2 * Font5x7::kCellWidth * 3);
}

TEST(FontTest, ScaleBelowOneClampsToOne) {
  Bitmap a(10, 10), b(10, 10);
  Font5x7::DrawStringScaled(&a, 0, 0, "x", 0, 255);
  Font5x7::DrawStringScaled(&b, 0, 0, "x", 1, 255);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(ScreenTest, DrawTextScaledInksMore) {
  Screen plain_screen, scaled_screen;
  plain_screen.DrawText(10, 10, "TITLE");
  scaled_screen.DrawTextScaled(10, 10, "TITLE", 2);
  EXPECT_GT(InkedPixels(scaled_screen.framebuffer(),
                        scaled_screen.PageArea()),
            InkedPixels(plain_screen.framebuffer(),
                        plain_screen.PageArea()));
}

TEST(FontTest, DrawStringAdvances) {
  Bitmap bm(100, 12);
  const int end = Font5x7::DrawString(&bm, 0, 0, "abc", 255);
  EXPECT_EQ(end, 3 * Font5x7::kCellWidth);
}

TEST(ScreenTest, RegionsPartitionTheScreen) {
  Screen screen;
  const Rect page = screen.PageArea();
  const Rect menu = screen.MenuArea();
  EXPECT_EQ(page.w + menu.w, screen.layout().width);
  EXPECT_EQ(page.x, 0);
  EXPECT_EQ(menu.x, page.w);
  const Rect msg = screen.MessageArea();
  const Rect lower = screen.LowerPageArea();
  EXPECT_EQ(msg.h + lower.h, page.h);
  EXPECT_EQ(lower.y, msg.h);
}

TEST(ScreenTest, ClearBlanksEverything) {
  Screen screen;
  screen.DrawText(10, 10, "hello");
  EXPECT_GT(InkedPixels(screen.framebuffer(), screen.PageArea()), 0);
  screen.Clear();
  EXPECT_EQ(InkedPixels(screen.framebuffer(), screen.PageArea()), 0);
}

TEST(ScreenTest, DrawTextPageShowsContent) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nvisible words on the page\n");
  ASSERT_TRUE(doc.ok());
  text::TextFormatter formatter(text::PageLayout{});
  auto pages = formatter.Paginate(*doc);
  ASSERT_TRUE(pages.ok());
  Screen screen;
  screen.DrawTextPage((*pages)[0], screen.PageArea());
  EXPECT_GT(InkedPixels(screen.framebuffer(), screen.PageArea()), 50);
}

TEST(ScreenTest, MenuDrawsOptions) {
  Screen screen;
  screen.SetMenu({"next page", "prev page", "find"});
  EXPECT_GT(InkedPixels(screen.framebuffer(), screen.MenuArea()), 50);
}

TEST(ScreenTest, MenuOverflowTruncates) {
  Screen screen;
  std::vector<std::string> many(100, "option");
  screen.SetMenu(many);  // Must not crash or draw outside the strip.
  const Rect page = screen.PageArea();
  EXPECT_EQ(InkedPixels(screen.framebuffer(), page), 0);
}

TEST(ScreenTest, DigestChangesWithContent) {
  Screen screen;
  const uint64_t blank = screen.Digest();
  screen.DrawText(5, 5, "x");
  EXPECT_NE(screen.Digest(), blank);
}

TEST(ScreenTest, BitmapCompositingModes) {
  Screen screen;
  Bitmap base(10, 10);
  base.FillRect(Rect{0, 0, 10, 10}, 100);
  screen.DrawBitmap(base, Rect{0, 0, 10, 10});
  Bitmap overlay(10, 10);
  overlay.Set(0, 0, 50);
  // Transparency: max(100, 50) = 100 stays.
  screen.BlendBitmap(overlay, Rect{0, 0, 10, 10});
  EXPECT_EQ(screen.framebuffer().At(0, 0), 100);
  // Overwrite: inked 50 replaces 100, blanks leave rest.
  screen.OverwriteBitmap(overlay, Rect{0, 0, 10, 10});
  EXPECT_EQ(screen.framebuffer().At(0, 0), 50);
  EXPECT_EQ(screen.framebuffer().At(5, 5), 100);
}

TEST(ScreenTest, PageSnapshotExcludesMenu) {
  Screen screen;
  screen.SetMenu({"option"});
  const Bitmap snap = screen.PageSnapshot();
  EXPECT_EQ(snap.width(), screen.PageArea().w);
  EXPECT_EQ(InkedPixels(snap, Rect{0, 0, snap.width(), snap.height()}), 0);
}

TEST(ExportTest, AsciiArtDimensions) {
  Bitmap bm(100, 50);
  bm.FillRect(Rect{0, 0, 100, 50}, 255);
  const std::string art = ToAscii(bm, 50);
  ASSERT_FALSE(art.empty());
  const size_t first_line = art.find('\n');
  EXPECT_LE(first_line, 50u);
  EXPECT_EQ(art[0], '@');  // Full ink maps to the darkest glyph.
}

TEST(ExportTest, AsciiBlankIsSpaces) {
  Bitmap bm(20, 10);
  const std::string art = ToAscii(bm, 20);
  for (char c : art) {
    EXPECT_TRUE(c == ' ' || c == '\n');
  }
}

TEST(ExportTest, PgmWriteSucceeds) {
  Bitmap bm(8, 8);
  bm.Set(1, 1, 255);
  EXPECT_TRUE(WritePgm(bm, "/tmp/minos_render_test.pgm").ok());
  EXPECT_TRUE(WritePgm(bm, "/nonexistent/dir/x.pgm").IsInvalidArgument());
}

}  // namespace
}  // namespace minos::render
