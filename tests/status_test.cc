#include "minos/util/status.h"

#include <gtest/gtest.h>

#include "minos/util/statusor.h"

namespace minos {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCodesMatchPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, NonOkStatusesAreNotOk) {
  EXPECT_FALSE(Status::NotFound("x").ok());
  EXPECT_FALSE(Status::Internal("x").ok());
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::NotFound("object 42 missing");
  EXPECT_EQ(s.message(), "object 42 missing");
  EXPECT_EQ(s.ToString(), "NotFound: object 42 missing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeName(Status::Code::kOk), "OK");
  EXPECT_EQ(StatusCodeName(Status::Code::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeName(Status::Code::kUnsupported), "Unsupported");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  MINOS_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsNotFound());
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInternal());
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v = 5;
  EXPECT_EQ(v.value_or(-1), 5);
}

StatusOr<int> Double(int x) {
  if (x > 100) return Status::OutOfRange("too big");
  return 2 * x;
}

StatusOr<int> Quadruple(int x) {
  MINOS_ASSIGN_OR_RETURN(int doubled, Double(x));
  return Double(doubled);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  StatusOr<int> v = Quadruple(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 12);
  EXPECT_TRUE(Quadruple(200).status().IsOutOfRange());
  // Failure in the second stage propagates too.
  EXPECT_TRUE(Quadruple(60).status().IsOutOfRange());
}

}  // namespace
}  // namespace minos
