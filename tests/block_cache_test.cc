#include "minos/storage/block_cache.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

TEST(BlockCacheTest, MissOnEmpty) {
  BlockCache cache(4);
  std::string out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(BlockCacheTest, HitAfterInsert) {
  BlockCache cache(4);
  cache.Insert(1, "payload");
  std::string out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out, "payload");
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(BlockCacheTest, EvictsLeastRecentlyUsed) {
  BlockCache cache(2);
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  std::string out;
  ASSERT_TRUE(cache.Lookup(1, &out));  // 1 is now MRU.
  cache.Insert(3, "c");                // Evicts 2.
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_FALSE(cache.Lookup(2, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
}

TEST(BlockCacheTest, InsertRefreshesExisting) {
  BlockCache cache(2);
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  cache.Insert(1, "a2");  // Refresh 1; 2 becomes LRU.
  cache.Insert(3, "c");   // Evicts 2.
  std::string out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_EQ(out, "a2");
  EXPECT_FALSE(cache.Lookup(2, &out));
}

TEST(BlockCacheTest, ZeroCapacityNeverStores) {
  BlockCache cache(0);
  cache.Insert(1, "a");
  std::string out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BlockCacheTest, EraseRemoves) {
  BlockCache cache(4);
  cache.Insert(1, "a");
  cache.Erase(1);
  std::string out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  cache.Erase(99);  // Erasing a missing key is a no-op.
}

TEST(BlockCacheTest, ClearRemovesEverything) {
  BlockCache cache(4);
  cache.Insert(1, "a");
  cache.Insert(2, "b");
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  std::string out;
  EXPECT_FALSE(cache.Lookup(1, &out));
}

TEST(BlockCacheTest, HitRateComputed) {
  BlockCache cache(4);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.0);
  cache.Insert(1, "a");
  std::string out;
  cache.Lookup(1, &out);
  cache.Lookup(2, &out);
  EXPECT_DOUBLE_EQ(cache.HitRate(), 0.5);
}

TEST(BlockCacheTest, SizeNeverExceedsCapacity) {
  BlockCache cache(8);
  for (uint64_t i = 0; i < 100; ++i) cache.Insert(i, "x");
  EXPECT_EQ(cache.size(), 8u);
}

}  // namespace
}  // namespace minos::storage
