// Tests for the work-stealing virtual-time task pool: epoch clock
// algebra, worker-count determinism (the property the CI determinism
// matrix gates end-to-end), steal-heavy stress, exception propagation,
// and a TSan-targeted hammer on the shared structures pool tasks touch
// (striped BlockCache, MetricsRegistry, Tracer task sinks).

#include "minos/runtime/task_pool.h"

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/object/multimedia_object.h"
#include "minos/query/query_engine.h"
#include "minos/query/scored_index.h"
#include "minos/storage/block_cache.h"
#include "minos/text/markup.h"
#include "minos/util/clock.h"

namespace minos::runtime {
namespace {

TEST(TaskPoolTest, ParallelEpochAdvancesByMaxCost) {
  SimClock clock(1000);
  TaskPool pool(&clock, 3);
  std::vector<TaskPool::Task> tasks;
  for (Micros cost : {30, 70, 10}) {
    tasks.push_back([&clock, cost] { clock.Sleep(cost); });
  }
  const std::vector<Micros> costs = pool.RunEpoch(std::move(tasks));
  ASSERT_EQ(costs.size(), 3u);
  EXPECT_EQ(costs[0], 30);
  EXPECT_EQ(costs[1], 70);
  EXPECT_EQ(costs[2], 10);
  EXPECT_EQ(clock.Now(), 1070);  // Base + the slowest branch.
}

TEST(TaskPoolTest, SerialEpochSumsCosts) {
  SimClock clock;
  TaskPool pool(&clock, 2);
  std::vector<TaskPool::Task> tasks;
  for (Micros cost : {5, 11, 7}) {
    tasks.push_back([&clock, cost] { clock.Sleep(cost); });
  }
  pool.RunEpoch(std::move(tasks), TaskPool::TimeModel::kSerial);
  EXPECT_EQ(clock.Now(), 23);
}

TEST(TaskPoolTest, TaskFramesIsolateAndRewindsClampToFrameStart) {
  SimClock clock(500);
  TaskPool pool(&clock, 2);
  std::vector<TaskPool::Task> tasks;
  std::vector<Micros> observed(2, 0);
  tasks.push_back([&clock, &observed] {
    clock.Sleep(40);
    clock.RewindTo(0);  // Clamps to the frame start, not absolute zero.
    observed[0] = clock.Now();
    clock.Sleep(15);
  });
  tasks.push_back([&clock, &observed] {
    observed[1] = clock.Now();  // Frames start at the epoch base.
    clock.Sleep(60);
  });
  const std::vector<Micros> costs = pool.RunEpoch(std::move(tasks));
  EXPECT_EQ(observed[0], 500);
  EXPECT_EQ(observed[1], 500);
  EXPECT_EQ(costs[0], 15);
  EXPECT_EQ(costs[1], 60);
  EXPECT_EQ(clock.Now(), 560);
}

TEST(TaskPoolTest, InTaskOnlyInsideTasks) {
  SimClock clock;
  TaskPool pool(&clock, 2);
  EXPECT_FALSE(TaskPool::InTask());
  bool inside = false;
  std::vector<TaskPool::Task> tasks;
  tasks.push_back([&inside] { inside = TaskPool::InTask(); });
  pool.RunEpoch(std::move(tasks));
  EXPECT_TRUE(inside);
  EXPECT_FALSE(TaskPool::InTask());
}

TEST(TaskPoolTest, NestedEpochRunsInlineWithSameAlgebra) {
  SimClock clock;
  TaskPool pool(&clock, 3);
  std::vector<TaskPool::Task> outer;
  Micros inner_elapsed = 0;
  outer.push_back([&clock, &pool, &inner_elapsed] {
    const Micros before = clock.Now();
    std::vector<TaskPool::Task> inner;
    inner.push_back([&clock] { clock.Sleep(20); });
    inner.push_back([&clock] { clock.Sleep(50); });
    pool.RunEpoch(std::move(inner));
    inner_elapsed = clock.Now() - before;
  });
  outer.push_back([&clock] { clock.Sleep(10); });
  const std::vector<Micros> costs = pool.RunEpoch(std::move(outer));
  EXPECT_EQ(inner_elapsed, 50);  // Nested parallel epoch: max, inline.
  EXPECT_EQ(costs[0], 50);
  EXPECT_EQ(costs[1], 10);
  EXPECT_EQ(clock.Now(), 50);
}

/// A deterministic pseudo-random mixer (splitmix64 step): the seeded
/// task graphs below derive every cost and payload from it.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4b9feULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Runs a seeded multi-epoch task graph on `workers` threads and folds
/// everything observable — per-task results, returned costs, the clock
/// trajectory, and the committed trace JSON — into one digest.
uint64_t RunSeededGraph(int workers, uint64_t seed) {
  SimClock clock;
  obs::Tracer tracer(&clock);
  TaskPool pool(&clock, workers);
  pool.SetTracer(&tracer);
  uint64_t digest = seed;
  for (int epoch = 0; epoch < 12; ++epoch) {
    const size_t n = 1 + Mix(seed + epoch) % 16;
    std::vector<uint64_t> results(n, 0);
    std::vector<TaskPool::Task> tasks;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t salt = Mix(seed ^ (epoch * 131 + i));
      tasks.push_back([&clock, &tracer, &results, i, salt] {
        obs::TraceSpan span =
            tracer.StartSpan("graph.task#" + std::to_string(i));
        uint64_t acc = salt;
        for (int r = 0; r < 200; ++r) acc = Mix(acc);
        clock.Sleep(static_cast<Micros>(salt % 97));
        results[i] = acc;
        span.End();
      });
    }
    const std::vector<Micros> costs = pool.RunEpoch(std::move(tasks));
    for (size_t i = 0; i < n; ++i) {
      digest = Mix(digest ^ results[i]);
      digest = Mix(digest ^ static_cast<uint64_t>(costs[i]));
    }
    digest = Mix(digest ^ static_cast<uint64_t>(clock.Now()));
  }
  pool.SetTracer(nullptr);
  for (const char c : tracer.ToJson()) digest = Mix(digest ^ c);
  return digest;
}

TEST(TaskPoolTest, WorkerCountDeterminism) {
  const uint64_t one = RunSeededGraph(1, 0xC0FFEE);
  EXPECT_EQ(RunSeededGraph(2, 0xC0FFEE), one);
  EXPECT_EQ(RunSeededGraph(4, 0xC0FFEE), one);
  EXPECT_NE(RunSeededGraph(4, 0xBEEF), one);  // The seed does matter.
}

TEST(TaskPoolTest, StealHeavyStress) {
  SimClock clock;
  TaskPool pool(&clock, 4);
  // Skewed epochs: worker 0 owns nearly all the queued work (round-robin
  // placement, but the first task is a long grind), so idle workers must
  // steal to finish. Correctness, not steal counts, is asserted — on a
  // single hardware core the thieves may legitimately never wake in
  // time.
  std::atomic<uint64_t> total{0};
  constexpr int kEpochs = 50;
  constexpr size_t kTasks = 16;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    std::vector<TaskPool::Task> tasks;
    for (size_t i = 0; i < kTasks; ++i) {
      tasks.push_back([&total, i] {
        uint64_t acc = i;
        const int spins = i == 0 ? 20000 : 50;
        for (int r = 0; r < spins; ++r) acc = Mix(acc);
        total.fetch_add(acc % 1000, std::memory_order_relaxed);
      });
    }
    pool.RunEpoch(std::move(tasks));
  }
  EXPECT_EQ(pool.epochs_run(), static_cast<uint64_t>(kEpochs));
  EXPECT_EQ(pool.tasks_run(), static_cast<uint64_t>(kEpochs) * kTasks);
  // The deterministic expected sum, computed serially.
  uint64_t expected = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    for (size_t i = 0; i < kTasks; ++i) {
      uint64_t acc = i;
      const int spins = i == 0 ? 20000 : 50;
      for (int r = 0; r < spins; ++r) acc = Mix(acc);
      expected += acc % 1000;
    }
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(TaskPoolTest, LowestIndexExceptionPropagatesAndPoolSurvives) {
  SimClock clock;
  TaskPool pool(&clock, 4);
  std::vector<TaskPool::Task> tasks;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([&clock, &ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      clock.Sleep(10 + i);
      if (i == 5) throw std::runtime_error("task five");
      if (i == 2) throw std::runtime_error("task two");
    });
  }
  try {
    pool.RunEpoch(std::move(tasks));
    FAIL() << "epoch with throwing tasks did not throw";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "task two");  // Lowest index wins.
  }
  // Every task still ran and the clock still advanced by the slowest.
  EXPECT_EQ(ran.load(), 8);
  EXPECT_EQ(clock.Now(), 17);
  // The pool is reusable after a throwing epoch.
  std::vector<TaskPool::Task> again;
  again.push_back([&clock] { clock.Sleep(3); });
  const std::vector<Micros> costs = pool.RunEpoch(std::move(again));
  EXPECT_EQ(costs[0], 3);
  EXPECT_EQ(clock.Now(), 20);
}

object::MultimediaObject TextObject(storage::ObjectId id,
                                    const std::string& body) {
  object::MultimediaObject obj(id);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  return obj;
}

TEST(TaskPoolTest, PooledTopKMatchesSerialBitForBit) {
  query::ScoredIndex index;
  for (storage::ObjectId id = 1; id <= 24; ++id) {
    std::string body = "filler words about scheduling and budgets";
    for (storage::ObjectId k = 0; k < id % 7; ++k) body += " fracture";
    if (id % 3 == 0) body += " treatment plan";
    index.Add(TextObject(id, body), 1.0);
  }
  const std::vector<std::string> words{"fracture", "treatment"};
  query::QueryEngine engine;
  for (const query::QueryMode mode :
       {query::QueryMode::kConjunctive, query::QueryMode::kDisjunctive}) {
    const query::RankedQuery serial =
        engine.TopK(index, index, words, 8, mode, nullptr);
    SimClock clock;
    TaskPool pool(&clock, 4);
    const query::RankedQuery pooled =
        engine.TopK(index, index, words, 8, mode, &pool);
    EXPECT_EQ(pooled.terms_scored, serial.terms_scored);
    EXPECT_EQ(pooled.postings_scanned, serial.postings_scanned);
    EXPECT_EQ(pooled.heap_evictions, serial.heap_evictions);
    ASSERT_EQ(pooled.hits.size(), serial.hits.size());
    for (size_t i = 0; i < serial.hits.size(); ++i) {
      EXPECT_EQ(pooled.hits[i].id, serial.hits[i].id);
      EXPECT_EQ(pooled.hits[i].score, serial.hits[i].score);
    }
  }
}

TEST(TaskPoolTest, TsanHammerOnSharedStructures) {
  // Every worker hammers the structures pool tasks legitimately share:
  // the striped block cache, registry counters and histograms, the
  // scored index's version counter, and per-task tracer sinks. The
  // assertions are loose — the point is the interleaving itself, which
  // the tsan CI job runs under -fsanitize=thread.
  SimClock clock;
  obs::Tracer tracer(&clock);
  obs::MetricsRegistry registry;
  storage::BlockCache cache(64, &registry, /*stripes=*/8);
  query::ScoredIndex index;
  index.Add(TextObject(1, "shared fracture document"), 1.0);
  obs::Counter* ops = registry.counter("hammer.ops");
  obs::Histogram* sizes = registry.histogram("hammer.sizes");
  TaskPool pool(&clock, 4);
  pool.SetTracer(&tracer);
  for (int epoch = 0; epoch < 20; ++epoch) {
    std::vector<TaskPool::Task> tasks;
    for (size_t i = 0; i < 8; ++i) {
      tasks.push_back([&, i, epoch] {
        obs::TraceSpan span = tracer.StartSpan("hammer.lane");
        for (uint64_t block = 0; block < 40; ++block) {
          const uint64_t key = Mix(block * 8 + i + epoch) % 96;
          std::string payload;
          if (!cache.Lookup(key, &payload)) {
            cache.Insert(key, std::string(1 + key % 17, 'x'));
          }
          if (key % 13 == 0) cache.Erase(key);
          ops->Increment();
          sizes->Record(static_cast<double>(key));
          (void)index.Postings("fracture").size();
          (void)index.version();
        }
        clock.Sleep(static_cast<Micros>(i));
        span.End();
      });
    }
    pool.RunEpoch(std::move(tasks));
  }
  pool.SetTracer(nullptr);
  EXPECT_EQ(ops->value(), 20 * 8 * 40);
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.stripes(), 8u);
}

}  // namespace
}  // namespace minos::runtime
