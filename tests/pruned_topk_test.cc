// Property test for the max-score pruned top-k scorer: across seeded
// random catalogs, query shapes, conjunctive and disjunctive modes, and
// worker counts 1/2/4, the pruned scorer must return bit-identical ids
// AND bit-identical scores to the exhaustive reference scorer — pruning
// is an optimization, never an approximation — while actually skipping
// postings on selective disjunctive queries.

#include "minos/query/query_engine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "minos/query/scored_index.h"
#include "minos/runtime/task_pool.h"
#include "minos/util/random.h"

namespace minos::query {
namespace {

using storage::ObjectId;

/// A seeded random catalog: `docs` documents over a `vocab`-word
/// vocabulary with a skewed word distribution (low word indexes are
/// common, high ones rare — what gives idf and max-score bounds their
/// spread), built through the incremental Append path.
void BuildCatalog(uint64_t seed, size_t docs, size_t vocab,
                  ScoredIndex* index) {
  Random rng(seed);
  for (ObjectId id = 1; id <= docs; ++id) {
    const size_t words = 4 + rng.Uniform(24);
    AppendedContent content;
    for (size_t w = 0; w < words; ++w) {
      // Squared-uniform skew: word 0 is everywhere, the tail is rare.
      const size_t pick = (rng.Uniform(vocab) * rng.Uniform(vocab)) / vocab;
      content.text += "w" + std::to_string(pick) + " ";
    }
    index->Append(id, content, 0.0);
  }
}

std::vector<std::string> RandomQuery(Random* rng, size_t vocab) {
  const size_t terms = 1 + rng->Uniform(4);
  std::vector<std::string> words;
  for (size_t t = 0; t < terms; ++t) {
    words.push_back("w" + std::to_string(rng->Uniform(vocab)));
  }
  return words;
}

void ExpectBitIdentical(const RankedQuery& pruned,
                        const RankedQuery& exact,
                        const std::string& label) {
  ASSERT_EQ(pruned.hits.size(), exact.hits.size()) << label;
  for (size_t i = 0; i < exact.hits.size(); ++i) {
    EXPECT_EQ(pruned.hits[i].id, exact.hits[i].id)
        << label << " rank " << i;
    // EXPECT_EQ on doubles is exact: bit-identical, not within-epsilon.
    EXPECT_EQ(pruned.hits[i].score, exact.hits[i].score)
        << label << " rank " << i;
  }
}

TEST(PrunedTopKProperty, BitIdenticalToExhaustiveAcrossRandomCatalogs) {
  const QueryEngine exhaustive({}, ScoringStrategy::kExhaustive);
  const QueryEngine pruned({}, ScoringStrategy::kMaxScore);
  for (const uint64_t seed : {11u, 42u, 1986u}) {
    const size_t vocab = 40;
    ScoredIndex index;
    BuildCatalog(seed, 300, vocab, &index);
    Random rng(seed ^ 0xABCDEF);
    for (int trial = 0; trial < 40; ++trial) {
      const std::vector<std::string> words = RandomQuery(&rng, vocab);
      const size_t k = 1 + rng.Uniform(12);
      for (const QueryMode mode :
           {QueryMode::kConjunctive, QueryMode::kDisjunctive}) {
        const RankedQuery exact =
            exhaustive.TopK(index, index, words, k, mode);
        const RankedQuery fast = pruned.TopK(index, index, words, k, mode);
        const std::string label =
            "seed=" + std::to_string(seed) + " trial=" +
            std::to_string(trial) + " k=" + std::to_string(k) +
            (mode == QueryMode::kConjunctive ? " conj" : " disj");
        ExpectBitIdentical(fast, exact, label);
        // Work accounting is conserved: the pruned scorer charges
        // exactly the postings it did not skip.
        EXPECT_EQ(fast.postings_scanned + fast.postings_skipped,
                  exact.postings_scanned)
            << label;
        EXPECT_EQ(exact.postings_skipped, 0u) << label;
      }
    }
  }
}

TEST(PrunedTopKProperty, WorkerCountNeverChangesResultsOrCounters) {
  // The fixed-partition decomposition promises: hits, scores, and every
  // work counter are a function of the catalog and the query, never of
  // the pool size (or its absence).
  const QueryEngine engine;  // Default strategy: kMaxScore.
  const size_t vocab = 32;
  ScoredIndex index;
  BuildCatalog(7, 250, vocab, &index);
  Random rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    const std::vector<std::string> words = RandomQuery(&rng, vocab);
    const size_t k = 1 + rng.Uniform(8);
    for (const QueryMode mode :
         {QueryMode::kConjunctive, QueryMode::kDisjunctive}) {
      const RankedQuery serial =
          engine.TopK(index, index, words, k, mode, nullptr);
      for (const int workers : {1, 2, 4}) {
        SimClock clock;
        runtime::TaskPool pool(&clock, workers);
        const RankedQuery pooled =
            engine.TopK(index, index, words, k, mode, &pool);
        const std::string label =
            "trial=" + std::to_string(trial) + " workers=" +
            std::to_string(workers) +
            (mode == QueryMode::kConjunctive ? " conj" : " disj");
        ExpectBitIdentical(pooled, serial, label);
        EXPECT_EQ(pooled.terms_scored, serial.terms_scored) << label;
        EXPECT_EQ(pooled.postings_scanned, serial.postings_scanned)
            << label;
        EXPECT_EQ(pooled.postings_skipped, serial.postings_skipped)
            << label;
        EXPECT_EQ(pooled.heap_evictions, serial.heap_evictions) << label;
      }
    }
  }
}

TEST(PrunedTopKProperty, SelectiveDisjunctionsActuallySkipPostings) {
  // On a catalog where one query term is everywhere and another is
  // rare, a small k lets the rare term's scores saturate the heap and
  // the common list stop generating candidates: skipped must be a
  // substantial share, not a rounding error.
  ScoredIndex index;
  for (ObjectId id = 1; id <= 400; ++id) {
    AppendedContent content;
    content.text = "common ";
    if (id % 40 == 0) content.text += "rare rare rare ";
    index.Append(id, content, 0.0);
  }
  const QueryEngine engine;
  const RankedQuery got = engine.TopK(index, index, {"rare", "common"}, 5,
                                      QueryMode::kDisjunctive);
  ASSERT_EQ(got.hits.size(), 5u);
  EXPECT_GT(got.postings_skipped, 0u);
  // The pruned scan visits under half of what exhaustive scoring would.
  EXPECT_LT(got.postings_scanned * 2,
            got.postings_scanned + got.postings_skipped);
}

TEST(PrunedTopKProperty, AppendBuiltIndexMatchesAddBuiltStatistics) {
  // The incremental Append path and a delta-applied stats mirror must
  // agree with each other: a stats-only index fed only ApplyDelta
  // yields the same df / doc count / lengths the postings index holds,
  // so scoring against either gives identical results.
  ScoredIndex postings;
  ScoredIndex stats(/*stats_only=*/true);
  Random rng(5);
  for (ObjectId id = 1; id <= 120; ++id) {
    AppendedContent content;
    const size_t words = 3 + rng.Uniform(9);
    for (size_t w = 0; w < words; ++w) {
      content.text += "w" + std::to_string(rng.Uniform(20)) + " ";
    }
    const IndexDelta delta = postings.Append(id, content, 0.0);
    stats.ApplyDelta(delta);
  }
  EXPECT_EQ(stats.stats().doc_count, postings.stats().doc_count);
  EXPECT_DOUBLE_EQ(stats.stats().total_length,
                   postings.stats().total_length);
  for (size_t w = 0; w < 20; ++w) {
    const std::string term = "w" + std::to_string(w);
    EXPECT_EQ(stats.DocFreq(term), postings.DocFreq(term)) << term;
  }
  const QueryEngine engine;
  const RankedQuery local =
      engine.TopK(postings, postings, {"w3", "w15"}, 8,
                  QueryMode::kDisjunctive);
  const RankedQuery global =
      engine.TopK(postings, stats, {"w3", "w15"}, 8,
                  QueryMode::kDisjunctive);
  ExpectBitIdentical(global, local, "stats-mirror");
}

}  // namespace
}  // namespace minos::query
