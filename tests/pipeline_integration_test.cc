// End-to-end pipeline test: editing workspace -> object formatter ->
// archive (optical WORM) -> object server -> content query -> miniature
// browsing -> presentation manager -> browsing with transparencies and
// process simulation. This is the life of a multimedia object as §4/§5
// describe it.

#include <gtest/gtest.h>

#include "minos/format/archive_mailer.h"
#include "minos/format/object_formatter.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"

namespace minos {
namespace {

using format::ArchiveMailer;
using format::ObjectFormatter;
using format::ObjectWorkspace;
using object::MultimediaObject;

std::string SerializedSquare(int size, uint8_t ink, int inset) {
  image::Bitmap bm(size, size);
  bm.FillRect(image::Rect{inset, inset, size - 2 * inset,
                          size - 2 * inset},
              ink);
  return image::Image::FromBitmap(std::move(bm)).Serialize();
}

class PipelineTest : public ::testing::Test {
 protected:
  PipelineTest()
      : device_("optical", 1 << 16, 512,
                storage::DeviceCostModel::Instant(), true, &clock_),
        cache_(512),
        archiver_(&device_, &cache_),
        link_(server::Link::Ethernet(&clock_)),
        object_server_(&archiver_, &versions_, &clock_, &link_),
        workstation_(&object_server_, &screen_, &clock_) {}

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  server::Link link_;
  server::ObjectServer object_server_;
  render::Screen screen_;
  server::Workstation workstation_;
};

TEST_F(PipelineTest, WorkspaceToBrowsingSession) {
  // 1. Author the object in an editing workspace.
  ObjectWorkspace ws("medical-case-1042");
  ws.SetSynthesis(R"(@MODE visual
@LAYOUT 40 10
.TITLE Case 1042
.CHAPTER History
.PP
The patient reported wrist pain after a bicycle fall on gravel.
.CHAPTER Radiology
.PP
The radiograph shows a hairline fracture with no displacement.
@IMAGE xray
@TRANSPARENCY marking
)");
  ws.AddDataFile("xray", storage::DataType::kImage,
                 SerializedSquare(48, 160, 4));
  ws.AddDataFile("marking", storage::DataType::kImage,
                 SerializedSquare(48, 250, 18));

  // 2. Format and archive.
  ObjectFormatter formatter;
  auto obj = formatter.Format(ws, 1042);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  ASSERT_TRUE(obj->SetAttribute("patient", "rider").ok());
  ASSERT_TRUE(obj->Archive().ok());

  // 3. Store at the server.
  ASSERT_TRUE(object_server_.Store(*obj).ok());
  EXPECT_GT(device_.blocks_used(), 0u);

  // 4. Query by content from the workstation.
  auto cards = workstation_.Query({"fracture"});
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), 1u);
  auto id = cards->Select();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1042u);

  // 5. Present and browse.
  ASSERT_TRUE(workstation_.Present(*id).ok());
  core::PresentationManager& pm = workstation_.presentation();
  core::VisualBrowser* browser = pm.visual_browser();
  ASSERT_NE(browser, nullptr);
  EXPECT_GE(browser->page_count(), 4);

  // Chapter navigation works on the fetched object.
  ASSERT_TRUE(browser->NextUnit(text::LogicalUnit::kChapter).ok());
  ASSERT_TRUE(browser->FindPattern("hairline").ok());

  // 6. The transparency page lays the marking over the x-ray.
  const int xray_page = browser->page_count() - 1;  // Image page.
  ASSERT_TRUE(browser->GotoPage(xray_page).ok());
  const uint64_t xray_digest = screen_.Digest();
  ASSERT_TRUE(browser->NextPage().ok());  // The transparency.
  EXPECT_NE(screen_.Digest(), xray_digest);
  EXPECT_EQ(pm.log().OfKind(core::EventKind::kTransparencyShown).size(),
            1u);
}

TEST_F(PipelineTest, DedupedXrayMailsOutsideIntact) {
  // The x-ray is archived once; two case objects reference it.
  const std::string xray_payload = SerializedSquare(64, 200, 6);
  auto shared_addr = archiver_.Append(xray_payload);
  ASSERT_TRUE(shared_addr.ok());
  ASSERT_TRUE(archiver_.Flush().ok());

  ArchiveMailer mailer(&archiver_, &versions_, &clock_);
  auto make_case = [&](storage::ObjectId id) {
    ObjectWorkspace ws("case-" + std::to_string(id));
    ws.SetSynthesis(".PP\nShared x-ray case file number " +
                    std::to_string(id) + ".\n@IMAGE xray\n");
    ws.AddDataFile("xray", storage::DataType::kImage, xray_payload);
    ObjectFormatter formatter;
    auto obj = formatter.Format(ws, id);
    EXPECT_TRUE(obj.ok());
    EXPECT_TRUE(obj->Archive().ok());
    return std::move(obj).value();
  };

  MultimediaObject case_a = make_case(1);
  MultimediaObject case_b = make_case(2);
  auto bytes_a =
      mailer.SerializeWithArchiverRefs(case_a, {{"image:0", *shared_addr}});
  auto bytes_b =
      mailer.SerializeWithArchiverRefs(case_b, {{"image:0", *shared_addr}});
  ASSERT_TRUE(bytes_a.ok());
  ASSERT_TRUE(bytes_b.ok());
  ASSERT_TRUE(mailer.ArchiveBytes(1, *bytes_a).ok());
  ASSERT_TRUE(mailer.ArchiveBytes(2, *bytes_b).ok());

  // Mailing outside resolves the pointer; the mailed object is larger
  // than the stored one by about the image payload.
  auto mailed = mailer.MailOutside(1);
  ASSERT_TRUE(mailed.ok());
  EXPECT_GT(mailed->size(), bytes_a->size() + xray_payload.size() / 2);
  auto decoded = MultimediaObject::DeserializeArchived(1, *mailed);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->images().size(), 1u);
  // Pixel-exact dedup round trip.
  auto original = image::Image::Deserialize(xray_payload);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(decoded->images()[0].Render().Digest(),
            original->Render().Digest());
}

TEST_F(PipelineTest, ViewPathCheaperThanFullFetchOnDeviceTime) {
  // A large bitmap at the server; compare simulated *time* for a view
  // retrieval against a whole-image retrieval (the §2/§5 argument for
  // views and miniatures).
  MultimediaObject obj(7);
  image::Bitmap big(1024, 768);
  for (int y = 0; y < 768; ++y) {
    for (int x = 0; x < 1024; ++x) {
      big.Set(x, y, static_cast<uint8_t>((x * 7 + y * 13) % 255));
    }
  }
  ASSERT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(big))).ok());
  object::VisualPageSpec page;
  page.images.push_back({0, image::Rect{}});
  obj.descriptor().pages.push_back(page);
  ASSERT_TRUE(obj.Archive().ok());

  // Use a real optical cost model for this comparison.
  SimClock opt_clock;
  storage::BlockDevice opt_device("optical", 1 << 16, 512,
                                  storage::DeviceCostModel::OpticalDisk(),
                                  true, &opt_clock);
  storage::BlockCache opt_cache(0);  // Cold: no caching.
  storage::Archiver opt_archiver(&opt_device, &opt_cache);
  storage::VersionStore opt_versions;
  server::Link opt_link = server::Link::Ethernet(&opt_clock);
  server::ObjectServer opt_server(&opt_archiver, &opt_versions, &opt_clock,
                                  &opt_link);
  ASSERT_TRUE(opt_server.Store(obj).ok());

  const Micros t0 = opt_clock.Now();
  ASSERT_TRUE(
      opt_server.FetchImageRegion(7, 0, image::Rect{400, 300, 128, 96})
          .ok());
  const Micros view_time = opt_clock.Now() - t0;

  const Micros t1 = opt_clock.Now();
  ASSERT_TRUE(opt_server.FetchImage(7, 0).ok());
  const Micros full_time = opt_clock.Now() - t1;

  EXPECT_LT(view_time, full_time / 5);
}

TEST_F(PipelineTest, EditingStateBrowsingSharesSoftware) {
  // "The user can use the same browsing within object capabilities as in
  // the object archiver in order to view objects which are in the editing
  // stage." (§4) We emulate by archiving a preview copy: the browser code
  // path is identical.
  ObjectWorkspace ws("draft-memo");
  ws.SetSynthesis(".PP\nDraft visible in the miniature preview.\n");
  ObjectFormatter formatter;
  auto draft = formatter.Format(ws, 500);
  ASSERT_TRUE(draft.ok());
  EXPECT_EQ(draft->state(), object::ObjectState::kEditing);
  // Preview: archive a copy and browse it with the standard browser.
  MultimediaObject preview = *draft;
  ASSERT_TRUE(preview.Archive().ok());
  ASSERT_TRUE(object_server_.Store(preview).ok());
  ASSERT_TRUE(workstation_.Present(500).ok());
  EXPECT_NE(workstation_.presentation().visual_browser(), nullptr);
  // The original draft is still editable afterward.
  EXPECT_TRUE(draft->SetAttribute("status", "draft").ok());
}

}  // namespace
}  // namespace minos
