// Tests for word placements, on-screen pattern highlighting, and
// relevance span markers.

#include <gtest/gtest.h>

#include "minos/core/visual_browser.h"
#include "minos/render/font5x7.h"
#include "minos/text/markup.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

TEST(WordPlacementTest, EveryWordHasAPlacement) {
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".PP\nalpha beta gamma delta epsilon zeta eta theta\n");
  ASSERT_TRUE(doc.ok());
  text::TextFormatter formatter(text::PageLayout{});
  auto pages = formatter.Paginate(*doc);
  ASSERT_TRUE(pages.ok());
  size_t placed = 0;
  for (const text::TextPage& p : *pages) placed += p.words.size();
  EXPECT_EQ(placed, doc->Components(text::LogicalUnit::kWord).size());
}

TEST(WordPlacementTest, PlacementMatchesRenderedLine) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nfind the needle in this line\n");
  ASSERT_TRUE(doc.ok());
  text::TextFormatter formatter(text::PageLayout{});
  auto pages = formatter.Paginate(*doc);
  ASSERT_TRUE(pages.ok());
  const size_t offset = doc->contents().find("needle");
  const text::WordPlacement* w = (*pages)[0].FindWordAt(offset);
  ASSERT_NE(w, nullptr);
  const std::string& line =
      (*pages)[0].lines[static_cast<size_t>(w->line)];
  EXPECT_EQ(line.substr(static_cast<size_t>(w->col_begin),
                        static_cast<size_t>(w->col_end - w->col_begin)),
            "needle");
}

TEST(WordPlacementTest, FindWordAtMisses) {
  text::TextPage page;
  page.words.push_back(text::WordPlacement{{10, 16}, 0, 0, 6});
  EXPECT_EQ(page.FindWordAt(5), nullptr);
  EXPECT_NE(page.FindWordAt(12), nullptr);
  EXPECT_EQ(page.FindWordAt(16), nullptr);  // End is exclusive.
}

class HighlightTest : public ::testing::Test {
 protected:
  HighlightTest() : messages_(&clock_, voice::SpeakerParams{}) {
    obj_ = std::make_unique<MultimediaObject>(1);
    text::MarkupParser parser;
    std::string body;
    for (int i = 0; i < 30; ++i) {
      body += "Common filler sentence number " + std::to_string(i) + ". ";
    }
    body += "The unique beacon word sits here. ";
    for (int i = 0; i < 30; ++i) {
      body += "Trailing filler sentence " + std::to_string(i) + ". ";
    }
    auto doc = parser.Parse(".PP\n" + body + "\n");
    obj_->descriptor().layout.width = 40;
    obj_->descriptor().layout.height = 8;
    obj_->SetTextPart(std::move(doc).value()).ok();
    auto formatted = FormatObjectText(*obj_);
    for (size_t i = 0; i < formatted->pages.size(); ++i) {
      VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      obj_->descriptor().pages.push_back(page);
    }
    obj_->Archive().ok();
    auto browser = VisualBrowser::Open(obj_.get(), &screen_, &messages_,
                                       &clock_, &log_);
    browser_ = std::move(browser).value();
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<VisualBrowser> browser_;
};

TEST_F(HighlightTest, FindPatternHighlightsTheHit) {
  const uint64_t before = screen_.Digest();
  ASSERT_TRUE(browser_->FindPattern("beacon").ok());
  const uint64_t after = screen_.Digest();
  EXPECT_NE(before, after);
  // The underline row below the highlighted word carries ink: find the
  // word's placement and check the pixel row beneath it.
  const size_t offset = obj_->text_part().contents().find("beacon");
  const auto& pages = obj_->descriptor().pages;
  const uint32_t text_page =
      pages[static_cast<size_t>(browser_->current_page() - 1)].text_page;
  auto formatted = FormatObjectText(*obj_);
  const text::WordPlacement* w =
      formatted->pages[text_page - 1].FindWordAt(offset);
  ASSERT_NE(w, nullptr);
  const int cw = render::Font5x7::kCellWidth;
  const int ch = render::Font5x7::kCellHeight;
  const int x = w->col_begin * cw + cw;  // Inside the word.
  const int y = w->line * ch + render::Font5x7::kGlyphHeight + 1;
  EXPECT_GT(screen_.framebuffer().At(x, y), 0);
}

TEST_F(HighlightTest, HighlightOffsetOffPageIsNotFound) {
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  const size_t far_offset = obj_->text_part().size() - 5;
  EXPECT_TRUE(browser_->HighlightOffset(far_offset).IsNotFound());
}

TEST_F(HighlightTest, MarkTextSpanDrawsIndicators) {
  const size_t begin = obj_->text_part().contents().find("unique");
  const size_t end = obj_->text_part().contents().find("sits here") + 9;
  ASSERT_TRUE(browser_->GotoTextOffset(begin).ok());
  const uint64_t before = screen_.Digest();
  ASSERT_TRUE(browser_->MarkTextSpan(begin, end).ok());
  EXPECT_NE(screen_.Digest(), before);
}

TEST_F(HighlightTest, MarkTextSpanOffPageIsNotFound) {
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  const size_t far = obj_->text_part().size();
  EXPECT_TRUE(browser_->MarkTextSpan(far - 4, far).IsNotFound());
}

}  // namespace
}  // namespace minos::core
