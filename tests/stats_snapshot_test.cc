// End-to-end observability test: drives a presentation session through
// the full pipeline (object server + link + block cache + scheduler +
// visual browsing), exports the default registry as a minos.metrics.v1
// snapshot, and checks that every metric family the trajectory format
// promises is present — the same families BENCH_*.json files and
// `minos_render --stats` carry.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "minos/core/visual_browser.h"
#include "minos/obs/export.h"
#include "minos/obs/json.h"
#include "minos/obs/metrics.h"
#include "minos/server/object_server.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/storage/request_scheduler.h"
#include "minos/text/formatter.h"
#include "minos/text/markup.h"
#include "minos/util/random.h"

namespace minos {
namespace {

object::MultimediaObject MakeVisualObject(storage::ObjectId id) {
  text::MarkupParser parser;
  auto doc = parser.Parse(R"(.TITLE Observability Session
.PP
The presentation manager requests the appropriate pieces of information
from the multimedia object server subsystems and presents them.
.CHAPTER Browsing
.PP
The user turns pages, enters relevant objects, and returns; every step
leaves a latency sample behind in the registry.
.PP
A final snapshot captures the whole session in one document.
)");
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 40;
  obj.descriptor().layout.height = 8;
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

/// Runs the pipeline against the default registry and returns the final
/// SimClock reading.
Micros DriveSession() {
  SimClock clock;
  storage::BlockDevice device("optical", 4096, 1024,
                              storage::DeviceCostModel::OpticalDisk(),
                              false, &clock);
  storage::BlockCache cache(1024);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);

  object::MultimediaObject obj = MakeVisualObject(1);
  EXPECT_TRUE(server.Store(obj).ok());
  cache.Clear();
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(server.Fetch(1).ok());
  }
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
  EXPECT_GT(link.bytes_transferred(), 0u);

  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser =
      core::VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  EXPECT_TRUE(browser.ok());
  while ((*browser)->AdvancePages(1).ok()) {
  }

  storage::RequestScheduler scheduler(&device,
                                      storage::SchedulingPolicy::kFcfs);
  Random rng(9);
  std::vector<storage::IoRequest> reqs;
  for (uint64_t id = 0; id < 32; ++id) {
    storage::IoRequest req;
    req.id = id;
    req.block = rng.Uniform(4096 - 4);
    req.count = 2;
    req.arrival_time = static_cast<Micros>(rng.Uniform(100000));
    reqs.push_back(req);
  }
  scheduler.Run(reqs);
  return clock.Now();
}

TEST(StatsSnapshotTest, ExportedSnapshotCarriesEveryPipelineFamily) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.Reset();  // Deterministic instance scopes: block_cache0, link0, ...
  const Micros sim_time = DriveSession();

  obs::SnapshotMeta meta{"stats_snapshot_test", sim_time};
  const std::string json = obs::SnapshotToJson(reg.Snapshot(), meta);
  ASSERT_TRUE(obs::ValidateSnapshotJson(json).ok())
      << obs::ValidateSnapshotJson(json).ToString();

  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  const obs::JsonValue& root = *parsed;
  EXPECT_EQ(root.Get("schema").string(), "minos.metrics.v1");
  EXPECT_EQ(root.Get("bench").string(), "stats_snapshot_test");
  EXPECT_EQ(static_cast<Micros>(root.Get("sim_time_us").number()),
            sim_time);

  // Block cache and link families (counters).
  const obs::JsonValue& counters = root.Get("counters");
  for (const char* name :
       {"block_cache0.hits", "block_cache0.misses",
        "block_cache0.evictions", "link0.bytes_total", "link0.transfers",
        "server.fetches"}) {
    ASSERT_TRUE(counters.Has(name)) << "missing counter " << name;
  }
  EXPECT_GT(counters.Get("block_cache0.hits").number(), 0);
  EXPECT_GT(counters.Get("block_cache0.misses").number(), 0);
  EXPECT_GT(counters.Get("link0.bytes_total").number(), 0);
  EXPECT_GT(counters.Get("link0.transfers").number(), 0);

  // Scheduler queueing-delay percentiles and page-turn latency
  // (histograms with the full summary field set).
  const obs::JsonValue& histograms = root.Get("histograms");
  for (const char* name :
       {"scheduler.fcfs.queueing_delay_us", "scheduler.fcfs.service_time_us",
        "browser.visual.page_turn_us", "link0.transfer_us"}) {
    SCOPED_TRACE(name);
    ASSERT_TRUE(histograms.Has(name)) << "missing histogram " << name;
    const obs::JsonValue& h = histograms.Get(name);
    for (const char* field :
         {"count", "sum", "min", "max", "mean", "p50", "p90", "p99"}) {
      EXPECT_TRUE(h.Has(field)) << "missing field " << field;
    }
  }
  EXPECT_GT(
      histograms.Get("scheduler.fcfs.queueing_delay_us").Get("count")
          .number(),
      0);
  EXPECT_GT(
      histograms.Get("browser.visual.page_turn_us").Get("count").number(),
      0);
}

TEST(StatsSnapshotTest, WriteSnapshotJsonRoundTripsThroughDisk) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.Reset();
  reg.counter("demo.events")->Increment(3);
  reg.histogram("demo.latency_us")->Record(12.0);

  const std::string path = testing::TempDir() + "/snapshot_test.json";
  obs::SnapshotMeta meta{"disk_round_trip", 77};
  ASSERT_TRUE(obs::WriteSnapshotJson(reg, path, meta).ok());

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  ASSERT_TRUE(obs::ValidateSnapshotJson(json).ok())
      << obs::ValidateSnapshotJson(json).ToString();
  auto parsed = obs::ParseJson(json);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Get("bench").string(), "disk_round_trip");
  EXPECT_EQ(parsed->Get("sim_time_us").number(), 77.0);
  EXPECT_EQ(parsed->Get("counters").Get("demo.events").number(), 3.0);
  EXPECT_EQ(
      parsed->Get("histograms").Get("demo.latency_us").Get("count").number(),
      1.0);
  std::remove(path.c_str());
}

TEST(StatsSnapshotTest, CsvExportListsEveryMetric) {
  obs::MetricsRegistry reg;
  reg.counter("a.hits")->Increment(2);
  reg.gauge("b.depth")->Set(1.0);
  reg.histogram("c.lat_us")->Record(5.0);
  const std::string csv = obs::SnapshotToCsv(reg.Snapshot());
  EXPECT_NE(csv.find("counter,a.hits,value,2"), std::string::npos) << csv;
  EXPECT_NE(csv.find("gauge,b.depth,value,1"), std::string::npos) << csv;
  EXPECT_NE(csv.find("histogram,c.lat_us,count,1"), std::string::npos)
      << csv;
}

TEST(StatsSnapshotTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateSnapshotJson("not json").ok());
  EXPECT_FALSE(obs::ValidateSnapshotJson("{}").ok());
  EXPECT_FALSE(
      obs::ValidateSnapshotJson(
          R"({"schema":"wrong.v0","bench":"x","sim_time_us":0,)"
          R"("counters":{},"gauges":{},"histograms":{}})")
          .ok());
  // Histogram missing its percentile fields.
  EXPECT_FALSE(
      obs::ValidateSnapshotJson(
          R"({"schema":"minos.metrics.v1","bench":"x","sim_time_us":0,)"
          R"("counters":{},"gauges":{},"histograms":{"h":{"count":1}}})")
          .ok());
  EXPECT_TRUE(
      obs::ValidateSnapshotJson(
          R"({"schema":"minos.metrics.v1","bench":"x","sim_time_us":0,)"
          R"("counters":{},"gauges":{},"histograms":{}})")
          .ok());
}

}  // namespace
}  // namespace minos
