// End-to-end request tracing across the shard fabric: one traced browse
// action against a sharded archive must come back as a single connected
// span tree — every parent link resolving inside the trace — even when
// fault storms force retries, scatter/gather rewinds overlap sibling
// work on one clock, and failovers reroute mid-request. Attribution
// tags (retry backoff, failover outcome, salvage degradation) and the
// per-shard RED metrics are asserted here too.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minos/object/multimedia_object.h"
#include "minos/obs/trace.h"
#include "minos/server/object_server.h"
#include "minos/server/shard_router.h"
#include "minos/text/markup.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using storage::ObjectId;

/// One shard's full server stack with its own link, so per-shard faults
/// and breakers stay independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  Link link;
  ObjectServer server;
};

MultimediaObject TextObject(ObjectId id, const std::string& body) {
  MultimediaObject obj(id);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  object::VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

class TraceFabricTest : public ::testing::Test {
 protected:
  void BuildShards(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      stacks_.push_back(std::make_unique<ShardStack>(&clock_));
    }
    std::vector<ObjectServer*> servers;
    for (auto& stack : stacks_) servers.push_back(&stack->server);
    router_.emplace(servers, &clock_);
  }

  /// Attaches a fresh injector with `profile` to shard `i`'s link.
  void Inject(size_t i, const FaultProfile& profile, uint64_t seed) {
    injectors_.push_back(
        std::make_unique<FaultInjector>(profile, seed, &clock_));
    stacks_[i]->link.SetFaultInjector(injectors_.back().get());
  }

  static int64_t Count(const std::string& name) {
    return obs::MetricsRegistry::Default().counter(name)->value();
  }

  /// Asserts the tracer holds exactly one trace whose every parent link
  /// resolves: one root, no orphans, all spans under `trace_id`.
  void ExpectOneConnectedTree(const obs::Tracer& tracer,
                              uint64_t trace_id) {
    const std::vector<obs::SpanRecord> spans = tracer.OrderedSpans();
    ASSERT_FALSE(spans.empty());
    std::set<uint64_t> ids;
    size_t roots = 0;
    for (const obs::SpanRecord& s : spans) {
      EXPECT_EQ(s.trace_id, trace_id) << s.name;
      ids.insert(s.span_id);
      if (s.parent_span_id == 0) ++roots;
    }
    EXPECT_EQ(roots, 1u);
    for (const obs::SpanRecord& s : spans) {
      if (s.parent_span_id == 0) continue;
      EXPECT_TRUE(ids.count(s.parent_span_id))
          << "orphan span '" << s.name << "' (parent "
          << s.parent_span_id << ")";
    }
  }

  SimClock clock_;
  std::vector<std::unique_ptr<ShardStack>> stacks_;
  std::vector<std::unique_ptr<FaultInjector>> injectors_;
  std::optional<ShardRouter> router_;
};

TEST_F(TraceFabricTest, RankedQueryUnderStormIsOneConnectedTree) {
  BuildShards(4);
  for (ObjectId id = 1; id <= 12; ++id) {
    ASSERT_TRUE(
        router_->Store(TextObject(id, "storm report body " +
                                          std::to_string(id)))
            .ok());
  }
  for (size_t i = 0; i < 4; ++i) {
    Inject(i, FaultProfile::Storm(), 0x5707 + i);
  }
  obs::Tracer tracer(&clock_);
  router_->SetTracer(&tracer);

  obs::TraceSpan root = tracer.StartSpan("browse");
  auto cards = router_->GatherCardsRanked({"report"}, 8, 48,
                                          root.context());
  root.End();
  router_->SetTracer(nullptr);

  ASSERT_TRUE(cards.ok()) << cards.status().ToString();
  ExpectOneConnectedTree(tracer, root.context().trace_id);

  // The storm forced retries somewhere in the fabric, and every backoff
  // window is attributed: a "retry.backoff" span tagged with the
  // attempt it follows and the delay spent.
  bool saw_backoff = false;
  for (const obs::SpanRecord& s : tracer.OrderedSpans()) {
    if (s.name != "retry.backoff") continue;
    saw_backoff = true;
    EXPECT_NE(s.FindTag("attempt"), nullptr);
    EXPECT_NE(s.FindTag("backoff_us"), nullptr);
  }
  EXPECT_TRUE(saw_backoff);

  // Every shard that served a share fed its RED metrics.
  bool any_requests = false;
  for (size_t i = 0; i < 4; ++i) {
    const std::string scope = "router.shard" + std::to_string(i);
    if (Count(scope + ".requests_total") > 0) any_requests = true;
  }
  EXPECT_TRUE(any_requests);
}

TEST_F(TraceFabricTest, DeadPrimaryFailoverTagsAttemptsAndRed) {
  BuildShards(3);
  ASSERT_TRUE(router_->Store(TextObject(1, "failover body")).ok());
  const size_t primary = router_->PrimaryOf(1);
  const int64_t primary_errors_before =
      Count("router.shard" + std::to_string(primary) + ".errors_total");

  // The primary's link drops everything but its breaker stays closed,
  // so the router attempts it (and fails over) rather than skipping it.
  FaultProfile dead;
  dead.drop_rate = 1.0;
  Inject(primary, dead, 0xDEAD);

  obs::Tracer tracer(&clock_);
  router_->SetTracer(&tracer);
  obs::TraceSpan root = tracer.StartSpan("fetch");
  auto got = router_->Fetch(1, FetchGranularity::kWhole, root.context());
  root.End();
  router_->SetTracer(nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  ExpectOneConnectedTree(tracer, root.context().trace_id);
  // Two routing attempts: the dead primary tagged failover, then the
  // replica tagged ok — plus the backoff the primary's retries burned.
  std::vector<std::string> outcomes;
  bool saw_backoff = false;
  for (const obs::SpanRecord& s : tracer.OrderedSpans()) {
    if (s.name == "router.attempt") {
      const std::string* outcome = s.FindTag("outcome");
      ASSERT_NE(outcome, nullptr);
      ASSERT_NE(s.FindTag("shard"), nullptr);
      outcomes.push_back(*outcome);
    }
    if (s.name == "retry.backoff") saw_backoff = true;
  }
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0], "failover");
  EXPECT_EQ(outcomes[1], "ok");
  EXPECT_TRUE(saw_backoff);
  EXPECT_GT(
      Count("router.shard" + std::to_string(primary) + ".errors_total"),
      primary_errors_before);
}

TEST_F(TraceFabricTest, ScatterShardSpansRecordTrueOverlap) {
  BuildShards(3);
  for (ObjectId id = 1; id <= 9; ++id) {
    ASSERT_TRUE(
        router_->Store(TextObject(id, "overlap report body")).ok());
  }
  obs::Tracer tracer(&clock_);
  router_->SetTracer(&tracer);
  obs::TraceSpan root = tracer.StartSpan("query");
  auto cards = router_->GatherCards({"report"}, 48, root.context());
  root.End();
  router_->SetTracer(nullptr);
  ASSERT_TRUE(cards.ok());

  // Each shard's share runs against a rewound clock, so the per-shard
  // spans all start at the scatter point: the trace records the modeled
  // overlap instead of serializing siblings the way the ambient open
  // stack would.
  std::vector<const obs::SpanRecord*> shares;
  const std::vector<obs::SpanRecord> spans = tracer.OrderedSpans();
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "shard.cards") shares.push_back(&s);
  }
  ASSERT_GE(shares.size(), 2u);
  for (const obs::SpanRecord* s : shares) {
    EXPECT_EQ(s->start_us, shares.front()->start_us);
    EXPECT_GE(s->duration_us(), 0);
  }
}

TEST_F(TraceFabricTest, UntracedCallsRecordNoSpans) {
  BuildShards(2);
  ASSERT_TRUE(router_->Store(TextObject(1, "silent report body")).ok());
  obs::Tracer tracer(&clock_);
  router_->SetTracer(&tracer);
  // No propagated context: the fabric must record nothing — untraced
  // paths can never produce orphan roots.
  ASSERT_TRUE(router_->GatherCards({"report"}).ok());
  ASSERT_TRUE(router_->Fetch(1).ok());
  router_->SetTracer(nullptr);
  EXPECT_TRUE(tracer.OrderedSpans().empty());
}

TEST(TraceSalvageTest, PersistentCorruptionTagsFetchDegraded) {
  // Wire corruption on every delivery: retries cannot cure it, so the
  // fetch falls through to the lenient salvage decode and the trace
  // marks the request degraded=salvage. A single attempt (no retries)
  // pins the injector's byte-flip sequence: the seed's first flip lands
  // under a part checksum, so the strict decode rejects it and the
  // salvage read happens deterministically.
  SimClock clock;
  ShardStack stack(&clock);
  FaultProfile corrupting;
  corrupting.corrupt_rate = 1.0;
  FaultInjector injector(corrupting, 0xC0DE, &clock);
  stack.server.SetFaultInjector(&injector);
  stack.server.SetRetryPolicy(RetryPolicy::None());
  MultimediaObject obj(7);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nsalvageable body text goes here\n");
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  image::Bitmap bm(24, 16);
  bm.FillRect(image::Rect{2, 2, 8, 8}, 99);
  ASSERT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
  object::VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  object::VoiceLogicalMessage note;
  note.transcript = "salvage note";
  note.text_anchor = object::TextAnchor{1, 4};
  obj.descriptor().voice_messages.push_back(note);
  ASSERT_TRUE(obj.Archive().ok());
  ASSERT_TRUE(stack.server.Store(obj).ok());

  obs::Tracer tracer(&clock);
  stack.server.SetTracer(&tracer);
  obs::TraceSpan root = tracer.StartSpan("req");
  auto got = stack.server.Fetch(7, FetchGranularity::kWhole,
                                root.context());
  root.End();
  stack.server.SetTracer(nullptr);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  bool saw_salvage = false;
  for (const obs::SpanRecord& s : tracer.OrderedSpans()) {
    if (s.name != "server.fetch") continue;
    const std::string* degraded = s.FindTag("degraded");
    if (degraded != nullptr && *degraded == "salvage") saw_salvage = true;
  }
  EXPECT_TRUE(saw_salvage);
  EXPECT_GT(obs::MetricsRegistry::Default()
                .counter("server.fetch_salvages")
                ->value(),
            0);
}

}  // namespace
}  // namespace minos::server
