// The ranked content-retrieval engine: BM25-style scoring over the
// insertion-time scored index, confidence-weighted voice postings,
// top-k scatter/gather merge across shards (identical to one server),
// replica dedup, tied-score determinism, the workstation's version-
// stamped result cache, and degraded-not-crashed behaviour under fault
// storms.

#include "minos/query/query_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "minos/query/result_cache.h"
#include "minos/query/scored_index.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;
using query::QueryMode;
using query::ScoredHit;
using storage::ObjectId;

MultimediaObject TextObject(ObjectId id, const std::string& body) {
  MultimediaObject obj(id);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

MultimediaObject AudioObject(ObjectId id, const std::string& body) {
  MultimediaObject obj(id);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  EXPECT_TRUE(doc.ok());
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(*doc);
  EXPECT_TRUE(track.ok());
  EXPECT_TRUE(
      obj.SetVoicePart(voice::VoiceDocument(std::move(track).value())).ok());
  obj.descriptor().driving_mode = object::DrivingMode::kAudio;
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

int64_t Count(const std::string& name) {
  return static_cast<int64_t>(
      obs::MetricsRegistry::Default().counter(name)->value());
}

// --- Single server ------------------------------------------------------

class RankedQueryTest : public ::testing::Test {
 protected:
  RankedQueryTest()
      : device_("optical", 65536, 512,
                storage::DeviceCostModel::Instant(), true, &clock_),
        cache_(256),
        archiver_(&device_, &cache_),
        link_(Link::Ethernet(&clock_)),
        server_(&archiver_, &versions_, &clock_, &link_) {}

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  Link link_;
  ObjectServer server_;
};

TEST_F(RankedQueryTest, TermFrequencyDrivesTheRanking) {
  ASSERT_TRUE(
      server_.Store(TextObject(1, "fracture mentioned once here")).ok());
  ASSERT_TRUE(server_.Store(
                         TextObject(2, "fracture fracture fracture report"))
                  .ok());
  ASSERT_TRUE(server_.Store(TextObject(3, "unrelated subway notes")).ok());

  const std::vector<ScoredHit> hits = server_.QueryRanked({"fracture"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 2u);  // Three occurrences outrank one.
  EXPECT_EQ(hits[1].id, 1u);
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST_F(RankedQueryTest, RankedQueryChargesScoringTimeToTheClock) {
  ASSERT_TRUE(server_.Store(TextObject(1, "costed fracture body")).ok());
  const Micros before = clock_.Now();
  ASSERT_EQ(server_.QueryRanked({"fracture"}, 4).size(), 1u);
  EXPECT_GT(clock_.Now(), before);
}

TEST_F(RankedQueryTest, TiedScoresBreakByAscendingId) {
  // Identical bodies, stored out of id order: identical scores, so the
  // tie must break deterministically by ascending id.
  for (ObjectId id : {7u, 3u, 9u, 5u}) {
    ASSERT_TRUE(server_.Store(TextObject(id, "identical tied body")).ok());
  }
  const std::vector<ScoredHit> hits = server_.QueryRanked({"tied"}, 10);
  ASSERT_EQ(hits.size(), 4u);
  EXPECT_EQ(hits[0].id, 3u);
  EXPECT_EQ(hits[1].id, 5u);
  EXPECT_EQ(hits[2].id, 7u);
  EXPECT_EQ(hits[3].id, 9u);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_DOUBLE_EQ(hits[i].score, hits[0].score);
  }
}

TEST_F(RankedQueryTest, KLargerThanMatchCountReturnsEveryMatch) {
  ASSERT_TRUE(server_.Store(TextObject(1, "sparse term alpha")).ok());
  ASSERT_TRUE(server_.Store(TextObject(2, "sparse term beta")).ok());
  EXPECT_EQ(server_.QueryRanked({"sparse"}, 100).size(), 2u);
  EXPECT_EQ(server_.QueryRanked({"sparse"}, 1).size(), 1u);
  EXPECT_TRUE(server_.QueryRanked({"absent"}, 5).empty());
  EXPECT_TRUE(server_.QueryRanked({"sparse"}, 0).empty());
}

TEST_F(RankedQueryTest, ConjunctiveNeedsAllWordsDisjunctiveAnyWord) {
  ASSERT_TRUE(server_.Store(TextObject(1, "red apples and pears")).ok());
  ASSERT_TRUE(server_.Store(TextObject(2, "red bricks and mortar")).ok());

  const std::vector<ScoredHit> both =
      server_.QueryRanked({"red", "apples"}, 10);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].id, 1u);

  const std::vector<ScoredHit> any = server_.QueryRanked(
      {"red", "apples"}, 10, QueryMode::kDisjunctive);
  ASSERT_EQ(any.size(), 2u);
  // The two-term match outranks the one-term match.
  EXPECT_EQ(any[0].id, 1u);
  EXPECT_GT(any[0].score, any[1].score);
}

TEST_F(RankedQueryTest, QueryWordsFoldLikeTheIndexDoes) {
  // The regression the fold unification fixes: the index folds
  // "Chapter," (trailing punctuation in running text) to "chapter", so
  // every query spelling of the word must fold the same way.
  ASSERT_TRUE(
      server_.Store(TextObject(1, "the restoration Chapter, begins")).ok());
  const std::vector<ObjectId> expected{1};
  EXPECT_EQ(server_.Query("chapter"), expected);
  EXPECT_EQ(server_.Query("Chapter"), expected);
  EXPECT_EQ(server_.Query("CHAPTER,"), expected);
  EXPECT_EQ(server_.QueryAll({"chapter."}), expected);
  ASSERT_EQ(server_.QueryRanked({"Chapter,"}, 5).size(), 1u);
  EXPECT_DOUBLE_EQ(server_.QueryRanked({"Chapter,"}, 5)[0].score,
                   server_.QueryRanked({"chapter"}, 5)[0].score);
}

TEST_F(RankedQueryTest, VoicePostingsAreConfidenceWeighted) {
  // The same words spoken and written: the recognizer profile discounts
  // the spoken evidence, so the text object outranks the audio one.
  ASSERT_TRUE(
      server_.Store(AudioObject(4, "dictated fracture findings")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "dictated fracture findings")).ok());

  const auto& postings = server_.scored_index().Postings("fracture");
  ASSERT_EQ(postings.size(), 2u);
  const query::TermPosting& voiced = postings.at(4);
  const query::TermPosting& written = postings.at(2);
  EXPECT_EQ(voiced.text_tf, 0.0);
  EXPECT_GT(voiced.voice_tf, 0.0);
  EXPECT_LT(voiced.voice_tf, written.text_tf);
  EXPECT_DOUBLE_EQ(
      voiced.voice_tf,
      query::VoiceConfidence(server_.recognizer_profile()));

  const std::vector<ScoredHit> hits = server_.QueryRanked({"fracture"}, 10);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].id, 2u);
  EXPECT_GT(hits[0].score, hits[1].score);

  // A perfect recognizer erases the discount.
  EXPECT_DOUBLE_EQ(
      query::VoiceConfidence(voice::RecognizerParams{1.0, 0.0}), 1.0);
}

TEST_F(RankedQueryTest, GatherCardsRankedReturnsScoredCardsBestFirst) {
  ASSERT_TRUE(server_.Store(TextObject(1, "ranked once here")).ok());
  ASSERT_TRUE(server_.Store(TextObject(2, "ranked ranked ranked")).ok());

  auto cards = server_.GatherCardsRanked({"ranked"}, 10);
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), 2u);
  EXPECT_EQ((*cards)[0].id, 2u);
  EXPECT_EQ((*cards)[1].id, 1u);
  EXPECT_GT((*cards)[0].score, (*cards)[1].score);
}

// --- Result cache -------------------------------------------------------

TEST(QueryResultCacheTest, KeyCanonicalizesWordOrderCaseAndDuplicates) {
  const std::string key = query::QueryResultCache::Key(
      {"Map", "chapter,"}, 5, QueryMode::kConjunctive);
  EXPECT_EQ(key, query::QueryResultCache::Key(
                     {"chapter", "map", "MAP"}, 5,
                     QueryMode::kConjunctive));
  EXPECT_NE(key, query::QueryResultCache::Key(
                     {"chapter", "map"}, 6, QueryMode::kConjunctive));
  EXPECT_NE(key, query::QueryResultCache::Key(
                     {"chapter", "map"}, 5, QueryMode::kDisjunctive));
}

TEST(QueryResultCacheTest, StaleVersionDropsTheEntry) {
  query::QueryResultCache cache(4);
  cache.Insert("q", /*catalog_version=*/3, {ScoredHit{1, 0.5}});
  auto hit = cache.Lookup("q", 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].id, 1u);
  // A Store bumped the version: the entry is stale and gone.
  EXPECT_FALSE(cache.Lookup("q", 4).has_value());
  EXPECT_FALSE(cache.Lookup("q", 3).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(QueryResultCacheTest, CapacityEvictsTheLeastRecentlyUsed) {
  query::QueryResultCache cache(2);
  cache.Insert("a", 1, {ScoredHit{1, 1.0}});
  cache.Insert("b", 1, {ScoredHit{2, 1.0}});
  ASSERT_TRUE(cache.Lookup("a", 1).has_value());  // "b" is now LRU.
  cache.Insert("c", 1, {ScoredHit{3, 1.0}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup("a", 1).has_value());
  EXPECT_FALSE(cache.Lookup("b", 1).has_value());
  EXPECT_TRUE(cache.Lookup("c", 1).has_value());
}

// --- Sharded topologies -------------------------------------------------

struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  Link link;
  ObjectServer server;
};

class RankedShardTest : public ::testing::Test {
 protected:
  void BuildShards(size_t n, int replication = 2) {
    stacks_.clear();
    for (size_t i = 0; i < n; ++i) {
      stacks_.push_back(std::make_unique<ShardStack>(&clock_));
    }
    std::vector<ObjectServer*> servers;
    for (auto& stack : stacks_) servers.push_back(&stack->server);
    ShardRouterOptions options;
    options.replication = replication;
    router_.emplace(servers, &clock_, HashPlacement(), options);
  }

  /// The corpus every topology test stores: graded relevance for
  /// "fracture", one distractor.
  void StoreCorpus(ObjectStore& store) {
    ASSERT_TRUE(
        store.Store(TextObject(1, "fracture fracture fracture ward")).ok());
    ASSERT_TRUE(store.Store(TextObject(2, "fracture fracture clinic")).ok());
    ASSERT_TRUE(store.Store(TextObject(3, "fracture mention only")).ok());
    ASSERT_TRUE(store.Store(TextObject(4, "subway line drawings")).ok());
    ASSERT_TRUE(
        store.Store(TextObject(5, "fracture fracture fracture notes")).ok());
  }

  void TripBreaker(size_t i, int threshold = 3) {
    CircuitBreaker::Options options;
    options.failure_threshold = threshold;
    stacks_[i]->link.ConfigureBreaker(options);
    for (int f = 0; f < threshold; ++f) {
      stacks_[i]->link.breaker().RecordFailure();
    }
    ASSERT_EQ(stacks_[i]->link.breaker().state(),
              CircuitBreaker::State::kOpen);
  }

  SimClock clock_;
  std::vector<std::unique_ptr<ShardStack>> stacks_;
  std::optional<ShardRouter> router_;
};

TEST_F(RankedShardTest, FourShardMergeMatchesOneServerExactly) {
  // The whole point of scoring against the router's catalog-wide
  // statistics: a 1-shard and a 4-shard archive of the same corpus must
  // return identical ids AND identical scores.
  BuildShards(1, 1);
  StoreCorpus(*router_);
  const std::vector<ScoredHit> one = router_->QueryRanked({"fracture"}, 3);

  BuildShards(4, 2);
  StoreCorpus(*router_);
  const std::vector<ScoredHit> four = router_->QueryRanked({"fracture"}, 3);

  ASSERT_EQ(one.size(), 3u);
  ASSERT_EQ(four.size(), 3u);
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(four[i].id, one[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(four[i].score, one[i].score) << "rank " << i;
  }
}

TEST_F(RankedShardTest, FullReplicationDedupsToOneHitPerObject) {
  // Replication == shard count: every shard holds (and reports) every
  // object, the worst duplicate pressure a merge can see.
  BuildShards(3, 3);
  StoreCorpus(*router_);
  const std::vector<ScoredHit> hits = router_->QueryRanked({"fracture"}, 10);
  ASSERT_EQ(hits.size(), 4u);
  std::set<ObjectId> ids;
  for (const ScoredHit& hit : hits) ids.insert(hit.id);
  EXPECT_EQ(ids.size(), hits.size());
  // Best-first with the id tiebreak: 1 and 5 tie, then 2, then 3.
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(hits[1].id, 5u);
  EXPECT_DOUBLE_EQ(hits[0].score, hits[1].score);
  EXPECT_EQ(hits[2].id, 2u);
  EXPECT_EQ(hits[3].id, 3u);
}

TEST_F(RankedShardTest, ShardsWithoutMatchesContributeNothing) {
  BuildShards(4, 1);
  // Two objects only: at least two shards are empty for every query.
  ASSERT_TRUE(router_->Store(TextObject(1, "lonely fracture story")).ok());
  ASSERT_TRUE(router_->Store(TextObject(2, "subway drawings")).ok());
  const std::vector<ScoredHit> hits = router_->QueryRanked({"fracture"}, 8);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_TRUE(router_->QueryRanked({"absent"}, 8).empty());
}

TEST_F(RankedShardTest, RankedScatterAdvancesByTheSlowestShardNotTheSum) {
  BuildShards(4, 4);  // Every shard scores the whole corpus.
  StoreCorpus(*router_);
  const Micros start = clock_.Now();
  ASSERT_EQ(stacks_[0]->server.QueryRanked({"fracture"}, 3).size(), 3u);
  const Micros one_shard = clock_.Now() - start;
  clock_.RewindTo(start);
  ASSERT_EQ(router_->QueryRanked({"fracture"}, 3).size(), 3u);
  const Micros scattered = clock_.Now() - start;
  EXPECT_GT(scattered, 0);
  // Four equal shards overlapped: the scatter costs one shard's work,
  // not four (well under twice one shard's).
  EXPECT_LT(scattered, 2 * one_shard);
}

TEST_F(RankedShardTest, GatherCardsRankedIsRelevanceOrderedWithScores) {
  BuildShards(3, 2);
  StoreCorpus(*router_);
  const std::vector<ScoredHit> hits = router_->QueryRanked({"fracture"}, 3);
  auto cards = router_->GatherCardsRanked({"fracture"}, 3);
  ASSERT_TRUE(cards.ok());
  ASSERT_EQ(cards->size(), hits.size());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ((*cards)[i].id, hits[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ((*cards)[i].score, hits[i].score) << "rank " << i;
  }
}

TEST_F(RankedShardTest, DeadShardDegradesRankedResultsWithoutCrashing) {
  BuildShards(2, 1);  // No replicas: a dead shard's objects are gone.
  StoreCorpus(*router_);
  const size_t healthy = router_->QueryRanked({"fracture"}, 10).size();
  ASSERT_EQ(healthy, 4u);

  TripBreaker(0);
  const std::vector<ScoredHit> degraded =
      router_->QueryRanked({"fracture"}, 10);
  EXPECT_LT(degraded.size(), healthy);  // Partial, not an error.
  auto cards = router_->GatherCardsRanked({"fracture"}, 10);
  ASSERT_TRUE(cards.ok());
  EXPECT_EQ(cards->size(), degraded.size());

  TripBreaker(1);
  EXPECT_TRUE(router_->QueryRanked({"fracture"}, 10).empty());
  auto none = router_->GatherCardsRanked({"fracture"}, 10);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// --- Workstation cache + ranked browsing --------------------------------

TEST_F(RankedQueryTest, WorkstationServesRepeatRankedQueriesFromCache) {
  ASSERT_TRUE(server_.Store(TextObject(1, "cached fracture story")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "fracture fracture follow-up")).ok());

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  const int64_t misses_before = Count("query.cache_misses");
  const int64_t ranked_before = Count("query.ranked_queries");

  auto first = workstation.QueryRanked({"fracture"}, 5);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 2u);
  auto card = first->Current();
  ASSERT_TRUE(card.ok());
  EXPECT_EQ((*card)->id, 2u);  // Best first.
  EXPECT_GT((*card)->score, 0.0);
  EXPECT_EQ(Count("query.cache_misses"), misses_before + 1);
  EXPECT_EQ(Count("query.ranked_queries"), ranked_before + 1);

  // Same query, unchanged archive: the hit list comes from the cache,
  // the server never scores again.
  const int64_t hits_before = Count("query.cache_hits");
  auto second = workstation.QueryRanked({"FRACTURE"}, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 2u);
  EXPECT_EQ(Count("query.cache_hits"), hits_before + 1);
  EXPECT_EQ(Count("query.ranked_queries"), ranked_before + 1);

  // A Store bumps the catalog version: the cached strip is stale, the
  // re-query sees the new object.
  ASSERT_TRUE(
      server_.Store(TextObject(3, "fracture fracture fracture new")).ok());
  const int64_t invalidations_before = Count("query.cache_invalidations");
  auto third = workstation.QueryRanked({"fracture"}, 5);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->size(), 3u);
  auto best = third->Current();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->id, 3u);
  EXPECT_EQ(Count("query.cache_invalidations"), invalidations_before + 1);
  EXPECT_EQ(Count("query.ranked_queries"), ranked_before + 2);
}

TEST_F(RankedQueryTest, PrefetchingWorkstationBrowsesRankedStripLazily) {
  ASSERT_TRUE(server_.Store(TextObject(1, "lazy fracture once")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "lazy fracture fracture twice")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(3, "fracture fracture fracture lazy")).ok());

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  workstation.EnablePrefetch();
  auto browser = workstation.QueryRanked({"fracture"}, 3);
  ASSERT_TRUE(browser.ok());
  ASSERT_EQ(browser->size(), 3u);
  std::vector<ObjectId> order;
  std::vector<double> scores;
  for (;;) {
    auto card = browser->Current();
    ASSERT_TRUE(card.ok());
    order.push_back((*card)->id);
    scores.push_back((*card)->score);
    if (!browser->Next().ok()) break;
  }
  EXPECT_EQ(order, (std::vector<ObjectId>{3, 2, 1}));
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[1], scores[2]);
}

// --- Incremental Append --------------------------------------------------

TEST_F(RankedQueryTest, AppendSurfacesNewTermsInRankedResults) {
  ASSERT_TRUE(server_.Store(TextObject(1, "fracture ward report")).ok());
  ASSERT_TRUE(server_.Store(TextObject(2, "fracture clinic notes")).ok());
  EXPECT_TRUE(server_.QueryRanked({"avalanche"}, 5).empty());
  const uint64_t version_before = server_.catalog_version();

  ObjectServer::AppendParts parts;
  parts.text = "avalanche avalanche rescue";
  auto appended = server_.Append(1, parts);
  ASSERT_TRUE(appended.ok());
  EXPECT_EQ(appended->version, 2u);
  EXPECT_FALSE(appended->delta.empty());
  EXPECT_GT(server_.catalog_version(), version_before);

  // The appended words are queryable immediately, weighted by tf.
  const std::vector<ScoredHit> hits = server_.QueryRanked({"avalanche"}, 5);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 1u);
  EXPECT_EQ(server_.scored_index().DocFreq("avalanche"), 1u);
  // Pre-append evidence is retained, not replaced: the object still
  // ranks for its original words.
  ASSERT_EQ(server_.QueryRanked({"ward"}, 5).size(), 1u);
  // The grown object re-archives as a new version; both the original
  // and the appended image stay fetchable (§5 version control).
  auto original = server_.FetchVersion(1, 1);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(original->text_part().contents().find("avalanche"),
            std::string::npos);
  auto grown = server_.FetchVersion(1, 2);
  ASSERT_TRUE(grown.ok());
  EXPECT_NE(grown->text_part().contents().find("avalanche"),
            std::string::npos);
}

TEST_F(RankedQueryTest, AppendInvalidatesWorkstationRankedCache) {
  // Satellite regression: an Append must bump the catalog version the
  // workstation's result cache is stamped with — a stale ranked strip
  // that omits appended content would violate read-your-writes.
  ASSERT_TRUE(server_.Store(TextObject(1, "fracture mention here")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "fracture fracture follow-up")).ok());

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto first = workstation.QueryRanked({"fracture"}, 5);
  ASSERT_TRUE(first.ok());
  auto best = first->Current();
  ASSERT_TRUE(best.ok());
  EXPECT_EQ((*best)->id, 2u);

  // Repeat while the catalog is unchanged: served from cache.
  const int64_t hits_before = Count("query.cache_hits");
  ASSERT_TRUE(workstation.QueryRanked({"fracture"}, 5).ok());
  EXPECT_EQ(Count("query.cache_hits"), hits_before + 1);

  // Append enough evidence to flip the ranking. The cached strip is
  // stale the moment the append lands.
  ObjectServer::AppendParts parts;
  parts.text = "fracture fracture fracture fracture update";
  ASSERT_TRUE(server_.Append(1, parts).ok());
  const int64_t invalidations_before = Count("query.cache_invalidations");
  auto third = workstation.QueryRanked({"fracture"}, 5);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(Count("query.cache_invalidations"), invalidations_before + 1);
  auto refreshed = third->Current();
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ((*refreshed)->id, 1u);  // The appended copy now leads.
}

TEST_F(RankedQueryTest, FailedAppendLeavesRankedIndexUntouched) {
  // Satellite fault matrix: whether the device rejects the write (media
  // error) or tears it (payload corrupted in place), the Append must not
  // leave phantom statistics behind — df, lengths, and the catalog
  // version stay exactly as they were, because the index only folds the
  // delta after the device write lands.
  ASSERT_TRUE(server_.Store(TextObject(1, "fracture baseline body")).ok());
  const uint64_t version_before = server_.catalog_version();
  const double length_before = server_.scored_index().DocLength(1);
  const uint64_t docs_before = server_.scored_index().stats().doc_count;

  ObjectServer::AppendParts parts;
  parts.text = "phantom phantom phantom";

  // Row 1: the device rejects the write outright.
  device_.SetWriteFaultHook(
      [](uint64_t, std::string*) { return Status::Unavailable("media"); });
  EXPECT_FALSE(server_.Append(1, parts).ok());
  device_.SetWriteFaultHook(nullptr);
  EXPECT_EQ(server_.scored_index().DocFreq("phantom"), 0u);
  EXPECT_EQ(server_.scored_index().DocLength(1), length_before);
  EXPECT_EQ(server_.scored_index().stats().doc_count, docs_before);
  EXPECT_EQ(server_.catalog_version(), version_before);
  EXPECT_TRUE(server_.QueryRanked({"phantom"}, 5).empty());

  // Row 2: the fault cleared — the same append now goes through whole.
  auto retried = server_.Append(1, parts);
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(server_.scored_index().DocFreq("phantom"), 1u);
  ASSERT_EQ(server_.QueryRanked({"phantom"}, 5).size(), 1u);

  // Row 3: a torn write commits garbled bytes. The device accepts it
  // (detection and salvage are the fetch path's job — see the torn-
  // write coverage in fault_injection_test), so whatever the append
  // reports, the statistics must stay consistent: the delta folds at
  // most once, never twice and never for a write that failed.
  device_.SetWriteFaultHook([](uint64_t, std::string* data) {
    if (!data->empty()) (*data)[data->size() / 2] ^= 0x5A;
    return Status::OK();
  });
  auto torn = server_.Append(1, parts);
  device_.SetWriteFaultHook(nullptr);
  EXPECT_EQ(server_.scored_index().DocFreq("phantom"), 1u);
  EXPECT_EQ(server_.scored_index().stats().doc_count, docs_before);
  if (torn.ok()) {
    EXPECT_EQ(server_.scored_index().DocLength(1),
              length_before + 6);  // Two clean-append word triples.
  }
}

TEST_F(RankedShardTest, RouterAppendAppliesDeltaWithoutStatsRebuild) {
  // The tentpole acceptance gate: an Append reaches ranked results
  // through the router's *delta* path — the stats-only catalog index
  // absorbs the df/length changes once, and the full-re-add counter
  // (the rebuild path Stores take) stays flat.
  BuildShards(3, 2);
  StoreCorpus(*router_);
  const int64_t full_adds_before = Count("router.stats_full_adds_total");
  const int64_t deltas_before = Count("router.stats_delta_applies_total");
  const uint64_t version_before = router_->catalog_version();
  EXPECT_TRUE(router_->QueryRanked({"avalanche"}, 5,
                                   QueryMode::kDisjunctive).empty());

  ObjectServer::AppendParts parts;
  parts.text = "avalanche avalanche rescue";
  auto version = router_->Append(3, parts);
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 2u);

  EXPECT_EQ(Count("router.stats_full_adds_total"), full_adds_before);
  EXPECT_EQ(Count("router.stats_delta_applies_total"), deltas_before + 1);
  EXPECT_GT(router_->catalog_version(), version_before);
  EXPECT_EQ(router_->corpus_stats().DocFreq("avalanche"), 1u);

  const std::vector<ScoredHit> hits =
      router_->QueryRanked({"avalanche"}, 5, QueryMode::kDisjunctive);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 3u);
}

TEST_F(RankedShardTest, AppendKeepsOneAndFourShardScoresIdentical) {
  // Post-append symmetry: the same corpus + the same appends must score
  // identically on a 1-shard and a 4-shard archive — the delta-synced
  // global statistics are what make the decomposition invisible.
  ObjectServer::AppendParts parts;
  parts.text = "fracture avalanche drill";

  BuildShards(1, 1);
  StoreCorpus(*router_);
  ASSERT_TRUE(router_->Append(2, parts).ok());
  const std::vector<ScoredHit> one =
      router_->QueryRanked({"fracture", "avalanche"}, 5,
                           QueryMode::kDisjunctive);

  BuildShards(4, 2);
  StoreCorpus(*router_);
  ASSERT_TRUE(router_->Append(2, parts).ok());
  const std::vector<ScoredHit> four =
      router_->QueryRanked({"fracture", "avalanche"}, 5,
                           QueryMode::kDisjunctive);

  ASSERT_EQ(one.size(), 4u);  // The distractor matches neither term.
  ASSERT_EQ(four.size(), 4u);
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(four[i].id, one[i].id) << "rank " << i;
    EXPECT_DOUBLE_EQ(four[i].score, one[i].score) << "rank " << i;
  }
}

TEST_F(RankedShardTest, ShardFaultDuringAppendLeavesGlobalStatsExact) {
  // One replica's device faults mid-append: the logical append still
  // succeeds on the surviving replica, the global stats absorb the
  // delta exactly once, and the lagging replica is flagged for repair
  // rather than silently diverging.
  BuildShards(2, 2);
  StoreCorpus(*router_);
  const uint64_t df_before = router_->corpus_stats().DocFreq("avalanche");
  ASSERT_EQ(df_before, 0u);

  stacks_[0]->device.SetWriteFaultHook(
      [](uint64_t, std::string*) { return Status::Unavailable("media"); });
  ObjectServer::AppendParts parts;
  parts.text = "avalanche avalanche";
  auto version = router_->Append(3, parts);
  stacks_[0]->device.SetWriteFaultHook(nullptr);

  ASSERT_TRUE(version.ok());
  EXPECT_EQ(router_->corpus_stats().DocFreq("avalanche"), 1u);
  const std::vector<ScoredHit> hits =
      router_->QueryRanked({"avalanche"}, 5, QueryMode::kDisjunctive);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].id, 3u);
}

}  // namespace
}  // namespace minos::server
