#include "minos/util/logging.h"

#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "minos/obs/trace.h"
#include "minos/util/clock.h"

namespace minos {
namespace {

/// Restores the process-wide logger to its defaults on scope exit so
/// tests cannot leak thresholds/sinks into each other.
class LoggerGuard {
 public:
  LoggerGuard() = default;
  ~LoggerGuard() {
    Logger& log = Logger::Get();
    log.SetSink(nullptr);
    log.set_threshold(LogLevel::kWarning);
    log.set_format(LogFormat::kText);
    log.clear_module_thresholds();
  }
};

TEST(LoggerTest, ThresholdFiltersRecords) {
  LoggerGuard guard;
  Logger& log = Logger::Get();
  std::vector<LogRecord> captured;
  log.SetSink([&captured](const LogRecord& r) { captured.push_back(r); });
  log.set_threshold(LogLevel::kWarning);
  log.Log(LogLevel::kInfo, "minos/storage/block_cache.cc", 1, "dropped");
  log.Log(LogLevel::kError, "minos/storage/block_cache.cc", 2, "kept");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].message, "kept");
  EXPECT_EQ(captured[0].module, "storage");
  EXPECT_EQ(captured[0].file, "block_cache.cc");
  EXPECT_EQ(captured[0].line, 2);
}

TEST(LoggerTest, ModuleThresholdOverridesGlobal) {
  LoggerGuard guard;
  Logger& log = Logger::Get();
  std::vector<LogRecord> captured;
  log.SetSink([&captured](const LogRecord& r) { captured.push_back(r); });
  log.set_threshold(LogLevel::kError);
  log.set_module_threshold("core", LogLevel::kDebug);
  log.Log(LogLevel::kDebug, "minos/core/visual_browser.cc", 1, "core dbg");
  log.Log(LogLevel::kDebug, "minos/storage/archiver.cc", 1, "storage dbg");
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].message, "core dbg");
  log.clear_module_thresholds();
  log.Log(LogLevel::kDebug, "minos/core/visual_browser.cc", 1, "core dbg");
  EXPECT_EQ(captured.size(), 1u);
}

TEST(LoggerTest, StructuredFieldsReachTheSink) {
  LoggerGuard guard;
  Logger& log = Logger::Get();
  LogRecord seen;
  log.SetSink([&seen](const LogRecord& r) { seen = r; });
  MINOS_SLOG(kWarning, "transfer complete",
             {{"bytes", "512"}, {"link", "ethernet"}});
  ASSERT_EQ(seen.fields.size(), 2u);
  EXPECT_EQ(seen.fields[0].first, "bytes");
  EXPECT_EQ(seen.fields[0].second, "512");
  EXPECT_EQ(seen.fields[1].first, "link");
  EXPECT_EQ(seen.fields[1].second, "ethernet");
  EXPECT_EQ(seen.message, "transfer complete");
}

TEST(LoggerTest, ModuleOfMapsPathsUnderMinos) {
  EXPECT_EQ(Logger::ModuleOf("minos/storage/block_cache.cc"), "storage");
  EXPECT_EQ(Logger::ModuleOf("/root/repo/src/minos/core/browser.cc"),
            "core");
  EXPECT_EQ(Logger::ModuleOf("scratch/tool.cc"), "tool");
}

TEST(LoggerTest, ConcurrentLoggingIsLossless) {
  LoggerGuard guard;
  Logger& log = Logger::Get();
  std::atomic<int> seen{0};
  log.SetSink([&seen](const LogRecord&) {
    seen.fetch_add(1, std::memory_order_relaxed);
  });
  log.set_threshold(LogLevel::kDebug);
  const int before = log.emitted_count();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log] {
      for (int i = 0; i < 500; ++i) {
        MINOS_LOG(kInfo) << "worker message " << i;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(seen.load(), 2000);
  EXPECT_EQ(log.emitted_count() - before, 2000);
}

TEST(LoggerTest, TracerSpansShareTheLogStream) {
  LoggerGuard guard;
  Logger& log = Logger::Get();
  std::vector<LogRecord> captured;
  log.SetSink([&captured](const LogRecord& r) { captured.push_back(r); });
  log.set_module_threshold("trace", LogLevel::kDebug);

  SimClock clock;
  obs::Tracer tracer(&clock);
  tracer.set_log_spans(true);
  {
    obs::TraceSpan span = tracer.StartSpan("open#1");
    clock.Advance(42);
  }
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].module, "trace");
  ASSERT_GE(captured[0].fields.size(), 2u);
  EXPECT_EQ(captured[0].fields[0].first, "name");
  EXPECT_EQ(captured[0].fields[0].second, "open#1");
  EXPECT_EQ(captured[0].fields[2].second, "42");  // dur_us
}

}  // namespace
}  // namespace minos
