#include "minos/util/coding.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "minos/util/random.h"

namespace minos {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 1);
  PutFixed32(&buf, 0xDEADBEEF);
  PutFixed32(&buf, std::numeric_limits<uint32_t>::max());
  EXPECT_EQ(buf.size(), 16u);
  Decoder dec(buf);
  uint32_t v = 0;
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 1u);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, 0xDEADBEEF);
  ASSERT_TRUE(dec.GetFixed32(&v).ok());
  EXPECT_EQ(v, std::numeric_limits<uint32_t>::max());
  EXPECT_TRUE(dec.empty());
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFULL);
  Decoder dec(buf);
  uint64_t v = 0;
  ASSERT_TRUE(dec.GetFixed64(&v).ok());
  EXPECT_EQ(v, 0x0123456789ABCDEFULL);
}

TEST(CodingTest, Fixed32LittleEndianLayout) {
  std::string buf;
  PutFixed32(&buf, 0x04030201);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 1);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 4);
}

TEST(CodingTest, VarintBoundaries) {
  const std::vector<uint64_t> cases = {
      0,       1,        127,        128,
      16383,   16384,    (1ULL << 32) - 1, 1ULL << 32,
      (1ULL << 63),      std::numeric_limits<uint64_t>::max()};
  std::string buf;
  for (uint64_t c : cases) PutVarint64(&buf, c);
  Decoder dec(buf);
  for (uint64_t c : cases) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    EXPECT_EQ(v, c);
  }
  EXPECT_TRUE(dec.empty());
}

TEST(CodingTest, VarintSizes) {
  std::string one, two, ten;
  PutVarint64(&one, 127);
  PutVarint64(&two, 128);
  PutVarint64(&ten, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
  EXPECT_EQ(ten.size(), 10u);
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  Decoder dec(buf);
  uint32_t v = 0;
  EXPECT_TRUE(dec.GetVarint32(&v).IsCorruption());
}

TEST(CodingTest, TruncatedInputsReportCorruption) {
  std::string buf;
  PutFixed64(&buf, 7);
  Decoder dec(std::string_view(buf).substr(0, 3));
  uint64_t v64 = 0;
  EXPECT_TRUE(dec.GetFixed64(&v64).IsCorruption());
  uint32_t v32 = 0;
  Decoder dec32(std::string_view(buf).substr(0, 3));
  EXPECT_TRUE(dec32.GetFixed32(&v32).IsCorruption());
}

TEST(CodingTest, TruncatedVarintReportsCorruption) {
  std::string buf;
  PutVarint64(&buf, 300);  // Two bytes.
  Decoder dec(std::string_view(buf).substr(0, 1));
  uint64_t v = 0;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, "hello");
  std::string binary("\x00\x01\xFF", 3);
  PutLengthPrefixed(&buf, binary);
  Decoder dec(buf);
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  EXPECT_EQ(s, binary);
}

TEST(CodingTest, LengthPrefixedTruncatedPayload) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello world");
  Decoder dec(std::string_view(buf).substr(0, 5));
  std::string s;
  EXPECT_TRUE(dec.GetLengthPrefixed(&s).IsCorruption());
}

TEST(CodingTest, GetRawConsumesExactly) {
  Decoder dec("abcdef");
  std::string s;
  ASSERT_TRUE(dec.GetRaw(4, &s).ok());
  EXPECT_EQ(s, "abcd");
  EXPECT_EQ(dec.remaining(), 2u);
  EXPECT_TRUE(dec.GetRaw(3, &s).IsCorruption());
}

TEST(CodingTest, RandomizedVarintRoundTrip) {
  Random rng(123);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Bias toward small magnitudes to hit all byte-lengths.
    const int shift = static_cast<int>(rng.Uniform(64));
    const uint64_t v = rng.Next64() >> shift;
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Decoder dec(buf);
  for (uint64_t expected : values) {
    uint64_t v = 0;
    ASSERT_TRUE(dec.GetVarint64(&v).ok());
    ASSERT_EQ(v, expected);
  }
  EXPECT_TRUE(dec.empty());
}

}  // namespace
}  // namespace minos
