#include "minos/storage/composition_file.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

TEST(CompositionFileTest, AppendAssignsOffsets) {
  CompositionFile cf;
  EXPECT_EQ(cf.AppendPart("a", DataType::kText, "hello"), 0u);
  EXPECT_EQ(cf.AppendPart("b", DataType::kImage, "world"), 5u);
  EXPECT_EQ(cf.size(), 10u);
  EXPECT_EQ(cf.part_count(), 2u);
}

TEST(CompositionFileTest, FindPartByName) {
  CompositionFile cf;
  cf.AppendPart("text", DataType::kText, "abc");
  auto p = cf.FindPart("text");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->type, DataType::kText);
  EXPECT_EQ(p->length, 3u);
  EXPECT_TRUE(cf.FindPart("nope").status().IsNotFound());
}

TEST(CompositionFileTest, ReadPartPayload) {
  CompositionFile cf;
  cf.AppendPart("a", DataType::kText, "first");
  cf.AppendPart("b", DataType::kVoice, "second");
  auto p = cf.FindPart("b");
  ASSERT_TRUE(p.ok());
  std::string out;
  ASSERT_TRUE(cf.ReadPart(*p, &out).ok());
  EXPECT_EQ(out, "second");
}

TEST(CompositionFileTest, ReadRangeBounds) {
  CompositionFile cf;
  cf.AppendPart("a", DataType::kText, "0123456789");
  std::string out;
  ASSERT_TRUE(cf.ReadRange(3, 4, &out).ok());
  EXPECT_EQ(out, "3456");
  EXPECT_TRUE(cf.ReadRange(8, 5, &out).IsOutOfRange());
}

TEST(CompositionFileTest, SerializeRoundTrip) {
  CompositionFile cf;
  cf.AppendPart("attributes", DataType::kAttributes, "k=v");
  cf.AppendPart("text", DataType::kText, "body text");
  cf.AppendPart("image:0", DataType::kImage, std::string("\x00\x01", 2));
  const std::string bytes = cf.Serialize();
  auto restored = CompositionFile::Deserialize(bytes);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->part_count(), 3u);
  EXPECT_EQ(restored->size(), cf.size());
  auto p = restored->FindPart("text");
  ASSERT_TRUE(p.ok());
  std::string out;
  ASSERT_TRUE(restored->ReadPart(*p, &out).ok());
  EXPECT_EQ(out, "body text");
}

TEST(CompositionFileTest, EmptyRoundTrip) {
  CompositionFile cf;
  auto restored = CompositionFile::Deserialize(cf.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->part_count(), 0u);
  EXPECT_EQ(restored->size(), 0u);
}

TEST(CompositionFileTest, DeserializeRejectsTruncation) {
  CompositionFile cf;
  cf.AppendPart("a", DataType::kText, "payload");
  const std::string bytes = cf.Serialize();
  for (size_t cut : {size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
    auto restored =
        CompositionFile::Deserialize(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(restored.ok()) << "cut=" << cut;
  }
}

TEST(CompositionFileTest, DeserializeRejectsBadType) {
  CompositionFile cf;
  cf.AppendPart("a", DataType::kText, "x");
  std::string bytes = cf.Serialize();
  // The type byte follows the varint part count (1 byte) and the
  // length-prefixed name (1 + 1 bytes).
  bytes[3] = 99;
  EXPECT_TRUE(CompositionFile::Deserialize(bytes).status().IsCorruption());
}

TEST(CompositionFileTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kText), "text");
  EXPECT_STREQ(DataTypeName(DataType::kVoice), "voice");
  EXPECT_STREQ(DataTypeName(DataType::kImage), "image");
  EXPECT_STREQ(DataTypeName(DataType::kAttributes), "attributes");
}

TEST(CompositionFileTest, DuplicateNamesFindFirst) {
  CompositionFile cf;
  cf.AppendPart("dup", DataType::kText, "one");
  cf.AppendPart("dup", DataType::kText, "two");
  auto p = cf.FindPart("dup");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->offset, 0u);
}

}  // namespace
}  // namespace minos::storage
