#include "minos/format/synthesis.h"

#include <gtest/gtest.h>

namespace minos::format {
namespace {

constexpr char kSource[] = R"(@MODE visual
@LAYOUT 48 14
.TITLE Walking Tour
.PP
Welcome to the old town district.
@IMAGE map
@TRANSPARENCY route_one
@TRANSPARENCY route_two
@METHOD separate
@OVERWRITE footprints
@PROCESS 500 2
.PP
Closing remarks follow here.
)";

TEST(SynthesisTest, SplitsMarkupFromDirectives) {
  auto s = ParseSynthesis(kSource);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_NE(s->markup.find(".TITLE Walking Tour"), std::string::npos);
  EXPECT_NE(s->markup.find("Closing remarks"), std::string::npos);
  EXPECT_EQ(s->markup.find("@IMAGE"), std::string::npos);
  ASSERT_EQ(s->directives.size(), 8u);
}

TEST(SynthesisTest, DirectiveKindsAndArgs) {
  auto s = ParseSynthesis(kSource);
  ASSERT_TRUE(s.ok());
  const auto& d = s->directives;
  EXPECT_EQ(d[0].kind, Directive::Kind::kMode);
  EXPECT_EQ(d[0].arg, "visual");
  EXPECT_EQ(d[1].kind, Directive::Kind::kLayout);
  EXPECT_EQ(d[1].value_a, 48);
  EXPECT_EQ(d[1].value_b, 14);
  EXPECT_EQ(d[2].kind, Directive::Kind::kImage);
  EXPECT_EQ(d[2].arg, "map");
  EXPECT_EQ(d[3].kind, Directive::Kind::kTransparency);
  EXPECT_EQ(d[4].kind, Directive::Kind::kTransparency);
  EXPECT_EQ(d[5].kind, Directive::Kind::kMethod);
  EXPECT_EQ(d[5].arg, "separate");
  EXPECT_EQ(d[6].kind, Directive::Kind::kOverwrite);
  EXPECT_EQ(d[6].arg, "footprints");
  EXPECT_EQ(d[7].kind, Directive::Kind::kProcess);
  EXPECT_EQ(d[7].value_a, 500);
  EXPECT_EQ(d[7].value_b, 2);
}

TEST(SynthesisTest, DeclaredModeAndLayout) {
  auto s = ParseSynthesis(kSource);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DeclaredMode(), object::DrivingMode::kVisual);
  auto layout = s->DeclaredLayout();
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layout->width, 48);
  EXPECT_EQ(layout->height, 14);
}

TEST(SynthesisTest, DefaultsWhenUndeclared) {
  auto s = ParseSynthesis(".PP\njust text\n");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DeclaredMode(), object::DrivingMode::kVisual);
  EXPECT_FALSE(s->DeclaredLayout().has_value());
}

TEST(SynthesisTest, AudioMode) {
  auto s = ParseSynthesis("@MODE audio\n");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->DeclaredMode(), object::DrivingMode::kAudio);
}

TEST(SynthesisTest, MarkupLinesBeforeCounts) {
  auto s = ParseSynthesis(".PP\nline one\nline two\n@IMAGE pic\nline three\n");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->directives.size(), 1u);
  EXPECT_EQ(s->directives[0].markup_lines_before, 3u);
}

TEST(SynthesisTest, RejectsMalformedDirectives) {
  EXPECT_TRUE(ParseSynthesis("@MODE teletext\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSynthesis("@LAYOUT 48\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSynthesis("@LAYOUT 2 2\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSynthesis("@IMAGE\n").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSynthesis("@METHOD sideways\n").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseSynthesis("@PROCESS 0 5\n").status().IsInvalidArgument());
  EXPECT_TRUE(ParseSynthesis("@BOGUS x\n").status().IsInvalidArgument());
}

TEST(SynthesisTest, EmptySourceOk) {
  auto s = ParseSynthesis("");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->directives.empty());
}

}  // namespace
}  // namespace minos::format
