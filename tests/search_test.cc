#include "minos/text/search.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/util/random.h"

namespace minos::text {
namespace {

TEST(FindAllTest, FindsAllOccurrences) {
  const auto hits = FindAll("abracadabra", "abra");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 7u);
}

TEST(FindAllTest, OverlappingOccurrences) {
  const auto hits = FindAll("aaaa", "aa");
  ASSERT_EQ(hits.size(), 3u);
}

TEST(FindAllTest, EmptyPatternMatchesNothing) {
  EXPECT_TRUE(FindAll("abc", "").empty());
}

TEST(FindAllTest, PatternLongerThanText) {
  EXPECT_TRUE(FindAll("ab", "abc").empty());
}

TEST(FindAllTest, CaseSensitive) {
  EXPECT_TRUE(FindAll("Hello", "hello").empty());
  EXPECT_EQ(FindAll("Hello", "Hello").size(), 1u);
}

TEST(FindAllTest, MatchesAgainstNaiveSearch) {
  Random rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    for (int i = 0; i < 500; ++i) {
      text.push_back(static_cast<char>('a' + rng.Uniform(4)));
    }
    std::string pattern;
    const size_t plen = 1 + rng.Uniform(5);
    for (size_t i = 0; i < plen; ++i) {
      pattern.push_back(static_cast<char>('a' + rng.Uniform(4)));
    }
    // Naive reference.
    std::vector<size_t> expected;
    for (size_t i = 0; i + pattern.size() <= text.size(); ++i) {
      if (text.compare(i, pattern.size(), pattern) == 0) expected.push_back(i);
    }
    EXPECT_EQ(FindAll(text, pattern), expected) << pattern;
  }
}

TEST(FindNextTest, StartsAtFrom) {
  const std::string text = "one two one two one";
  auto first = FindNext(text, "one", 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0u);
  auto second = FindNext(text, "one", 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 8u);
  EXPECT_TRUE(FindNext(text, "one", 17).status().IsNotFound());
  EXPECT_TRUE(FindNext(text, "", 0).status().IsInvalidArgument());
}

TEST(FindPreviousTest, FindsStrictlyBefore) {
  const std::string text = "one two one two one";
  auto prev = FindPrevious(text, "one", 16);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, 8u);
  auto prev2 = FindPrevious(text, "one", 8);
  ASSERT_TRUE(prev2.ok());
  EXPECT_EQ(*prev2, 0u);
  EXPECT_TRUE(FindPrevious(text, "one", 0).status().IsNotFound());
}

class WordIndexTest : public ::testing::Test {
 protected:
  WordIndexTest() {
    MarkupParser parser;
    auto doc = parser.Parse(
        ".PP\nThe map shows the hospital. The map also shows the "
        "university campus.\n");
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    index_.Build(doc_);
  }
  Document doc_;
  WordIndex index_;
};

TEST_F(WordIndexTest, PositionsSortedAndComplete) {
  const auto& maps = index_.Positions("map");
  ASSERT_EQ(maps.size(), 2u);
  EXPECT_LT(maps[0], maps[1]);
  EXPECT_EQ(doc_.contents().substr(maps[0], 3), "map");
}

TEST_F(WordIndexTest, CaseInsensitiveLookup) {
  EXPECT_EQ(index_.Positions("THE").size(), index_.Positions("the").size());
  EXPECT_GE(index_.Positions("the").size(), 4u);
}

TEST_F(WordIndexTest, PunctuationStripped) {
  // "hospital." indexes as "hospital".
  EXPECT_EQ(index_.Positions("hospital").size(), 1u);
}

TEST_F(WordIndexTest, NextOccurrence) {
  const auto& maps = index_.Positions("map");
  auto first = index_.NextOccurrence("map", 0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, maps[0]);
  auto second = index_.NextOccurrence("map", maps[0] + 1);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, maps[1]);
  EXPECT_TRUE(
      index_.NextOccurrence("map", maps[1] + 1).status().IsNotFound());
  EXPECT_TRUE(index_.NextOccurrence("zebra", 0).status().IsNotFound());
}

TEST_F(WordIndexTest, PreviousOccurrence) {
  const auto& maps = index_.Positions("map");
  auto prev = index_.PreviousOccurrence("map", maps[1]);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, maps[0]);
  EXPECT_TRUE(
      index_.PreviousOccurrence("map", maps[0]).status().IsNotFound());
}

TEST_F(WordIndexTest, MissingWordIsEmpty) {
  EXPECT_TRUE(index_.Positions("zebra").empty());
}

TEST(WordIndexPostingTest, OutOfOrderInsertsStaySorted) {
  WordIndex index;
  index.AddPosting("word", 100);
  index.AddPosting("word", 50);
  index.AddPosting("word", 75);
  const auto& positions = index.Positions("word");
  ASSERT_EQ(positions.size(), 3u);
  EXPECT_TRUE(std::is_sorted(positions.begin(), positions.end()));
}

TEST(WordIndexPostingTest, VocabularySize) {
  WordIndex index;
  index.AddPosting("a", 1);
  index.AddPosting("b", 2);
  index.AddPosting("A", 3);  // Case-folds onto "a".
  EXPECT_EQ(index.vocabulary_size(), 2u);
}

}  // namespace
}  // namespace minos::text
