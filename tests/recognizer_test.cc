#include "minos/voice/recognizer.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"

namespace minos::voice {
namespace {

VoiceTrack SpeechAboutMaps() {
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".PP\nThe map shows the hospital near the university. The map also "
      "shows the subway station and another hospital. The university "
      "campus appears twice on the map today.\n");
  EXPECT_TRUE(doc.ok());
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(*doc);
  EXPECT_TRUE(track.ok());
  return std::move(track).value();
}

TEST(RecognizerTest, PerfectRecognizerSpotsEveryVocabularyWord) {
  RecognizerParams params;
  params.hit_rate = 1.0;
  params.false_alarm_rate = 0.0;
  Recognizer recognizer({"map", "hospital", "university"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const RecognitionResult result = recognizer.Recognize(track);
  int maps = 0, hospitals = 0, universities = 0;
  for (const RecognizedUtterance& u : result.utterances) {
    EXPECT_TRUE(u.correct);
    if (u.word == "map") ++maps;
    if (u.word == "hospital") ++hospitals;
    if (u.word == "university") ++universities;
  }
  EXPECT_EQ(maps, 3);
  EXPECT_EQ(hospitals, 2);
  EXPECT_EQ(universities, 2);
}

TEST(RecognizerTest, UtterancePositionsMatchAlignment) {
  RecognizerParams params;
  params.hit_rate = 1.0;
  params.false_alarm_rate = 0.0;
  Recognizer recognizer({"map"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const RecognitionResult result = recognizer.Recognize(track);
  for (const RecognizedUtterance& u : result.utterances) {
    bool found = false;
    for (const WordAlignment& w : track.words) {
      if (w.samples.begin == u.sample_position) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(RecognizerTest, MissRateReducesHits) {
  RecognizerParams strict;
  strict.hit_rate = 1.0;
  strict.false_alarm_rate = 0.0;
  RecognizerParams lossy = strict;
  lossy.hit_rate = 0.3;
  const VoiceTrack track = SpeechAboutMaps();
  const auto full =
      Recognizer({"the"}, strict).Recognize(track).utterances.size();
  const auto partial =
      Recognizer({"the"}, lossy).Recognize(track).utterances.size();
  EXPECT_LT(partial, full);
}

TEST(RecognizerTest, FalseAlarmsMarkedIncorrect) {
  RecognizerParams params;
  params.hit_rate = 0.0;
  params.false_alarm_rate = 1.0;  // Every non-vocab word misfires.
  Recognizer recognizer({"map"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const RecognitionResult result = recognizer.Recognize(track);
  EXPECT_FALSE(result.utterances.empty());
  for (const RecognizedUtterance& u : result.utterances) {
    EXPECT_FALSE(u.correct);
    EXPECT_EQ(u.word, "map");  // Only vocabulary words are reported.
  }
}

TEST(RecognizerTest, CpuCostProportionalToWords) {
  RecognizerParams params;
  params.cpu_cost_per_word = MillisToMicros(100);
  Recognizer recognizer({"map"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const RecognitionResult result = recognizer.Recognize(track);
  EXPECT_EQ(result.words_seen, track.words.size());
  EXPECT_EQ(result.cpu_cost,
            MillisToMicros(100) *
                static_cast<Micros>(track.words.size()));
}

TEST(RecognizerTest, DeterministicForSeed) {
  RecognizerParams params;
  params.hit_rate = 0.5;
  Recognizer recognizer({"map", "the"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const auto a = recognizer.Recognize(track);
  const auto b = recognizer.Recognize(track);
  ASSERT_EQ(a.utterances.size(), b.utterances.size());
  for (size_t i = 0; i < a.utterances.size(); ++i) {
    EXPECT_EQ(a.utterances[i].word, b.utterances[i].word);
    EXPECT_EQ(a.utterances[i].sample_position,
              b.utterances[i].sample_position);
  }
}

TEST(RecognizerTest, VocabularyCaseFoldedAndDeduped) {
  Recognizer recognizer({"Map", "MAP", "map"}, RecognizerParams{});
  EXPECT_EQ(recognizer.vocabulary().size(), 1u);
}

TEST(RecognizerTest, BuildIndexUsesTextAccessMethods) {
  RecognizerParams params;
  params.hit_rate = 1.0;
  params.false_alarm_rate = 0.0;
  Recognizer recognizer({"map", "hospital"}, params);
  const VoiceTrack track = SpeechAboutMaps();
  const RecognitionResult result = recognizer.Recognize(track);
  // The index is a text::WordIndex — the same access method as for text.
  text::WordIndex index = Recognizer::BuildIndex(result.utterances);
  EXPECT_EQ(index.Positions("map").size(), 3u);
  EXPECT_EQ(index.Positions("hospital").size(), 2u);
  auto first = index.NextOccurrence("map", 0);
  ASSERT_TRUE(first.ok());
  auto second = index.NextOccurrence("map", *first + 1);
  ASSERT_TRUE(second.ok());
  EXPECT_GT(*second, *first);
}

TEST(RecognizerTest, EmptyVocabularyRecognizesNothing) {
  Recognizer recognizer({}, RecognizerParams{});
  const VoiceTrack track = SpeechAboutMaps();
  EXPECT_TRUE(recognizer.Recognize(track).utterances.empty());
}

}  // namespace
}  // namespace minos::voice
