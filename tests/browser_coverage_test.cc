// Coverage for remaining browser paths: image-anchored voice messages in
// visual mode, process-simulation argument validation, stacked-set
// user selection, and audio-mode message triggering while seeking.

#include <gtest/gtest.h>

#include "minos/core/visual_browser.h"
#include "minos/text/markup.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

class ImageAnchoredMessageTest : public ::testing::Test {
 protected:
  ImageAnchoredMessageTest() : messages_(&clock_, voice::SpeakerParams{}) {
    obj_ = std::make_unique<MultimediaObject>(1);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\npage one text body\n");
    obj_->SetTextPart(std::move(doc).value()).ok();
    image::Bitmap bm(30, 30);
    bm.FillRect(image::Rect{5, 5, 10, 10}, 250);
    obj_->AddImage(image::Image::FromBitmap(std::move(bm))).ok();
    VisualPageSpec text_page;
    text_page.text_page = 1;
    obj_->descriptor().pages.push_back(text_page);
    VisualPageSpec image_page;
    image_page.images.push_back({0, image::Rect{0, 0, 30, 30}});
    obj_->descriptor().pages.push_back(image_page);
    // A voice message anchored to the image (not to text).
    object::VoiceLogicalMessage m;
    m.transcript = "about this image";
    m.image_index = 0;
    obj_->descriptor().voice_messages.push_back(m);
    obj_->Archive().ok();
    auto browser = VisualBrowser::Open(obj_.get(), &screen_, &messages_,
                                       &clock_, &log_);
    browser_ = std::move(browser).value();
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<VisualBrowser> browser_;
};

TEST_F(ImageAnchoredMessageTest, PlaysWhenImagePageEntered) {
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());  // Text page: silent.
  EXPECT_TRUE(log_.OfKind(EventKind::kVoiceMessagePlayed).empty());
  ASSERT_TRUE(browser_->NextPage().ok());  // Image page: plays.
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 1u);
  // Re-showing the same page does not branch in again.
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 1u);
  // Leaving and returning replays.
  ASSERT_TRUE(browser_->PreviousPage().ok());
  ASSERT_TRUE(browser_->NextPage().ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 2u);
}

TEST_F(ImageAnchoredMessageTest, ProcessSimulationArgumentChecks) {
  EXPECT_TRUE(browser_->PlayProcessSimulation(0).IsOutOfRange());
}

TEST(ProcessSimSpeedTest, NonPositiveSpeedRejected) {
  MultimediaObject obj(2);
  image::Bitmap bm(10, 10);
  obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok();
  VisualPageSpec page;
  page.images.push_back({0, image::Rect{}});
  obj.descriptor().pages.push_back(page);
  object::ProcessSimulationSpec sim;
  sim.first_page = 0;
  sim.count = 1;
  obj.descriptor().process_simulations.push_back(sim);
  ASSERT_TRUE(obj.Archive().ok());
  SimClock clock;
  render::Screen screen;
  MessagePlayer messages(&clock, voice::SpeakerParams{});
  EventLog log;
  auto browser =
      VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  EXPECT_TRUE(
      (*browser)->PlayProcessSimulation(0, 0.0).IsInvalidArgument());
  EXPECT_TRUE(
      (*browser)->PlayProcessSimulation(0, -1.0).IsInvalidArgument());
  EXPECT_TRUE((*browser)->PlayProcessSimulation(0, 1.0).ok());
}

TEST(StackedSetSelectionTest, SelectionWorksOnStackedSetsToo) {
  // The user may override the designer's stacked method by selecting a
  // subset ("He can do that by displaying the transparencies
  // independently ... and selecting the ones that he wants to see
  // superimposed", §2).
  MultimediaObject obj(3);
  for (uint8_t ink : {100, 150, 200}) {
    image::Bitmap bm(20, 20);
    bm.FillRect(image::Rect{ink % 10, ink % 10, 5, 5}, ink);
    obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok();
  }
  VisualPageSpec base;
  base.images.push_back({0, image::Rect{0, 0, 20, 20}});
  obj.descriptor().pages.push_back(base);
  for (uint32_t i = 1; i <= 2; ++i) {
    VisualPageSpec t;
    t.kind = VisualPageSpec::Kind::kTransparency;
    t.images.push_back({i, image::Rect{0, 0, 20, 20}});
    obj.descriptor().pages.push_back(t);
  }
  obj.descriptor().transparency_sets.push_back(
      {1, 2, object::TransparencyDisplay::kStacked});
  ASSERT_TRUE(obj.Archive().ok());

  SimClock clock;
  render::Screen screen;
  MessagePlayer messages(&clock, voice::SpeakerParams{});
  EventLog log;
  auto browser =
      VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  ASSERT_TRUE((*browser)->ShowSelectedTransparencies(0, {1}).ok());
  // Only the base and the second transparency are composed.
  const auto shown = log.OfKind(EventKind::kTransparencyShown);
  ASSERT_EQ(shown.size(), 1u);
  EXPECT_EQ(shown[0].detail, "selected");
}

TEST(StackedGotoShowsWholeStack, GotoLastTransparencyComposesAll) {
  MultimediaObject obj(4);
  for (int i = 0; i < 3; ++i) {
    image::Bitmap bm(20, 20);
    bm.FillRect(image::Rect{i * 6, 0, 5, 5}, 200);
    obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok();
  }
  VisualPageSpec base;
  base.images.push_back({0, image::Rect{0, 0, 20, 20}});
  obj.descriptor().pages.push_back(base);
  for (uint32_t i = 1; i <= 2; ++i) {
    VisualPageSpec t;
    t.kind = VisualPageSpec::Kind::kTransparency;
    t.images.push_back({i, image::Rect{0, 0, 20, 20}});
    obj.descriptor().pages.push_back(t);
  }
  obj.descriptor().transparency_sets.push_back(
      {1, 2, object::TransparencyDisplay::kStacked});
  ASSERT_TRUE(obj.Archive().ok());
  SimClock clock;
  render::Screen screen;
  MessagePlayer messages(&clock, voice::SpeakerParams{});
  EventLog log;
  auto browser =
      VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  ASSERT_TRUE((*browser)->GotoPage(3).ok());
  // All three squares visible: base at x 0..4, overlays at 6..10, 12..16.
  EXPECT_GT(screen.framebuffer().At(2, 2), 0);
  EXPECT_GT(screen.framebuffer().At(8, 2), 0);
  EXPECT_GT(screen.framebuffer().At(14, 2), 0);
}

TEST(SeparateGotoShowsOnlyCurrent, SeparateMethodIsolatesTransparency) {
  MultimediaObject obj(5);
  for (int i = 0; i < 3; ++i) {
    image::Bitmap bm(20, 20);
    bm.FillRect(image::Rect{i * 6, 0, 5, 5}, 200);
    obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok();
  }
  VisualPageSpec base;
  base.images.push_back({0, image::Rect{0, 0, 20, 20}});
  obj.descriptor().pages.push_back(base);
  for (uint32_t i = 1; i <= 2; ++i) {
    VisualPageSpec t;
    t.kind = VisualPageSpec::Kind::kTransparency;
    t.images.push_back({i, image::Rect{0, 0, 20, 20}});
    obj.descriptor().pages.push_back(t);
  }
  obj.descriptor().transparency_sets.push_back(
      {1, 2, object::TransparencyDisplay::kSeparate});
  ASSERT_TRUE(obj.Archive().ok());
  SimClock clock;
  render::Screen screen;
  MessagePlayer messages(&clock, voice::SpeakerParams{});
  EventLog log;
  auto browser =
      VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  ASSERT_TRUE((*browser)->GotoPage(3).ok());
  // Base + the SECOND transparency only; the first is skipped.
  EXPECT_GT(screen.framebuffer().At(2, 2), 0);
  EXPECT_EQ(screen.framebuffer().At(8, 2), 0);
  EXPECT_GT(screen.framebuffer().At(14, 2), 0);
}

}  // namespace
}  // namespace minos::core
