// Semantics of the small vocabulary types used across module boundaries:
// StatusOr copy/move, Decoder cursor behaviour, Rect algebra, and
// LowerHalf layout derivation.

#include <gtest/gtest.h>

#include "minos/image/bitmap.h"
#include "minos/text/formatter.h"
#include "minos/util/coding.h"
#include "minos/util/statusor.h"

namespace minos {
namespace {

TEST(StatusOrSemanticsTest, CopyPreservesBothStates) {
  StatusOr<std::string> ok_value = std::string("payload");
  StatusOr<std::string> ok_copy = ok_value;
  ASSERT_TRUE(ok_copy.ok());
  EXPECT_EQ(*ok_copy, "payload");
  EXPECT_EQ(*ok_value, "payload");  // Source intact.

  StatusOr<std::string> err = Status::NotFound("gone");
  StatusOr<std::string> err_copy = err;
  EXPECT_TRUE(err_copy.status().IsNotFound());
}

TEST(StatusOrSemanticsTest, MoveTransfersValue) {
  StatusOr<std::string> source = std::string(1000, 'x');
  StatusOr<std::string> dest = std::move(source);
  ASSERT_TRUE(dest.ok());
  EXPECT_EQ(dest->size(), 1000u);
}

TEST(StatusOrSemanticsTest, AssignmentReplacesState) {
  StatusOr<int> v = 1;
  v = Status::Corruption("bad");
  EXPECT_TRUE(v.status().IsCorruption());
  v = 2;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 2);
}

TEST(DecoderSemanticsTest, CursorAdvancesAcrossMixedFields) {
  std::string buf;
  PutVarint64(&buf, 7);
  PutFixed32(&buf, 0xAABBCCDD);
  PutLengthPrefixed(&buf, "mid");
  PutVarint64(&buf, 9);
  Decoder dec(buf);
  EXPECT_EQ(dec.remaining(), buf.size());
  uint64_t v = 0;
  ASSERT_TRUE(dec.GetVarint64(&v).ok());
  uint32_t f = 0;
  ASSERT_TRUE(dec.GetFixed32(&f).ok());
  std::string s;
  ASSERT_TRUE(dec.GetLengthPrefixed(&s).ok());
  ASSERT_TRUE(dec.GetVarint64(&v).ok());
  EXPECT_EQ(v, 9u);
  EXPECT_TRUE(dec.empty());
  // Reading past the end fails without crashing.
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(DecoderSemanticsTest, FailedReadDoesNotCorruptLaterState) {
  std::string buf;
  PutVarint64(&buf, 5);
  Decoder dec(buf);
  uint64_t big = 0;
  std::string raw;
  EXPECT_TRUE(dec.GetRaw(100, &raw).IsCorruption());
  // The varint is still readable after the failed raw read.
  ASSERT_TRUE(dec.GetVarint64(&big).ok());
  EXPECT_EQ(big, 5u);
}

TEST(RectAlgebraTest, IntersectionIsCommutativeAndContained) {
  const image::Rect a{0, 0, 10, 10};
  const image::Rect b{5, -5, 10, 10};
  const image::Rect ab = a.Intersect(b);
  const image::Rect ba = b.Intersect(a);
  EXPECT_EQ(ab, ba);
  for (int y = ab.y; y < ab.y + ab.h; ++y) {
    for (int x = ab.x; x < ab.x + ab.w; ++x) {
      EXPECT_TRUE(a.Contains(x, y));
      EXPECT_TRUE(b.Contains(x, y));
    }
  }
}

TEST(RectAlgebraTest, EmptyIntersectionHasZeroArea) {
  const image::Rect a{0, 0, 5, 5};
  const image::Rect b{5, 0, 5, 5};  // Touching edges do not intersect.
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_EQ(a.Intersect(b).area(), 0);
}

TEST(PageLayoutTest, LowerHalfOnlyShrinksHeight) {
  text::PageLayout layout;
  layout.width = 52;
  layout.height = 21;
  layout.paragraph_indent = 4;
  layout.chapter_starts_page = false;
  const text::PageLayout half = layout.LowerHalf();
  EXPECT_EQ(half.width, 52);
  EXPECT_EQ(half.height, 10);
  EXPECT_EQ(half.paragraph_indent, 4);
  EXPECT_FALSE(half.chapter_starts_page);
}

}  // namespace
}  // namespace minos
