#include "minos/text/document.h"

#include <gtest/gtest.h>

namespace minos::text {
namespace {

Document SimpleDoc() {
  Document doc;
  const size_t p1 = doc.AppendText("One two. Three four!");
  doc.AddComponent(LogicalUnit::kParagraph, p1, "");
  const size_t p2 = doc.AppendText(" Five six seven.");
  doc.AddComponentSpan(
      {LogicalUnit::kParagraph, TextSpan{p2 + 1, doc.size()}, ""});
  doc.DeriveFineStructure();
  return doc;
}

TEST(DocumentTest, AppendTextReturnsOffsets) {
  Document doc;
  EXPECT_EQ(doc.AppendText("abc"), 0u);
  EXPECT_EQ(doc.AppendText("def"), 3u);
  EXPECT_EQ(doc.contents(), "abcdef");
  EXPECT_EQ(doc.size(), 6u);
}

TEST(DocumentTest, DeriveSentences) {
  Document doc = SimpleDoc();
  const auto& sentences = doc.Components(LogicalUnit::kSentence);
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(doc.contents().substr(sentences[0].span.begin,
                                  sentences[0].span.length()),
            "One two.");
  EXPECT_EQ(doc.contents().substr(sentences[1].span.begin,
                                  sentences[1].span.length()),
            "Three four!");
  EXPECT_EQ(doc.contents().substr(sentences[2].span.begin,
                                  sentences[2].span.length()),
            "Five six seven.");
}

TEST(DocumentTest, DeriveWords) {
  Document doc = SimpleDoc();
  const auto& words = doc.Components(LogicalUnit::kWord);
  ASSERT_EQ(words.size(), 7u);
  EXPECT_EQ(doc.contents().substr(words[0].span.begin,
                                  words[0].span.length()),
            "One");
  EXPECT_EQ(doc.contents().substr(words[6].span.begin,
                                  words[6].span.length()),
            "seven.");
}

TEST(DocumentTest, HasUnit) {
  Document doc = SimpleDoc();
  EXPECT_TRUE(doc.HasUnit(LogicalUnit::kParagraph));
  EXPECT_TRUE(doc.HasUnit(LogicalUnit::kWord));
  EXPECT_FALSE(doc.HasUnit(LogicalUnit::kChapter));
}

TEST(DocumentTest, NextUnitStart) {
  Document doc = SimpleDoc();
  auto next = doc.NextUnitStart(LogicalUnit::kSentence, 0);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 9u);  // "Three four!" starts after "One two. ".
  auto last = doc.NextUnitStart(LogicalUnit::kSentence, doc.size());
  EXPECT_TRUE(last.status().IsNotFound());
}

TEST(DocumentTest, PreviousUnitStart) {
  Document doc = SimpleDoc();
  auto prev = doc.PreviousUnitStart(LogicalUnit::kSentence, doc.size());
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(doc.contents().substr(*prev, 4), "Five");
  EXPECT_TRUE(
      doc.PreviousUnitStart(LogicalUnit::kSentence, 0).status().IsNotFound());
}

TEST(DocumentTest, EnclosingUnit) {
  Document doc = SimpleDoc();
  auto unit = doc.EnclosingUnit(LogicalUnit::kSentence, 10);
  ASSERT_TRUE(unit.ok());
  EXPECT_EQ(doc.contents().substr(unit->span.begin, unit->span.length()),
            "Three four!");
}

TEST(DocumentTest, EmphasisRecorded) {
  Document doc;
  doc.AppendText("plain bold plain");
  doc.AddEmphasis(EmphasisSpan{TextSpan{6, 10}, Emphasis::kBold});
  ASSERT_EQ(doc.emphasis().size(), 1u);
  EXPECT_EQ(doc.emphasis()[0].kind, Emphasis::kBold);
}

TEST(DocumentTest, SpanHelpers) {
  TextSpan span{5, 10};
  EXPECT_EQ(span.length(), 5u);
  EXPECT_TRUE(span.Contains(5));
  EXPECT_TRUE(span.Contains(9));
  EXPECT_FALSE(span.Contains(10));
  EXPECT_FALSE(span.Contains(4));
}

TEST(DocumentTest, LogicalUnitNames) {
  EXPECT_STREQ(LogicalUnitName(LogicalUnit::kChapter), "chapter");
  EXPECT_STREQ(LogicalUnitName(LogicalUnit::kWord), "word");
  EXPECT_STREQ(LogicalUnitName(LogicalUnit::kReferences), "references");
}

TEST(DocumentTest, DeriveIsIdempotent) {
  Document doc = SimpleDoc();
  const size_t words_before = doc.Components(LogicalUnit::kWord).size();
  doc.DeriveFineStructure();
  EXPECT_EQ(doc.Components(LogicalUnit::kWord).size(), words_before);
}

TEST(DocumentTest, QuestionMarkEndsSentence) {
  Document doc;
  const size_t at = doc.AppendText("Is it? Yes it is.");
  doc.AddComponent(LogicalUnit::kParagraph, at, "");
  doc.DeriveFineStructure();
  ASSERT_EQ(doc.Components(LogicalUnit::kSentence).size(), 2u);
}

}  // namespace
}  // namespace minos::text
