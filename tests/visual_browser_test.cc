#include "minos/core/visual_browser.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::TextAnchor;
using object::VisualPageSpec;

constexpr char kMarkup[] =
    ".TITLE Field Report\n"
    ".CHAPTER Overview\n.PP\n"
    "The expedition mapped the northern valley in spring. Weather stayed "
    "fair for nine days straight. The survey team collected samples.\n"
    ".PP\nFurther observations were recorded in the *journal* daily.\n"
    ".CHAPTER Findings\n.PP\n"
    "Mineral deposits appeared along the river bend. The fracture zone "
    "runs east to west across the entire site area.\n"
    ".SECTION Analysis\n"
    "Samples show high iron content throughout the deposit layers.\n";

class VisualBrowserTest : public ::testing::Test {
 protected:
  VisualBrowserTest()
      : messages_(&clock_, voice::SpeakerParams{}) {
    obj_ = std::make_unique<MultimediaObject>(1);
    text::MarkupParser parser;
    auto doc = parser.Parse(kMarkup);
    EXPECT_TRUE(doc.ok());
    obj_->descriptor().layout.width = 40;
    obj_->descriptor().layout.height = 8;
    EXPECT_TRUE(obj_->SetTextPart(std::move(doc).value()).ok());
    image::Bitmap xray(40, 40);
    xray.FillRect(image::Rect{10, 10, 20, 20}, 230);
    EXPECT_TRUE(
        obj_->AddImage(image::Image::FromBitmap(std::move(xray))).ok());
  }

  // Builds pages from the formatted text and archives.
  void FinishObject() {
    auto formatted = FormatObjectText(*obj_);
    ASSERT_TRUE(formatted.ok());
    for (size_t i = 0; i < formatted->pages.size(); ++i) {
      VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      obj_->descriptor().pages.push_back(page);
    }
    ASSERT_TRUE(obj_->Archive().ok());
    auto browser =
        VisualBrowser::Open(obj_.get(), &screen_, &messages_, &clock_, &log_);
    ASSERT_TRUE(browser.ok()) << browser.status().ToString();
    browser_ = std::move(browser).value();
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<VisualBrowser> browser_;
};

TEST_F(VisualBrowserTest, OpenRejectsEditingObject) {
  auto browser =
      VisualBrowser::Open(obj_.get(), &screen_, &messages_, &clock_, &log_);
  EXPECT_TRUE(browser.status().IsFailedPrecondition());
}

TEST_F(VisualBrowserTest, PageNavigation) {
  FinishObject();
  EXPECT_EQ(browser_->current_page(), 1);
  ASSERT_TRUE(browser_->NextPage().ok());
  EXPECT_EQ(browser_->current_page(), 2);
  ASSERT_TRUE(browser_->PreviousPage().ok());
  EXPECT_EQ(browser_->current_page(), 1);
  EXPECT_TRUE(browser_->PreviousPage().IsOutOfRange());
  EXPECT_TRUE(browser_->GotoPage(99).IsOutOfRange());
  ASSERT_TRUE(browser_->GotoPage(browser_->page_count()).ok());
  EXPECT_TRUE(browser_->NextPage().IsOutOfRange());
}

TEST_F(VisualBrowserTest, AdvanceSeveralPages) {
  FinishObject();
  ASSERT_GE(browser_->page_count(), 3);
  ASSERT_TRUE(browser_->AdvancePages(2).ok());
  EXPECT_EQ(browser_->current_page(), 3);
  ASSERT_TRUE(browser_->AdvancePages(-2).ok());
  EXPECT_EQ(browser_->current_page(), 1);
}

TEST_F(VisualBrowserTest, PageShownEventsLogged) {
  FinishObject();
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  ASSERT_TRUE(browser_->NextPage().ok());
  const auto shown = log_.OfKind(EventKind::kPageShown);
  ASSERT_EQ(shown.size(), 2u);
  EXPECT_EQ(shown[0].value, 1);
  EXPECT_EQ(shown[1].value, 2);
}

TEST_F(VisualBrowserTest, ScreenShowsContentAndMenu) {
  FinishObject();
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  int page_ink = 0, menu_ink = 0;
  const auto& fb = screen_.framebuffer();
  const auto page = screen_.PageArea();
  const auto menu = screen_.MenuArea();
  for (int y = 0; y < fb.height(); ++y) {
    for (int x = 0; x < fb.width(); ++x) {
      if (fb.At(x, y) == 0) continue;
      if (page.Contains(x, y)) ++page_ink;
      if (menu.Contains(x, y)) ++menu_ink;
    }
  }
  EXPECT_GT(page_ink, 100);
  EXPECT_GT(menu_ink, 50);
}

TEST_F(VisualBrowserTest, LogicalUnitNavigation) {
  FinishObject();
  // "next chapter" from the title page lands on Overview.
  ASSERT_TRUE(browser_->NextUnit(text::LogicalUnit::kChapter).ok());
  const int overview_page = browser_->current_page();
  EXPECT_GT(overview_page, 1);
  // A second "next chapter" lands on Findings.
  ASSERT_TRUE(browser_->NextUnit(text::LogicalUnit::kChapter).ok());
  const int findings_page = browser_->current_page();
  EXPECT_GT(findings_page, overview_page);
  const auto reached = log_.OfKind(EventKind::kUnitReached);
  ASSERT_EQ(reached.size(), 2u);
  EXPECT_EQ(reached[0].detail, "chapter");
  // Past the last chapter: NotFound.
  EXPECT_TRUE(browser_->NextUnit(text::LogicalUnit::kChapter).IsNotFound());
  // "prev chapter" goes back toward Overview.
  ASSERT_TRUE(browser_->PreviousUnit(text::LogicalUnit::kChapter).ok());
  EXPECT_LE(browser_->current_page(), overview_page);
}

TEST_F(VisualBrowserTest, UnsupportedUnitWhenAbsent) {
  FinishObject();
  // No .ABSTRACT in the markup... actually kMarkup has none.
  EXPECT_TRUE(
      browser_->NextUnit(text::LogicalUnit::kAbstract).IsUnsupported());
}

TEST_F(VisualBrowserTest, PatternBrowsing) {
  FinishObject();
  ASSERT_TRUE(browser_->FindPattern("fracture").ok());
  const auto found = log_.OfKind(EventKind::kPatternFound);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].detail, "fracture");
  // The shown page's span contains the hit.
  const size_t hit = static_cast<size_t>(found[0].value);
  EXPECT_EQ(obj_->text_part().contents().substr(hit, 8), "fracture");
  // Next occurrence does not exist -> NotFound.
  EXPECT_TRUE(browser_->FindPattern("fracture").IsNotFound());
}

TEST_F(VisualBrowserTest, MenuOptionsReflectObject) {
  FinishObject();
  const auto options = browser_->MenuOptions();
  auto has = [&](const std::string& s) {
    return std::find(options.begin(), options.end(), s) != options.end();
  };
  EXPECT_TRUE(has("next page"));
  EXPECT_TRUE(has("next chapter"));
  EXPECT_TRUE(has("next section"));
  EXPECT_TRUE(has("find pattern"));
  EXPECT_FALSE(has("play"));  // That is an audio-mode option.
}

TEST_F(VisualBrowserTest, VoiceMessagePlayedOnBranchIn) {
  // Attach a voice message to the "fracture" text segment.
  const size_t pos = obj_->text_part().contents().find("fracture");
  ASSERT_NE(pos, std::string::npos);
  object::VoiceLogicalMessage m;
  m.transcript = "note this region";
  m.text_anchor = TextAnchor{pos, pos + 40};
  obj_->descriptor().voice_messages.push_back(m);
  FinishObject();

  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  EXPECT_TRUE(log_.OfKind(EventKind::kVoiceMessagePlayed).empty());
  // Browse to the page with the anchor.
  ASSERT_TRUE(browser_->FindPattern("fracture").ok());
  const auto played = log_.OfKind(EventKind::kVoiceMessagePlayed);
  ASSERT_EQ(played.size(), 1u);
  EXPECT_EQ(played[0].detail, "note this region");
  // Staying on the page (re-show) does not replay.
  const int anchored_page = browser_->current_page();
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 1u);
  // Leaving and re-entering replays (branch-in again).
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  ASSERT_TRUE(browser_->GotoPage(anchored_page).ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 2u);
}

TEST_F(VisualBrowserTest, VoiceMessagePlaybackAdvancesClock) {
  const size_t pos = obj_->text_part().contents().find("expedition");
  object::VoiceLogicalMessage m;
  m.transcript = "a rather long spoken annotation for this section";
  m.text_anchor = TextAnchor{pos, pos + 10};
  obj_->descriptor().voice_messages.push_back(m);
  FinishObject();
  const Micros before = clock_.Now();
  ASSERT_TRUE(browser_->FindPattern("expedition").ok());
  EXPECT_GT(clock_.Now(), before);  // Message audio took simulated time.
}

TEST_F(VisualBrowserTest, VisualMessagePinsAndHides) {
  // Pin the x-ray image while browsing the Findings chapter text.
  const size_t pos = obj_->text_part().contents().find("Mineral");
  const size_t end = obj_->text_part().contents().find("deposit layers");
  object::VisualLogicalMessage m;
  m.text = "XRAY 1042";
  m.image_index = 0;
  m.text_anchors.push_back(TextAnchor{pos, end});
  obj_->descriptor().visual_messages.push_back(m);
  FinishObject();

  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  EXPECT_TRUE(log_.OfKind(EventKind::kVisualMessageShown).empty());
  ASSERT_TRUE(browser_->FindPattern("Mineral").ok());
  ASSERT_EQ(log_.OfKind(EventKind::kVisualMessageShown).size(), 1u);
  // The message area carries ink (the pinned image).
  int ink = 0;
  const auto msg_area = screen_.MessageArea();
  for (int y = msg_area.y; y < msg_area.y + msg_area.h; ++y) {
    for (int x = msg_area.x; x < msg_area.x + msg_area.w; ++x) {
      if (screen_.framebuffer().At(x, y) > 0) ++ink;
    }
  }
  EXPECT_GT(ink, 50);
  // Going back to page 1 hides it.
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVisualMessageHidden).size(), 1u);
}

TEST_F(VisualBrowserTest, DisplayOnceMessageNotRepinned) {
  const size_t pos = obj_->text_part().contents().find("Mineral");
  object::VisualLogicalMessage m;
  m.text = "ONLY ONCE";
  m.text_anchors.push_back(TextAnchor{pos, pos + 60});
  m.display_once = true;
  obj_->descriptor().visual_messages.push_back(m);
  FinishObject();
  ASSERT_TRUE(browser_->FindPattern("Mineral").ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVisualMessageShown).size(), 1u);
  const int anchored_page = browser_->current_page();
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  ASSERT_TRUE(browser_->GotoPage(anchored_page).ok());
  // Second branch-in: not shown again.
  EXPECT_EQ(log_.OfKind(EventKind::kVisualMessageShown).size(), 1u);
}

TEST_F(VisualBrowserTest, RelevantLinksVisibleOnlyOnAnchoredPages) {
  const size_t pos = obj_->text_part().contents().find("river bend");
  object::RelevantObjectLink link;
  link.target = 99;
  link.indicator_label = "geology survey";
  link.parent_text_anchor = TextAnchor{pos, pos + 10};
  obj_->descriptor().relevant_objects.push_back(link);
  FinishObject();
  ASSERT_TRUE(browser_->ShowCurrentPage().ok());
  EXPECT_TRUE(browser_->VisibleRelevantLinks().empty());
  ASSERT_TRUE(browser_->FindPattern("river").ok());
  const auto links = browser_->VisibleRelevantLinks();
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0]->indicator_label, "geology survey");
  // And the menu shows the indicator.
  const auto options = browser_->MenuOptions();
  EXPECT_NE(std::find(options.begin(), options.end(), "-> geology survey"),
            options.end());
}

}  // namespace
}  // namespace minos::core
