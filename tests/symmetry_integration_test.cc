// Integration test of the paper's central claim: "The information system
// should offer symmetric capabilities for entering, presenting, and
// browsing through voice or text." (§1)
//
// One Document is rendered both as a visual-mode object (text pages) and
// as an audio-mode object (voice pages over synthesized speech). The same
// logical browsing commands are issued on both; the positions they land on
// must correspond across media through the synthesis alignment.

#include <gtest/gtest.h>

#include "minos/core/audio_browser.h"
#include "minos/core/visual_browser.h"
#include "minos/text/markup.h"
#include "minos/voice/recognizer.h"
#include "minos/voice/synthesizer.h"

namespace minos::core {
namespace {

using object::DrivingMode;
using object::MultimediaObject;
using object::VisualPageSpec;
using text::LogicalUnit;

constexpr char kMarkup[] =
    ".TITLE Expedition Notes\n"
    ".CHAPTER Valley\n.PP\n"
    "The northern valley held three camps along the river. Supplies "
    "arrived by mule every second week without fail.\n"
    ".PP\nWinter closed the passes early that year.\n"
    ".CHAPTER Summit\n.PP\n"
    "The summit push began before dawn on the ninth day. Oxygen ran low "
    "near the ridge but the weather held.\n"
    ".CHAPTER Return\n.PP\n"
    "The descent took four days through heavy snow. Every member "
    "returned safely to the base camp.\n";

class SymmetryTest : public ::testing::Test {
 protected:
  SymmetryTest()
      : messages_(&clock_, voice::SpeakerParams{}) {
    text::MarkupParser parser;
    auto doc = parser.Parse(kMarkup);
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();

    // Visual twin.
    visual_ = std::make_unique<MultimediaObject>(1);
    visual_->descriptor().layout.width = 44;
    visual_->descriptor().layout.height = 8;
    EXPECT_TRUE(visual_->SetTextPart(doc_).ok());
    auto formatted = FormatObjectText(*visual_);
    EXPECT_TRUE(formatted.ok());
    for (size_t i = 0; i < formatted->pages.size(); ++i) {
      VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      visual_->descriptor().pages.push_back(page);
    }
    EXPECT_TRUE(visual_->Archive().ok());

    // Audio twin from the same document.
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(doc_);
    EXPECT_TRUE(track.ok());
    voice::VoiceDocument vdoc(std::move(track).value());
    vdoc.TagFromAlignment(doc_, voice::EditingLevel::kFull);
    audio_ = std::make_unique<MultimediaObject>(2);
    audio_->descriptor().driving_mode = DrivingMode::kAudio;
    EXPECT_TRUE(audio_->SetVoicePart(std::move(vdoc)).ok());
    EXPECT_TRUE(audio_->Archive().ok());

    auto vb = VisualBrowser::Open(visual_.get(), &screen_, &messages_,
                                  &clock_, &vlog_);
    EXPECT_TRUE(vb.ok());
    vbrowser_ = std::move(vb).value();
    auto ab = AudioBrowser::Open(audio_.get(), &screen_, &messages_,
                                 &clock_, &alog_);
    EXPECT_TRUE(ab.ok());
    abrowser_ = std::move(ab).value();
  }

  /// Maps the audio browser's sample position to a text offset.
  size_t AudioTextOffset() {
    auto offset = audio_->voice_part().TextOffsetForSample(
        abrowser_->position());
    EXPECT_TRUE(offset.ok());
    return offset.value_or(0);
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog vlog_, alog_;
  text::Document doc_;
  std::unique_ptr<MultimediaObject> visual_;
  std::unique_ptr<MultimediaObject> audio_;
  std::unique_ptr<VisualBrowser> vbrowser_;
  std::unique_ptr<AudioBrowser> abrowser_;
};

TEST_F(SymmetryTest, BothMediaOfferTheSamePageCommands) {
  // next / prev / advance / goto behave identically at the API level.
  ASSERT_TRUE(vbrowser_->NextPage().ok());
  ASSERT_TRUE(abrowser_->NextPage().ok());
  EXPECT_EQ(vbrowser_->current_page(), 2);
  EXPECT_EQ(abrowser_->current_page(), 2);
  ASSERT_TRUE(vbrowser_->PreviousPage().ok());
  ASSERT_TRUE(abrowser_->PreviousPage().ok());
  EXPECT_EQ(vbrowser_->current_page(), 1);
  EXPECT_EQ(abrowser_->current_page(), 1);
}

TEST_F(SymmetryTest, ChapterNavigationLandsOnCorrespondingContent) {
  // Drive both browsers to the Summit chapter with the same command
  // sequence.
  ASSERT_TRUE(vbrowser_->NextUnit(LogicalUnit::kChapter).ok());  // Valley.
  ASSERT_TRUE(vbrowser_->NextUnit(LogicalUnit::kChapter).ok());  // Summit.
  ASSERT_TRUE(abrowser_->NextUnit(LogicalUnit::kChapter).ok());
  ASSERT_TRUE(abrowser_->NextUnit(LogicalUnit::kChapter).ok());

  // The audio position corresponds to the Summit chapter's text start.
  const auto& chapters = doc_.Components(LogicalUnit::kChapter);
  ASSERT_EQ(chapters.size(), 3u);
  const size_t audio_text = AudioTextOffset();
  EXPECT_GE(audio_text, chapters[1].span.begin);
  EXPECT_LT(audio_text, chapters[2].span.begin);

  // The visual page presents the same chapter start.
  const size_t visual_text = vbrowser_->current_text_offset();
  EXPECT_GE(visual_text + 1, chapters[1].span.begin);
  EXPECT_LT(visual_text, chapters[2].span.begin);
}

TEST_F(SymmetryTest, SentenceNavigationExistsInBothMedia) {
  // Sentences were derived in text and tagged (kFull) in voice.
  ASSERT_TRUE(vbrowser_->NextUnit(LogicalUnit::kSentence).ok());
  ASSERT_TRUE(abrowser_->NextUnit(LogicalUnit::kSentence).ok());
  EXPECT_EQ(vlog_.OfKind(EventKind::kUnitReached).size(), 1u);
  EXPECT_EQ(alog_.OfKind(EventKind::kUnitReached).size(), 1u);
}

TEST_F(SymmetryTest, PatternBrowsingFindsTheSameWord) {
  // Text side: direct pattern scan.
  ASSERT_TRUE(vbrowser_->FindPattern("Oxygen").ok());
  const auto vfound = vlog_.OfKind(EventKind::kPatternFound);
  ASSERT_EQ(vfound.size(), 1u);
  const size_t text_hit = static_cast<size_t>(vfound[0].value);

  // Voice side: insertion-time recognition index, same access method.
  voice::RecognizerParams params;
  params.hit_rate = 1.0;
  params.false_alarm_rate = 0.0;
  voice::Recognizer recognizer({"oxygen"}, params);
  const auto result = recognizer.Recognize(audio_->voice_part().track());
  abrowser_->SetRecognitionIndex(
      voice::Recognizer::BuildIndex(result.utterances));
  ASSERT_TRUE(abrowser_->FindSpokenPattern("oxygen").ok());
  const auto afound = alog_.OfKind(EventKind::kPatternFound);
  ASSERT_EQ(afound.size(), 1u);

  // The spoken hit corresponds to the very same text offset.
  auto spoken_text_offset = audio_->voice_part().TextOffsetForSample(
      static_cast<size_t>(afound[0].value));
  ASSERT_TRUE(spoken_text_offset.ok());
  EXPECT_EQ(*spoken_text_offset, text_hit);
}

TEST_F(SymmetryTest, VoiceCachingViaPauseRewindParallelsTextRereading) {
  // "Text pages present a cache of information... A similar facility in
  // voice [is] the short pause and long pause options." (§2)
  ASSERT_TRUE(abrowser_->Play().ok());
  const size_t end = abrowser_->position();
  ASSERT_TRUE(abrowser_->RewindPauses(1, voice::PauseKind::kLong).ok());
  const size_t after_long = abrowser_->position();
  EXPECT_LT(after_long, end);
  // Rewinding by a long pause goes near a paragraph/sentence boundary:
  // the text offset it lands on starts within one word of a sentence.
  auto text_offset = audio_->voice_part().TextOffsetForSample(after_long);
  ASSERT_TRUE(text_offset.ok());
  bool near_sentence_start = false;
  for (const auto& s : doc_.Components(LogicalUnit::kSentence)) {
    // Within 16 characters of some sentence start.
    const int64_t d = static_cast<int64_t>(*text_offset) -
                      static_cast<int64_t>(s.span.begin);
    if (d >= -16 && d <= 16) near_sentence_start = true;
  }
  EXPECT_TRUE(near_sentence_start);
}

TEST_F(SymmetryTest, MenusShareThePageVocabulary) {
  const auto voptions = vbrowser_->MenuOptions();
  const auto aoptions = abrowser_->MenuOptions();
  for (const char* shared :
       {"next page", "prev page", "goto page", "+5 pages", "-5 pages",
        "next chapter", "prev chapter"}) {
    EXPECT_NE(std::find(voptions.begin(), voptions.end(), shared),
              voptions.end())
        << shared;
    EXPECT_NE(std::find(aoptions.begin(), aoptions.end(), shared),
              aoptions.end())
        << shared;
  }
}

TEST_F(SymmetryTest, VisualPagesTurnExplicitlyAudioPagesFlowOn) {
  // "speech is not interrupted at the end of each voice page. In
  // contrast, visual pages are not turned automatically." (§2)
  ASSERT_TRUE(abrowser_->Play().ok());
  // Playback crossed every page boundary without a command.
  EXPECT_EQ(alog_.OfKind(EventKind::kAudioPageStarted).size(),
            static_cast<size_t>(abrowser_->page_count()));
  // The visual browser stayed on page 1 the whole time.
  EXPECT_EQ(vbrowser_->current_page(), 1);
}

}  // namespace
}  // namespace minos::core
