#include "minos/storage/data_directory.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

TEST(DataDirectoryTest, AddAndFindLocal) {
  DataDirectory dir;
  dir.AddLocal("xray.img", DataType::kImage, 1024, DataStatus::kFinal);
  auto e = dir.Find("xray.img");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->type, DataType::kImage);
  EXPECT_EQ(e->location, DataLocation::kLocalFile);
  EXPECT_EQ(e->length, 1024u);
  EXPECT_TRUE(dir.Find("missing").status().IsNotFound());
}

TEST(DataDirectoryTest, ArchiverReferenceIsFinal) {
  DataDirectory dir;
  dir.AddArchiverReference("shared.img", DataType::kImage,
                           ArchiveAddress{4096, 512});
  auto e = dir.Find("shared.img");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->location, DataLocation::kArchiver);
  EXPECT_EQ(e->status, DataStatus::kFinal);
  EXPECT_EQ(e->archive_address, (ArchiveAddress{4096, 512}));
  EXPECT_EQ(e->length, 512u);
}

TEST(DataDirectoryTest, AllFinalTracksDrafts) {
  DataDirectory dir;
  EXPECT_TRUE(dir.AllFinal());  // Vacuously.
  dir.AddLocal("draft.txt", DataType::kText, 10, DataStatus::kDraft);
  EXPECT_FALSE(dir.AllFinal());
  ASSERT_TRUE(dir.MarkFinal("draft.txt").ok());
  EXPECT_TRUE(dir.AllFinal());
}

TEST(DataDirectoryTest, MarkFinalMissingEntry) {
  DataDirectory dir;
  EXPECT_TRUE(dir.MarkFinal("ghost").IsNotFound());
}

TEST(DataDirectoryTest, SerializeRoundTrip) {
  DataDirectory dir;
  dir.AddLocal("a.txt", DataType::kText, 7, DataStatus::kDraft);
  dir.AddLocal("b.img", DataType::kImage, 99, DataStatus::kFinal);
  dir.AddArchiverReference("c.pcm", DataType::kVoice,
                           ArchiveAddress{12, 34});
  auto restored = DataDirectory::Deserialize(dir.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->entries().size(), 3u);
  EXPECT_EQ(restored->entries()[0].name, "a.txt");
  EXPECT_EQ(restored->entries()[0].status, DataStatus::kDraft);
  EXPECT_EQ(restored->entries()[2].archive_address,
            (ArchiveAddress{12, 34}));
  EXPECT_FALSE(restored->AllFinal());
}

TEST(DataDirectoryTest, DeserializeRejectsTruncation) {
  DataDirectory dir;
  dir.AddLocal("a.txt", DataType::kText, 7, DataStatus::kFinal);
  const std::string bytes = dir.Serialize();
  auto restored =
      DataDirectory::Deserialize(std::string_view(bytes).substr(0, 3));
  EXPECT_FALSE(restored.ok());
}

}  // namespace
}  // namespace minos::storage
