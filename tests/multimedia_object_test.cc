#include "minos/object/multimedia_object.h"

#include <gtest/gtest.h>

#include "minos/object/part_codec.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::object {
namespace {

text::Document MakeDoc() {
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".TITLE Patient Record\n.CHAPTER Findings\n.PP\n"
      "The x-ray shows a hairline fracture near the joint. Follow up in "
      "two weeks.\n");
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

voice::VoiceDocument MakeVoice(const text::Document& doc) {
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(doc);
  EXPECT_TRUE(track.ok());
  voice::VoiceDocument vdoc(std::move(track).value());
  vdoc.TagFromAlignment(doc, voice::EditingLevel::kParagraphs);
  return vdoc;
}

image::Image MakeXray() {
  image::Bitmap bm(64, 64);
  bm.FillRect(image::Rect{20, 20, 24, 24}, 180);
  return image::Image::FromBitmap(std::move(bm));
}

MultimediaObject MakeFullObject() {
  MultimediaObject obj(42);
  EXPECT_TRUE(obj.SetAttribute("patient", "John Doe").ok());
  EXPECT_TRUE(obj.SetAttribute("modality", "xray chest").ok());
  text::Document doc = MakeDoc();
  voice::VoiceDocument vdoc = MakeVoice(doc);
  EXPECT_TRUE(obj.SetVoicePart(std::move(vdoc)).ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc)).ok());
  EXPECT_TRUE(obj.AddImage(MakeXray()).ok());
  VisualPageSpec page;
  page.kind = VisualPageSpec::Kind::kNormal;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  return obj;
}

TEST(PartCodecTest, DocumentRoundTrip) {
  const text::Document doc = MakeDoc();
  auto restored = DecodeDocument(EncodeDocument(doc));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->contents(), doc.contents());
  for (int u = 0; u < 8; ++u) {
    const auto unit = static_cast<text::LogicalUnit>(u);
    ASSERT_EQ(restored->Components(unit).size(),
              doc.Components(unit).size());
    for (size_t i = 0; i < doc.Components(unit).size(); ++i) {
      EXPECT_EQ(restored->Components(unit)[i].span,
                doc.Components(unit)[i].span);
      EXPECT_EQ(restored->Components(unit)[i].title,
                doc.Components(unit)[i].title);
    }
  }
}

TEST(PartCodecTest, DocumentRejectsOutOfBoundsSpan) {
  text::Document doc;
  doc.AppendText("short");
  doc.AddComponentSpan(
      {text::LogicalUnit::kChapter, text::TextSpan{0, 999}, "bad"});
  const std::string bytes = EncodeDocument(doc);
  EXPECT_TRUE(DecodeDocument(bytes).status().IsCorruption());
}

TEST(PartCodecTest, VoiceDocumentRoundTrip) {
  const text::Document doc = MakeDoc();
  voice::VoiceDocument vdoc = MakeVoice(doc);
  auto restored = DecodeVoiceDocument(EncodeVoiceDocument(vdoc));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->pcm().samples(), vdoc.pcm().samples());
  EXPECT_EQ(restored->pcm().sample_rate(), vdoc.pcm().sample_rate());
  ASSERT_EQ(restored->track().words.size(), vdoc.track().words.size());
  EXPECT_EQ(restored->track().words[3].word, vdoc.track().words[3].word);
  EXPECT_EQ(restored->track().silences.size(),
            vdoc.track().silences.size());
  EXPECT_EQ(
      restored->Components(text::LogicalUnit::kParagraph).size(),
      vdoc.Components(text::LogicalUnit::kParagraph).size());
}

TEST(PartCodecTest, AttributesRoundTrip) {
  AttributeMap attrs{{"a", "1"}, {"b", "two"}};
  auto restored = DecodeAttributes(EncodeAttributes(attrs));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, attrs);
}

TEST(MultimediaObjectTest, StartsInEditingState) {
  MultimediaObject obj(1);
  EXPECT_EQ(obj.state(), ObjectState::kEditing);
  EXPECT_EQ(obj.id(), 1u);
}

TEST(MultimediaObjectTest, AttributesReadableAndMissing) {
  MultimediaObject obj = MakeFullObject();
  auto v = obj.GetAttribute("patient");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "John Doe");
  EXPECT_TRUE(obj.GetAttribute("age").status().IsNotFound());
}

TEST(MultimediaObjectTest, ArchivedObjectRejectsModification) {
  MultimediaObject obj = MakeFullObject();
  ASSERT_TRUE(obj.Archive().ok());
  EXPECT_EQ(obj.state(), ObjectState::kArchived);
  EXPECT_TRUE(obj.SetAttribute("x", "y").IsFailedPrecondition());
  EXPECT_TRUE(obj.SetTextPart(MakeDoc()).IsFailedPrecondition());
  EXPECT_TRUE(obj.AddImage(MakeXray()).status().IsFailedPrecondition());
  EXPECT_TRUE(obj.Archive().IsFailedPrecondition());  // Double archive.
}

TEST(MultimediaObjectTest, ValidationCatchesMissingImage) {
  MultimediaObject obj = MakeFullObject();
  obj.descriptor().pages[0].images.push_back({9, image::Rect{}});
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationCatchesBadTextAnchor) {
  MultimediaObject obj = MakeFullObject();
  VoiceLogicalMessage m;
  m.transcript = "note";
  m.text_anchor = TextAnchor{0, 100000};
  obj.descriptor().voice_messages.push_back(m);
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationCatchesBadVoiceAnchor) {
  MultimediaObject obj = MakeFullObject();
  VisualLogicalMessage m;
  m.voice_anchors.push_back(VoiceAnchor{0, 1ULL << 60});
  obj.descriptor().visual_messages.push_back(m);
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationCatchesBadTransparencySet) {
  MultimediaObject obj = MakeFullObject();
  obj.descriptor().transparency_sets.push_back(
      {0, 1, TransparencyDisplay::kStacked});
  // Page 0 is kNormal, not a transparency.
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationCatchesBadProcessRange) {
  MultimediaObject obj = MakeFullObject();
  ProcessSimulationSpec sim;
  sim.first_page = 0;
  sim.count = 99;
  obj.descriptor().process_simulations.push_back(sim);
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationAudioModeNeedsVoice) {
  MultimediaObject obj(5);
  text::Document doc = MakeDoc();
  ASSERT_TRUE(obj.SetTextPart(std::move(doc)).ok());
  obj.descriptor().driving_mode = DrivingMode::kAudio;
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, ValidationCatchesBadTour) {
  MultimediaObject obj = MakeFullObject();
  ObjectDescriptor::TourSpec tour;
  tour.image_index = 7;
  obj.descriptor().tours.push_back(tour);
  EXPECT_TRUE(obj.Archive().IsInvalidArgument());
}

TEST(MultimediaObjectTest, SerializeRequiresArchivedState) {
  MultimediaObject obj = MakeFullObject();
  EXPECT_TRUE(obj.SerializeArchived().status().IsFailedPrecondition());
}

TEST(MultimediaObjectTest, ArchivalRoundTrip) {
  MultimediaObject obj = MakeFullObject();
  ASSERT_TRUE(obj.Archive().ok());
  auto bytes = obj.SerializeArchived();
  ASSERT_TRUE(bytes.ok());
  auto restored = MultimediaObject::DeserializeArchived(42, *bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->state(), ObjectState::kArchived);
  EXPECT_EQ(restored->id(), 42u);
  EXPECT_EQ(restored->attributes().size(), 2u);
  ASSERT_TRUE(restored->has_text());
  EXPECT_EQ(restored->text_part().contents(), obj.text_part().contents());
  ASSERT_TRUE(restored->has_voice());
  EXPECT_EQ(restored->voice_part().pcm().size(),
            obj.voice_part().pcm().size());
  ASSERT_EQ(restored->images().size(), 1u);
  EXPECT_EQ(restored->images()[0].Render().Digest(),
            obj.images()[0].Render().Digest());
  EXPECT_EQ(restored->descriptor().pages.size(), 1u);
}

TEST(MultimediaObjectTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(MultimediaObject::DeserializeArchived(1, "garbage").ok());
  EXPECT_FALSE(MultimediaObject::DeserializeArchived(1, "").ok());
}

}  // namespace
}  // namespace minos::object
