#include "minos/format/archive_mailer.h"

#include <gtest/gtest.h>

#include "minos/object/part_codec.h"
#include "minos/text/markup.h"
#include "minos/util/coding.h"

namespace minos::format {
namespace {

using object::MultimediaObject;
using storage::ArchiveAddress;

class ArchiveMailerTest : public ::testing::Test {
 protected:
  ArchiveMailerTest()
      : device_("optical", 8192, 64, storage::DeviceCostModel::Instant(),
                /*write_once=*/true, &clock_),
        cache_(64),
        archiver_(&device_, &cache_),
        mailer_(&archiver_, &versions_, &clock_) {}

  MultimediaObject MakeObject(storage::ObjectId id,
                              const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    image::Bitmap bm(32, 32);
    bm.FillRect(image::Rect{4, 4, 10, 10}, 222);
    EXPECT_TRUE(
        obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
    object::VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  ArchiveMailer mailer_;
};

TEST_F(ArchiveMailerTest, ArchiveAndFetchRoundTrip) {
  MultimediaObject obj = MakeObject(1, "hello archival world");
  auto addr = mailer_.ArchiveObject(obj);
  ASSERT_TRUE(addr.ok());
  auto fetched = mailer_.FetchObject(1);
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched->text_part().contents(), obj.text_part().contents());
  EXPECT_EQ(fetched->images().size(), 1u);
}

TEST_F(ArchiveMailerTest, VersionsRecorded) {
  MultimediaObject v1 = MakeObject(1, "first version");
  MultimediaObject v2 = MakeObject(1, "second version");
  ASSERT_TRUE(mailer_.ArchiveObject(v1).ok());
  clock_.Advance(1000);
  ASSERT_TRUE(mailer_.ArchiveObject(v2).ok());
  auto history = versions_.History(1);
  ASSERT_TRUE(history.ok());
  EXPECT_EQ(history->size(), 2u);
  auto fetched = mailer_.FetchObject(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("second"),
            std::string::npos);
}

TEST_F(ArchiveMailerTest, FetchUnknownObject) {
  EXPECT_TRUE(mailer_.FetchObject(99).status().IsNotFound());
}

TEST_F(ArchiveMailerTest, MailInsideReturnsRawBytes) {
  MultimediaObject obj = MakeObject(1, "mail me");
  ASSERT_TRUE(mailer_.ArchiveObject(obj).ok());
  auto bytes = mailer_.MailInside(1);
  ASSERT_TRUE(bytes.ok());
  auto decoded = MultimediaObject::DeserializeArchived(1, *bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_text());
}

TEST_F(ArchiveMailerTest, SharedPartsAvoidDuplication) {
  // Archive a standalone x-ray payload first (the shared data).
  MultimediaObject base = MakeObject(1, "object with the shared x-ray");
  const std::string image_payload = base.images()[0].Serialize();
  auto image_addr = archiver_.Append(image_payload);
  ASSERT_TRUE(image_addr.ok());
  ASSERT_TRUE(archiver_.Flush().ok());

  auto with_refs = mailer_.SerializeWithArchiverRefs(
      base, {{"image:0", *image_addr}});
  ASSERT_TRUE(with_refs.ok());
  auto full = base.SerializeArchived();
  ASSERT_TRUE(full.ok());
  // The referencing form is smaller: it omits the image payload.
  EXPECT_LT(with_refs->size() + image_payload.size() / 2, full->size());
}

TEST_F(ArchiveMailerTest, ObjectWithRefsCannotDecodeDirectly) {
  MultimediaObject base = MakeObject(1, "dedup target");
  auto image_addr = archiver_.Append(base.images()[0].Serialize());
  ASSERT_TRUE(image_addr.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  auto with_refs =
      mailer_.SerializeWithArchiverRefs(base, {{"image:0", *image_addr}});
  ASSERT_TRUE(with_refs.ok());
  EXPECT_TRUE(MultimediaObject::DeserializeArchived(1, *with_refs)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(ArchiveMailerTest, MailOutsideResolvesPointers) {
  MultimediaObject base = MakeObject(1, "dedup then mail outside");
  auto image_addr = archiver_.Append(base.images()[0].Serialize());
  ASSERT_TRUE(image_addr.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  auto with_refs =
      mailer_.SerializeWithArchiverRefs(base, {{"image:0", *image_addr}});
  ASSERT_TRUE(with_refs.ok());
  ASSERT_TRUE(mailer_.ArchiveBytes(2, *with_refs).ok());

  auto mailed = mailer_.MailOutside(2);
  ASSERT_TRUE(mailed.ok());
  // The mailed form is self-contained: decodes without the archiver.
  auto decoded = MultimediaObject::DeserializeArchived(2, *mailed);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->images().size(), 1u);
  EXPECT_EQ(decoded->images()[0].Render().Digest(),
            base.images()[0].Render().Digest());
}

TEST_F(ArchiveMailerTest, FetchObjectResolvesPointersToo) {
  MultimediaObject base = MakeObject(1, "server side resolution");
  auto image_addr = archiver_.Append(base.images()[0].Serialize());
  ASSERT_TRUE(image_addr.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  auto with_refs =
      mailer_.SerializeWithArchiverRefs(base, {{"image:0", *image_addr}});
  ASSERT_TRUE(with_refs.ok());
  ASSERT_TRUE(mailer_.ArchiveBytes(3, *with_refs).ok());
  auto fetched = mailer_.FetchObject(3);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->images().size(), 1u);
}

TEST_F(ArchiveMailerTest, ResolveIsIdempotentOnSelfContainedBytes) {
  MultimediaObject obj = MakeObject(1, "already resolved");
  auto bytes = obj.SerializeArchived();
  ASSERT_TRUE(bytes.ok());
  auto resolved = mailer_.ResolvePointers(*bytes);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(*resolved, *bytes);
}

TEST_F(ArchiveMailerTest, RebasedDescriptorOffsetsAddressTheArchiver) {
  // §4: "In the case that objects are archived the offsets of the
  // descriptor have to be incremented by the offset where the
  // composition file is placed within the archiver." After rebasing, a
  // part pointer dereferences directly in archiver address space.
  MultimediaObject obj = MakeObject(1, "rebased offsets address me");
  auto bytes = obj.SerializeArchived();
  ASSERT_TRUE(bytes.ok());
  auto addr = mailer_.ArchiveBytes(1, *bytes);
  ASSERT_TRUE(addr.ok());

  // Recover the descriptor and the composition payload base.
  Decoder dec(*bytes);
  std::string desc_bytes;
  ASSERT_TRUE(dec.GetLengthPrefixed(&desc_bytes).ok());
  auto desc = object::ObjectDescriptor::Deserialize(desc_bytes);
  ASSERT_TRUE(desc.ok());
  uint64_t data_len = 0;
  for (const object::PartPointer& p : desc->parts) data_len += p.length;
  const uint64_t payload_base = bytes->size() - data_len;

  desc->RebaseCompositionOffsets(addr->offset + payload_base);
  auto text_part = desc->FindPart("text");
  ASSERT_TRUE(text_part.ok());
  std::string payload;
  ASSERT_TRUE(archiver_
                  .ReadRange(text_part->offset, text_part->length, &payload)
                  .ok());
  auto decoded = object::DecodeDocument(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NE(decoded->contents().find("rebased offsets"),
            std::string::npos);
}

TEST_F(ArchiveMailerTest, EditingObjectRejectedBySharedSerializer) {
  MultimediaObject editing(9);
  EXPECT_TRUE(mailer_.SerializeWithArchiverRefs(editing, {})
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace minos::format
