#include "minos/text/formatter.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"

namespace minos::text {
namespace {

Document ParseOrDie(std::string_view markup) {
  MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return std::move(doc).value();
}

std::string LongMarkup(int paragraphs) {
  std::string m = ".TITLE Long Document\n";
  for (int i = 0; i < paragraphs; ++i) {
    m += ".PP\n";
    for (int s = 0; s < 4; ++s) {
      m += "Paragraph " + std::to_string(i) +
           " sentence about multimedia objects and browsing. ";
    }
    m += "\n";
  }
  return m;
}

TEST(FormatterTest, RejectsDegenerateLayout) {
  Document doc = ParseOrDie(".PP\nhello world\n");
  PageLayout tiny;
  tiny.width = 4;
  TextFormatter formatter(tiny);
  EXPECT_TRUE(formatter.Paginate(doc).status().IsInvalidArgument());
}

TEST(FormatterTest, EmptyDocumentYieldsOneBlankPage) {
  Document doc;
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  ASSERT_EQ(pages->size(), 1u);
  EXPECT_EQ((*pages)[0].number, 1);
}

TEST(FormatterTest, LinesRespectWidth) {
  Document doc = ParseOrDie(LongMarkup(5));
  PageLayout layout;
  layout.width = 40;
  layout.height = 12;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  for (const TextPage& page : *pages) {
    for (const std::string& line : page.lines) {
      EXPECT_LE(static_cast<int>(line.size()), layout.width);
    }
  }
}

TEST(FormatterTest, PagesHaveExactHeight) {
  Document doc = ParseOrDie(LongMarkup(5));
  PageLayout layout;
  layout.height = 10;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  for (const TextPage& page : *pages) {
    EXPECT_EQ(static_cast<int>(page.lines.size()), layout.height);
  }
}

TEST(FormatterTest, PageNumbersSequential) {
  Document doc = ParseOrDie(LongMarkup(10));
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  for (size_t i = 0; i < pages->size(); ++i) {
    EXPECT_EQ((*pages)[i].number, static_cast<int>(i) + 1);
  }
}

TEST(FormatterTest, PageSpansAreMonotonic) {
  Document doc = ParseOrDie(LongMarkup(10));
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  ASSERT_GT(pages->size(), 1u);
  for (size_t i = 1; i < pages->size(); ++i) {
    EXPECT_GE((*pages)[i].span.begin, (*pages)[i - 1].span.end -
              1);  // Allow the boundary word to touch.
    EXPECT_LE((*pages)[i - 1].span.begin, (*pages)[i].span.begin);
  }
}

TEST(FormatterTest, AllWordsAppearExactlyOnce) {
  Document doc = ParseOrDie(LongMarkup(6));
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  std::string all;
  for (const TextPage& p : *pages) {
    for (const std::string& line : p.lines) {
      all += line;
      all += ' ';
    }
  }
  // Every word of the source document must appear in the output.
  for (const LogicalComponent& w : doc.Components(LogicalUnit::kWord)) {
    const std::string word =
        doc.contents().substr(w.span.begin, w.span.length());
    EXPECT_NE(all.find(word), std::string::npos) << word;
  }
}

TEST(FormatterTest, ChapterStartsNewPage) {
  Document doc = ParseOrDie(
      ".CHAPTER One\n.PP\nalpha beta\n.CHAPTER Two\n.PP\ngamma delta\n");
  PageLayout layout;
  layout.chapter_starts_page = true;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 2u);
}

TEST(FormatterTest, ChapterInlineWhenDisabled) {
  Document doc = ParseOrDie(
      ".CHAPTER One\n.PP\nalpha beta\n.CHAPTER Two\n.PP\ngamma delta\n");
  PageLayout layout;
  layout.chapter_starts_page = false;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 1u);
}

TEST(FormatterTest, ChapterHeaderUppercased) {
  Document doc = ParseOrDie(".CHAPTER Introduction\n.PP\nbody\n");
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  bool found = false;
  for (const std::string& line : (*pages)[0].lines) {
    if (line.find("INTRODUCTION") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FormatterTest, ParagraphIndentApplied) {
  Document doc = ParseOrDie(".PP\nindented paragraph text\n");
  PageLayout layout;
  layout.paragraph_indent = 4;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  // Find the first non-empty line; it must start with 4 spaces.
  for (const std::string& line : (*pages)[0].lines) {
    if (!line.empty()) {
      EXPECT_EQ(line.substr(0, 4), "    ");
      break;
    }
  }
}

TEST(FormatterTest, StylesLandOnBoldWord) {
  Document doc = ParseOrDie(".PP\nplain *bold* plain\n");
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  ASSERT_FALSE((*pages)[0].styles.empty());
  const StyledRun& run = (*pages)[0].styles[0];
  EXPECT_EQ(run.kind, Emphasis::kBold);
  const std::string& line = (*pages)[0].lines[static_cast<size_t>(run.line)];
  EXPECT_EQ(line.substr(static_cast<size_t>(run.col_begin),
                        static_cast<size_t>(run.col_end - run.col_begin)),
            "bold");
}

TEST(FormatterTest, DeterministicOutput) {
  Document doc = ParseOrDie(LongMarkup(8));
  TextFormatter formatter(PageLayout{});
  auto a = formatter.Paginate(doc);
  auto b = formatter.Paginate(doc);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].lines, (*b)[i].lines);
  }
}

TEST(FormatterTest, PageMapFindsPageForEveryWord) {
  Document doc = ParseOrDie(LongMarkup(6));
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  PageMap map(*pages);
  EXPECT_EQ(map.page_count(), static_cast<int>(pages->size()));
  for (const LogicalComponent& w : doc.Components(LogicalUnit::kWord)) {
    const int page = map.PageForOffset(w.span.begin);
    ASSERT_GE(page, 1);
    ASSERT_LE(page, map.page_count());
    // The word's offset must fall at or before the page's end.
    EXPECT_LE(w.span.begin,
              (*pages)[static_cast<size_t>(page - 1)].span.end);
  }
}

TEST(FormatterTest, PageMapClampsPastEnd) {
  Document doc = ParseOrDie(LongMarkup(3));
  TextFormatter formatter(PageLayout{});
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  PageMap map(*pages);
  EXPECT_EQ(map.PageForOffset(doc.size() + 1000), map.page_count());
}

TEST(FormatterTest, EmptyPageMap) {
  PageMap map;
  EXPECT_EQ(map.PageForOffset(0), 0);
  EXPECT_EQ(map.page_count(), 0);
}

TEST(FormatterTest, LowerHalfLayout) {
  PageLayout layout;
  layout.height = 20;
  EXPECT_EQ(layout.LowerHalf().height, 10);
  EXPECT_EQ(layout.LowerHalf().width, layout.width);
}

// Parameterized sweep: pagination invariants hold across layouts.
class FormatterLayoutSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FormatterLayoutSweep, InvariantsHold) {
  const auto [width, height] = GetParam();
  Document doc = ParseOrDie(LongMarkup(6));
  PageLayout layout;
  layout.width = width;
  layout.height = height;
  TextFormatter formatter(layout);
  auto pages = formatter.Paginate(doc);
  ASSERT_TRUE(pages.ok());
  EXPECT_GE(pages->size(), 1u);
  size_t covered = 0;
  for (const TextPage& page : *pages) {
    EXPECT_EQ(static_cast<int>(page.lines.size()), height);
    for (const std::string& line : page.lines) {
      EXPECT_LE(static_cast<int>(line.size()), width);
    }
    covered += page.span.length();
  }
  EXPECT_GT(covered, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, FormatterLayoutSweep,
    ::testing::Values(std::make_pair(24, 5), std::make_pair(40, 10),
                      std::make_pair(64, 20), std::make_pair(80, 40),
                      std::make_pair(100, 8), std::make_pair(12, 3)));

}  // namespace
}  // namespace minos::text
