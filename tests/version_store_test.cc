#include "minos/storage/version_store.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

TEST(VersionStoreTest, RecordAssignsIncreasingVersions) {
  VersionStore store;
  EXPECT_EQ(store.Record(7, ArchiveAddress{0, 10}, 100), 1u);
  EXPECT_EQ(store.Record(7, ArchiveAddress{10, 20}, 200), 2u);
  EXPECT_EQ(store.Record(8, ArchiveAddress{30, 5}, 300), 1u);
  EXPECT_EQ(store.object_count(), 2u);
}

TEST(VersionStoreTest, CurrentReturnsLatest) {
  VersionStore store;
  store.Record(7, ArchiveAddress{0, 10}, 100);
  store.Record(7, ArchiveAddress{10, 20}, 200);
  auto v = store.Current(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->version, 2u);
  EXPECT_EQ(v->address, (ArchiveAddress{10, 20}));
  EXPECT_EQ(v->archived_at, 200);
}

TEST(VersionStoreTest, GetSpecificVersion) {
  VersionStore store;
  store.Record(7, ArchiveAddress{0, 10}, 100);
  store.Record(7, ArchiveAddress{10, 20}, 200);
  auto v1 = store.Get(7, 1);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->address, (ArchiveAddress{0, 10}));
  EXPECT_TRUE(store.Get(7, 0).status().IsNotFound());
  EXPECT_TRUE(store.Get(7, 3).status().IsNotFound());
  EXPECT_TRUE(store.Get(9, 1).status().IsNotFound());
}

TEST(VersionStoreTest, HistoryOldestFirst) {
  VersionStore store;
  store.Record(7, ArchiveAddress{0, 10}, 100);
  store.Record(7, ArchiveAddress{10, 20}, 200);
  store.Record(7, ArchiveAddress{30, 40}, 300);
  auto h = store.History(7);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->size(), 3u);
  EXPECT_EQ((*h)[0].version, 1u);
  EXPECT_EQ((*h)[2].version, 3u);
  EXPECT_LT((*h)[0].archived_at, (*h)[2].archived_at);
}

TEST(VersionStoreTest, UnknownObjectNotFound) {
  VersionStore store;
  EXPECT_TRUE(store.Current(42).status().IsNotFound());
  EXPECT_TRUE(store.History(42).status().IsNotFound());
}

}  // namespace
}  // namespace minos::storage
