// Tests for the §2/§4/§5 extension features: editing-state previews,
// spoken-pattern recognition at browse time, text-relevance indicators,
// cross-media GotoTextOffset, and miniature voice previews.

#include <gtest/gtest.h>

#include "minos/core/audio_browser.h"
#include "minos/core/editing_preview.h"
#include "minos/core/presentation_manager.h"
#include "minos/core/visual_browser.h"
#include "minos/server/workstation.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

MultimediaObject EditingObject() {
  MultimediaObject obj(1);
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".TITLE Draft\n.PP\nStill editing this text right now.\n");
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  image::Bitmap bm(60, 40);
  bm.FillRect(image::Rect{10, 10, 20, 20}, 255);
  EXPECT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
  VisualPageSpec text_page;
  text_page.text_page = 1;
  obj.descriptor().pages.push_back(text_page);
  VisualPageSpec image_page;
  image_page.images.push_back({0, image::Rect{0, 0, 60, 40}});
  obj.descriptor().pages.push_back(image_page);
  VisualPageSpec transparency;
  transparency.kind = VisualPageSpec::Kind::kTransparency;
  transparency.images.push_back({0, image::Rect{30, 30, 60, 40}});
  obj.descriptor().pages.push_back(transparency);
  return obj;
}

TEST(EditingPreviewTest, WorksOnEditingStateObjects) {
  MultimediaObject obj = EditingObject();
  ASSERT_EQ(obj.state(), object::ObjectState::kEditing);
  auto preview = RenderEditingPreview(obj, 1, 2);
  ASSERT_TRUE(preview.ok()) << preview.status().ToString();
  EXPECT_EQ(preview->width(), 180);
  EXPECT_EQ(preview->height(), 140);
  // The text page carries ink.
  int ink = 0;
  for (uint8_t v : preview->pixels()) {
    if (v > 0) ++ink;
  }
  EXPECT_GT(ink, 20);
}

TEST(EditingPreviewTest, ComposesTransparencyStack) {
  MultimediaObject obj = EditingObject();
  auto base = RenderEditingPreview(obj, 2, 1);
  auto stacked = RenderEditingPreview(obj, 3, 1);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE(stacked.ok());
  // The transparency page includes the base image plus the overlay.
  EXPECT_NE(base->Digest(), stacked->Digest());
  // Overlay ink: the image's inked square sits at (10,10)-(30,30) within
  // the placement at (30,30), so screen (45,45) is inked by the overlay
  // only.
  EXPECT_GT(stacked->At(45, 45), 0);
  EXPECT_EQ(base->At(45, 45), 0);
}

TEST(EditingPreviewTest, BadArgumentsRejected) {
  MultimediaObject obj = EditingObject();
  EXPECT_TRUE(RenderEditingPreview(obj, 0).status().IsOutOfRange());
  EXPECT_TRUE(RenderEditingPreview(obj, 9).status().IsOutOfRange());
  EXPECT_TRUE(RenderEditingPreview(obj, 1, 0).status().IsInvalidArgument());
}

TEST(EditingPreviewTest, PreviewMatchesArchivedBrowsing) {
  // "The user can use the same browsing within object capabilities as in
  // the object archiver in order to view objects which are in the
  // editing stage." (§4) — previews before and after Archive() agree.
  MultimediaObject obj = EditingObject();
  auto before = RenderEditingPreview(obj, 2, 1);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(obj.Archive().ok());
  auto after = RenderEditingPreview(obj, 2, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->Digest(), after->Digest());
}

class SpokenPatternTest : public ::testing::Test {
 protected:
  SpokenPatternTest() : messages_(&clock_, voice::SpeakerParams{}) {
    text::MarkupParser parser;
    auto doc = parser.Parse(
        ".PP\nThe fracture is visible in the radiograph today. The cast "
        "stays for three weeks.\n");
    EXPECT_TRUE(doc.ok());
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(*doc);
    obj_ = std::make_unique<MultimediaObject>(5);
    obj_->descriptor().driving_mode = object::DrivingMode::kAudio;
    EXPECT_TRUE(
        obj_->SetVoicePart(voice::VoiceDocument(std::move(track).value()))
            .ok());
    EXPECT_TRUE(obj_->Archive().ok());
    auto browser = AudioBrowser::Open(obj_.get(), &screen_, &messages_,
                                      &clock_, &log_);
    EXPECT_TRUE(browser.ok());
    browser_ = std::move(browser).value();
    voice::RecognizerParams perfect;
    perfect.hit_rate = 1.0;
    perfect.false_alarm_rate = 0.0;
    voice::Recognizer indexer({"fracture", "cast"}, perfect);
    browser_->SetRecognitionIndex(voice::Recognizer::BuildIndex(
        indexer.Recognize(obj_->voice_part().track()).utterances));
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<AudioBrowser> browser_;
};

TEST_F(SpokenPatternTest, RecognizedUtteranceBrowses) {
  voice::RecognizerParams perfect;
  perfect.hit_rate = 1.0;
  perfect.false_alarm_rate = 0.0;
  voice::Recognizer ear({"fracture", "cast"}, perfect);
  const Micros before = clock_.Now();
  ASSERT_TRUE(browser_->SpeakPattern(ear, "fracture").ok());
  EXPECT_GT(clock_.Now(), before);  // Speaking the pattern took time.
  EXPECT_EQ(log_.OfKind(EventKind::kPatternFound).size(), 1u);
}

TEST_F(SpokenPatternTest, DeafRecognizerReportsNotFound) {
  voice::RecognizerParams deaf;
  deaf.hit_rate = 0.0;
  deaf.false_alarm_rate = 0.0;
  voice::Recognizer ear({"fracture"}, deaf);
  EXPECT_TRUE(browser_->SpeakPattern(ear, "fracture").IsNotFound());
}

TEST_F(SpokenPatternTest, OutOfVocabularyUtteranceNotFound) {
  voice::RecognizerParams perfect;
  perfect.hit_rate = 1.0;
  perfect.false_alarm_rate = 0.0;
  voice::Recognizer ear({"fracture"}, perfect);
  EXPECT_TRUE(browser_->SpeakPattern(ear, "surgery").IsNotFound());
}

TEST(GotoTextOffsetTest, NavigatesToPresentingPage) {
  MultimediaObject obj(1);
  text::MarkupParser parser;
  std::string body;
  for (int i = 0; i < 40; ++i) {
    body += "Filler sentence number " + std::to_string(i) + " here. ";
  }
  auto doc = parser.Parse(".PP\n" + body + "\n");
  obj.descriptor().layout.width = 40;
  obj.descriptor().layout.height = 6;
  ASSERT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  auto formatted = FormatObjectText(obj);
  ASSERT_TRUE(formatted.ok());
  for (size_t i = 0; i < formatted->pages.size(); ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  ASSERT_TRUE(obj.Archive().ok());
  SimClock clock;
  render::Screen screen;
  MessagePlayer messages(&clock, voice::SpeakerParams{});
  EventLog log;
  auto browser =
      VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  const size_t target = obj.text_part().contents().find("number 30");
  ASSERT_TRUE((*browser)->GotoTextOffset(target).ok());
  const text::TextSpan span =
      formatted->pages[static_cast<size_t>(
                           (*browser)->current_page() - 1)]
          .span;
  EXPECT_GE(target + 10, span.begin);
  EXPECT_LE(target, span.end);
}

TEST(TextRelevanceTest, NavigatesAndMarks) {
  // Parent links to a child whose text has a relevance span.
  std::map<storage::ObjectId, MultimediaObject> library;
  {
    MultimediaObject child(20);
    text::MarkupParser parser;
    auto doc = parser.Parse(
        ".PP\nIntro text. The relevant passage sits right here in the "
        "middle. Outro text follows.\n");
    child.descriptor().layout.width = 40;
    child.descriptor().layout.height = 6;
    ASSERT_TRUE(child.SetTextPart(std::move(doc).value()).ok());
    VisualPageSpec page;
    page.text_page = 1;
    child.descriptor().pages.push_back(page);
    ASSERT_TRUE(child.Archive().ok());
    library.emplace(20, std::move(child));
  }
  MultimediaObject parent(10);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nparent body text\n");
  ASSERT_TRUE(parent.SetTextPart(std::move(doc).value()).ok());
  VisualPageSpec page;
  page.text_page = 1;
  parent.descriptor().pages.push_back(page);
  object::RelevantObjectLink link;
  link.target = 20;
  link.indicator_label = "related passage";
  link.parent_text_anchor = object::TextAnchor{0, 6};
  object::Relevance rel;
  const size_t rel_begin =
      library.at(20).text_part().contents().find("relevant passage");
  rel.text_span = object::TextAnchor{rel_begin, rel_begin + 16};
  link.relevances.push_back(rel);
  parent.descriptor().relevant_objects.push_back(link);
  ASSERT_TRUE(parent.Archive().ok());
  library.emplace(10, std::move(parent));

  SimClock clock;
  render::Screen screen;
  PresentationManager pm(&screen, &clock);
  pm.SetResolver([&library](storage::ObjectId id)
                     -> StatusOr<MultimediaObject> {
    auto it = library.find(id);
    if (it == library.end()) return Status::NotFound("none");
    return it->second;
  });
  ASSERT_TRUE(pm.Open(10).ok());
  ASSERT_TRUE(pm.EnterRelevantObject(0).ok());
  const auto relevances = pm.CurrentRelevances();
  ASSERT_EQ(relevances.size(), 1u);
  ASSERT_TRUE(pm.ShowTextRelevance(relevances[0]).ok());
  const auto marks = pm.log().OfKind(EventKind::kLabelShown);
  ASSERT_EQ(marks.size(), 1u);
  EXPECT_EQ(marks[0].detail, "text-relevance");
  // The root object (no link) has no relevances to show.
  ASSERT_TRUE(pm.ReturnFromRelevantObject().ok());
  EXPECT_TRUE(pm.CurrentRelevances().empty());
}

TEST(MiniatureVoicePreviewTest, AudioCardsPlayWhilePassing) {
  server::MiniatureCard visual_card;
  visual_card.id = 1;
  visual_card.audio_mode = false;
  server::MiniatureCard audio_card;
  audio_card.id = 2;
  audio_card.audio_mode = true;
  audio_card.preview_transcript = "spoken preview words";
  server::MiniatureBrowser browser({visual_card, audio_card, visual_card});

  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  EventLog log;
  browser.AttachPlayer(&player, &log);

  ASSERT_TRUE(browser.Next().ok());  // Onto the audio card: plays.
  EXPECT_EQ(log.OfKind(EventKind::kVoicePlayed).size(), 1u);
  EXPECT_GT(clock.Now(), 0);
  ASSERT_TRUE(browser.Next().ok());  // Visual card: silent.
  EXPECT_EQ(log.OfKind(EventKind::kVoicePlayed).size(), 1u);
  ASSERT_TRUE(browser.Previous().ok());  // Back over the audio card.
  EXPECT_EQ(log.OfKind(EventKind::kVoicePlayed).size(), 2u);
}

}  // namespace
}  // namespace minos::core
