#include "minos/storage/archiver.h"

#include <gtest/gtest.h>

namespace minos::storage {
namespace {

class ArchiverTest : public ::testing::Test {
 protected:
  ArchiverTest()
      : device_("optical", 1024, 32, DeviceCostModel::Instant(),
                /*write_once=*/true, &clock_),
        cache_(16),
        archiver_(&device_, &cache_) {}

  SimClock clock_;
  BlockDevice device_;
  BlockCache cache_;
  Archiver archiver_;
};

TEST_F(ArchiverTest, AppendAssignsSequentialAddresses) {
  auto a = archiver_.Append("hello");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->offset, 0u);
  EXPECT_EQ(a->length, 5u);
  auto b = archiver_.Append("world!");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->offset, 5u);
  EXPECT_EQ(b->length, 6u);
  EXPECT_EQ(archiver_.size(), 11u);
}

TEST_F(ArchiverTest, ReadBackBeforeFlush) {
  auto a = archiver_.Append("unflushed tail data");
  ASSERT_TRUE(a.ok());
  std::string out;
  ASSERT_TRUE(archiver_.Read(*a, &out).ok());
  EXPECT_EQ(out, "unflushed tail data");
}

TEST_F(ArchiverTest, ReadBackAfterFlush) {
  auto a = archiver_.Append("persisted");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  std::string out;
  ASSERT_TRUE(archiver_.Read(*a, &out).ok());
  EXPECT_EQ(out, "persisted");
}

TEST_F(ArchiverTest, LargeAppendSpansBlocks) {
  const std::string big(200, 'z');  // > 6 blocks of 32.
  auto a = archiver_.Append(big);
  ASSERT_TRUE(a.ok());
  std::string out;
  ASSERT_TRUE(archiver_.Read(*a, &out).ok());
  EXPECT_EQ(out, big);
  EXPECT_GT(device_.blocks_used(), 5u);
}

TEST_F(ArchiverTest, ReadRangeWithinAppend) {
  const std::string payload = "0123456789abcdefghijklmnopqrstuvwxyz";
  auto a = archiver_.Append(payload);
  ASSERT_TRUE(a.ok());
  std::string out;
  ASSERT_TRUE(archiver_.ReadRange(10, 6, &out).ok());
  EXPECT_EQ(out, "abcdef");
}

TEST_F(ArchiverTest, ReadPastEndRejected) {
  archiver_.Append("short");
  std::string out;
  EXPECT_TRUE(archiver_.ReadRange(0, 100, &out).IsOutOfRange());
}

TEST_F(ArchiverTest, EmptyReadIsOk) {
  std::string out = "junk";
  ASSERT_TRUE(archiver_.ReadRange(0, 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(ArchiverTest, FlushAlignsNextAppendToBlock) {
  auto a = archiver_.Append("x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  auto b = archiver_.Append("y");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->offset % 32, 0u);  // Starts on a fresh WORM block.
  std::string out;
  ASSERT_TRUE(archiver_.Read(*b, &out).ok());
  EXPECT_EQ(out, "y");
}

TEST_F(ArchiverTest, DoubleFlushIsIdempotent) {
  archiver_.Append("data");
  ASSERT_TRUE(archiver_.Flush().ok());
  ASSERT_TRUE(archiver_.Flush().ok());  // No tail: no-op.
}

TEST_F(ArchiverTest, CacheAvoidsDeviceReads) {
  const std::string payload(64, 'q');  // Exactly 2 blocks.
  auto a = archiver_.Append(payload);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(archiver_.Flush().ok());
  device_.ResetStats();
  std::string out;
  // Blocks were cached at write time; reads should hit the cache.
  ASSERT_TRUE(archiver_.Read(*a, &out).ok());
  EXPECT_EQ(device_.stats().reads, 0u);
  EXPECT_EQ(out.substr(0, 64), payload);
}

TEST_F(ArchiverTest, WorksWithoutCache) {
  SimClock clock;
  BlockDevice dev("d", 64, 32, DeviceCostModel::Instant(), true, &clock);
  Archiver archiver(&dev, nullptr);
  auto a = archiver.Append("no cache here");
  ASSERT_TRUE(a.ok());
  std::string out;
  ASSERT_TRUE(archiver.Read(*a, &out).ok());
  EXPECT_EQ(out, "no cache here");
}

TEST_F(ArchiverTest, ManySmallAppendsRoundTrip) {
  std::vector<ArchiveAddress> addrs;
  for (int i = 0; i < 50; ++i) {
    auto a = archiver_.Append("item-" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  for (int i = 0; i < 50; ++i) {
    std::string out;
    ASSERT_TRUE(archiver_.Read(addrs[static_cast<size_t>(i)], &out).ok());
    EXPECT_EQ(out, "item-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace minos::storage
