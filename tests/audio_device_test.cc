#include "minos/audio/audio_device.h"

#include <gtest/gtest.h>

namespace minos::audio {
namespace {

voice::PcmBuffer OneSecondBuffer() {
  voice::PcmBuffer pcm(8000);
  pcm.AppendConstant(8000, 1000);
  return pcm;
}

TEST(AudioDeviceTest, PlayWithoutLoadFails) {
  SimClock clock;
  AudioDevice device(&clock);
  EXPECT_TRUE(device.PlayToEnd().IsFailedPrecondition());
  EXPECT_TRUE(device.Resume().IsFailedPrecondition());
  EXPECT_TRUE(device.Seek(0).IsFailedPrecondition());
}

TEST(AudioDeviceTest, PlayToEndAdvancesClockByDuration) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  ASSERT_TRUE(device.PlayToEnd().ok());
  EXPECT_EQ(clock.Now(), SecondsToMicros(1));
  EXPECT_EQ(device.position(), pcm.size());
  EXPECT_FALSE(device.playing());
}

TEST(AudioDeviceTest, PlayForPartial) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  auto played = device.PlayFor(MillisToMicros(250));
  ASSERT_TRUE(played.ok());
  EXPECT_EQ(*played, 2000u);
  EXPECT_EQ(device.position(), 2000u);
  EXPECT_EQ(clock.Now(), MillisToMicros(250));
}

TEST(AudioDeviceTest, PlayForPastEndClamps) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  auto played = device.PlayFor(SecondsToMicros(10));
  ASSERT_TRUE(played.ok());
  EXPECT_EQ(*played, 8000u);
  EXPECT_EQ(clock.Now(), SecondsToMicros(1));
}

TEST(AudioDeviceTest, NegativeDurationRejected) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  EXPECT_TRUE(device.PlayFor(-1).status().IsInvalidArgument());
}

TEST(AudioDeviceTest, SeekClampsToBuffer) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  ASSERT_TRUE(device.Seek(4000).ok());
  EXPECT_EQ(device.position(), 4000u);
  ASSERT_TRUE(device.Seek(100000).ok());
  EXPECT_EQ(device.position(), pcm.size());
}

TEST(AudioDeviceTest, PlayFromSeeksThenPlays) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  ASSERT_TRUE(device.PlayFrom(4000).ok());
  EXPECT_EQ(clock.Now(), MillisToMicros(500));
  EXPECT_EQ(device.total_play_time(), MillisToMicros(500));
}

TEST(AudioDeviceTest, ResumeContinuesFromPosition) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  ASSERT_TRUE(device.PlayFor(MillisToMicros(300)).ok());
  ASSERT_TRUE(device.Resume().ok());
  EXPECT_EQ(device.position(), pcm.size());
  EXPECT_EQ(device.total_play_time(), SecondsToMicros(1));
}

TEST(AudioDeviceTest, EventTimelineRecorded) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  device.PlayFor(MillisToMicros(100));
  device.Seek(0);
  device.PlayToEnd();
  const auto& events = device.events();
  ASSERT_GE(events.size(), 5u);
  EXPECT_EQ(events[0].kind, PlaybackEvent::Kind::kStart);
  EXPECT_EQ(events[1].kind, PlaybackEvent::Kind::kInterrupt);
  EXPECT_EQ(events[2].kind, PlaybackEvent::Kind::kSeek);
  EXPECT_EQ(events.back().kind, PlaybackEvent::Kind::kFinish);
  // Events are time-ordered.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].at, events[i - 1].at);
  }
}

TEST(AudioDeviceTest, LoadResetsState) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  device.PlayFor(MillisToMicros(100));
  device.Load(&pcm);
  EXPECT_EQ(device.position(), 0u);
  EXPECT_TRUE(device.events().empty());
  EXPECT_EQ(device.total_play_time(), 0);
}

TEST(AudioDeviceTest, InterruptWhenIdleIsNoOp) {
  SimClock clock;
  AudioDevice device(&clock);
  const voice::PcmBuffer pcm = OneSecondBuffer();
  device.Load(&pcm);
  device.Interrupt();
  EXPECT_TRUE(device.events().empty());
}

}  // namespace
}  // namespace minos::audio
