#include "minos/core/page_compositor.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"

namespace minos::core {
namespace {

using image::Bitmap;
using image::Rect;
using object::MultimediaObject;
using object::VisualPageSpec;

std::string Body(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "Sentence number " + std::to_string(i) + " about the system. ";
  }
  return out;
}

MultimediaObject ThreePageObject() {
  MultimediaObject obj(1);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + Body(60) + "\n");
  EXPECT_TRUE(doc.ok());
  obj.descriptor().layout.width = 40;
  obj.descriptor().layout.height = 10;
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  // One image: a dark square.
  image::Bitmap bm(30, 30);
  bm.FillRect(Rect{0, 0, 30, 30}, 200);
  EXPECT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
  return obj;
}

int Inked(const Bitmap& bm, const Rect& r) {
  int count = 0;
  for (int y = r.y; y < r.y + r.h; ++y) {
    for (int x = r.x; x < r.x + r.w; ++x) {
      if (bm.At(x, y) > 0) ++count;
    }
  }
  return count;
}

TEST(FormatObjectTextTest, FormatsWithDescriptorLayout) {
  MultimediaObject obj = ThreePageObject();
  auto formatted = FormatObjectText(obj);
  ASSERT_TRUE(formatted.ok());
  EXPECT_GT(formatted->pages.size(), 1u);
  EXPECT_EQ(static_cast<int>(formatted->pages[0].lines.size()), 10);
}

TEST(FormatObjectTextTest, NoTextYieldsNoPages) {
  MultimediaObject obj(2);
  auto formatted = FormatObjectText(obj);
  ASSERT_TRUE(formatted.ok());
  EXPECT_TRUE(formatted->pages.empty());
}

class CompositorTest : public ::testing::Test {
 protected:
  CompositorTest() : obj_(ThreePageObject()), compositor_(&screen_) {
    // Page 0: text page 1. Page 1: image page. Page 2: transparency with
    // the image. Page 3: overwrite with the image.
    VisualPageSpec text_page;
    text_page.text_page = 1;
    obj_.descriptor().pages.push_back(text_page);
    VisualPageSpec image_page;
    image_page.images.push_back({0, Rect{10, 10, 30, 30}});
    obj_.descriptor().pages.push_back(image_page);
    VisualPageSpec transparency;
    transparency.kind = VisualPageSpec::Kind::kTransparency;
    transparency.images.push_back({0, Rect{25, 25, 30, 30}});
    obj_.descriptor().pages.push_back(transparency);
    VisualPageSpec overwrite;
    overwrite.kind = VisualPageSpec::Kind::kOverwrite;
    overwrite.images.push_back({0, Rect{0, 0, 30, 30}});
    obj_.descriptor().pages.push_back(overwrite);
    EXPECT_TRUE(obj_.Archive().ok());
    auto formatted = FormatObjectText(obj_);
    EXPECT_TRUE(formatted.ok());
    formatted_ = std::move(formatted).value();
  }

  render::Screen screen_;
  MultimediaObject obj_;
  PageCompositor compositor_;
  FormattedText formatted_;
};

TEST_F(CompositorTest, NormalPageClearsAndDrawsText) {
  screen_.framebuffer();  // Silence unused warnings in some builds.
  const Rect region = screen_.PageArea();
  // Pre-ink the region to prove the clear.
  screen_.DrawText(5, 5, "leftover junk");
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 0, region).ok());
  EXPECT_GT(Inked(screen_.framebuffer(), region), 100);
}

TEST_F(CompositorTest, ImagePagePlacesImage) {
  const Rect region = screen_.PageArea();
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 1, region).ok());
  EXPECT_EQ(screen_.framebuffer().At(region.x + 15, region.y + 15), 200);
  EXPECT_EQ(screen_.framebuffer().At(region.x + 5, region.y + 5), 0);
}

TEST_F(CompositorTest, TransparencyLaysOverPreviousPage) {
  const Rect region = screen_.PageArea();
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 1, region).ok());
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 2, region).ok());
  // Both the original image (10..39) and the overlay (25..54) show.
  EXPECT_EQ(screen_.framebuffer().At(region.x + 15, region.y + 15), 200);
  EXPECT_EQ(screen_.framebuffer().At(region.x + 50, region.y + 50), 200);
}

TEST_F(CompositorTest, OverwriteReplacesOnlyInkedPixels) {
  const Rect region = screen_.PageArea();
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 1, region).ok());
  const uint8_t before =
      screen_.framebuffer().At(region.x + 35, region.y + 35);
  ASSERT_TRUE(compositor_.ComposePage(obj_, formatted_, 3, region).ok());
  // Overwrite image covers (0,0)-(29,29): replaces there...
  EXPECT_EQ(screen_.framebuffer().At(region.x + 5, region.y + 5), 200);
  // ...but leaves pixels outside its ink intact.
  EXPECT_EQ(screen_.framebuffer().At(region.x + 35, region.y + 35), before);
}

TEST_F(CompositorTest, OutOfRangePageRejected) {
  EXPECT_TRUE(compositor_
                  .ComposePage(obj_, formatted_, 99, screen_.PageArea())
                  .IsOutOfRange());
}

TEST_F(CompositorTest, ZeroPlacementFitsRegion) {
  MultimediaObject obj(9);
  image::Bitmap big(1000, 1000);
  big.Fill(123);
  EXPECT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(big))).ok());
  VisualPageSpec page;
  page.images.push_back({0, Rect{}});  // Fit the page area.
  obj.descriptor().pages.push_back(page);
  ASSERT_TRUE(obj.Archive().ok());
  PageCompositor compositor(&screen_);
  FormattedText none;
  const Rect region = screen_.PageArea();
  ASSERT_TRUE(compositor.ComposePage(obj, none, 0, region).ok());
  // Fills exactly the page area, not the menu strip.
  EXPECT_EQ(screen_.framebuffer().At(region.x + region.w - 1,
                                     region.y + region.h - 1),
            123);
  EXPECT_EQ(screen_.framebuffer().At(region.x + region.w + 2, 10), 0);
}

TEST_F(CompositorTest, VisualMessageDrawsTextAndImage) {
  object::VisualLogicalMessage message;
  message.text = "X-RAY OF PATIENT";
  message.image_index = 0;
  const Rect region = screen_.MessageArea();
  ASSERT_TRUE(
      compositor_.ComposeVisualMessage(obj_, message, region).ok());
  EXPECT_GT(Inked(screen_.framebuffer(), region), 50);
}

TEST_F(CompositorTest, VisualMessageBadImageRejected) {
  object::VisualLogicalMessage message;
  message.image_index = 42;
  EXPECT_TRUE(compositor_
                  .ComposeVisualMessage(obj_, message, screen_.MessageArea())
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace minos::core
