#include "minos/voice/audio_pages.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {
namespace {

PcmBuffer MakeSilence(size_t seconds) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(seconds * 8000, 0);
  return pcm;
}

TEST(AudioPagerTest, EmptyBufferNoPages) {
  AudioPager pager;
  EXPECT_TRUE(pager.Paginate(PcmBuffer(8000), {}).empty());
}

TEST(AudioPagerTest, PagesTileTheBuffer) {
  const PcmBuffer pcm = MakeSilence(60);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  params.snap_tolerance = 0.0;
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, {});
  ASSERT_EQ(pages.size(), 6u);
  size_t expected = 0;
  for (const AudioPage& p : pages) {
    EXPECT_EQ(p.samples.begin, expected);
    expected = p.samples.end;
  }
  EXPECT_EQ(expected, pcm.size());
}

TEST(AudioPagerTest, PageNumbersOneBased) {
  const PcmBuffer pcm = MakeSilence(30);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, {});
  for (size_t i = 0; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i].number, static_cast<int>(i) + 1);
  }
}

TEST(AudioPagerTest, ApproximatelyConstantDuration) {
  const PcmBuffer pcm = MakeSilence(100);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(15);
  params.snap_tolerance = 0.0;
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, {});
  for (size_t i = 0; i + 1 < pages.size(); ++i) {
    EXPECT_EQ(pcm.SamplesToMicros(pages[i].samples.length()),
              SecondsToMicros(15));
  }
}

TEST(AudioPagerTest, SnapsToNearbyPause) {
  const PcmBuffer pcm = MakeSilence(20);
  // A pause centered 0.5 s before the nominal 10 s boundary.
  const size_t pause_mid = 8000 * 9 + 4000;
  std::vector<Pause> pauses = {
      Pause{{pause_mid - 400, pause_mid + 400}}};
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  params.snap_tolerance = 0.10;  // 1 s window.
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, pauses);
  ASSERT_GE(pages.size(), 2u);
  EXPECT_EQ(pages[0].samples.end, pause_mid);
}

TEST(AudioPagerTest, DoesNotSnapToFarPause) {
  const PcmBuffer pcm = MakeSilence(20);
  const size_t pause_mid = 8000 * 5;  // 5 s before the boundary.
  std::vector<Pause> pauses = {
      Pause{{pause_mid - 400, pause_mid + 400}}};
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  params.snap_tolerance = 0.10;
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, pauses);
  ASSERT_GE(pages.size(), 2u);
  EXPECT_EQ(pages[0].samples.end, 8000u * 10);
}

TEST(AudioPagerTest, PageForSample) {
  const PcmBuffer pcm = MakeSilence(30);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  params.snap_tolerance = 0.0;
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, {});
  EXPECT_EQ(AudioPager::PageForSample(pages, 0), 1);
  EXPECT_EQ(AudioPager::PageForSample(pages, 8000 * 15), 2);
  EXPECT_EQ(AudioPager::PageForSample(pages, pcm.size() + 100), 3);
  EXPECT_EQ(AudioPager::PageForSample({}, 0), 0);
}

TEST(AudioPagerTest, PageStart) {
  const PcmBuffer pcm = MakeSilence(30);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(10);
  params.snap_tolerance = 0.0;
  AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, {});
  auto start = AudioPager::PageStart(pages, 2);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(*start, 8000u * 10);
  EXPECT_TRUE(AudioPager::PageStart(pages, 0).status().IsNotFound());
  EXPECT_TRUE(AudioPager::PageStart(pages, 4).status().IsNotFound());
}

TEST(AudioPagerTest, RealSpeechPagesCoverEverything) {
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".PP\nSome words spoken for a while in this test. More words "
      "follow. And still more after that.\n");
  ASSERT_TRUE(doc.ok());
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(*doc);
  ASSERT_TRUE(track.ok());
  PauseDetector detector;
  const auto pauses = detector.Detect(track->pcm);
  AudioPagerParams params;
  params.page_duration = SecondsToMicros(2);
  AudioPager pager(params);
  const auto pages = pager.Paginate(track->pcm, pauses);
  ASSERT_FALSE(pages.empty());
  EXPECT_EQ(pages.front().samples.begin, 0u);
  EXPECT_EQ(pages.back().samples.end, track->pcm.size());
  for (size_t i = 1; i < pages.size(); ++i) {
    EXPECT_EQ(pages[i].samples.begin, pages[i - 1].samples.end);
  }
}

}  // namespace
}  // namespace minos::voice
