#include "minos/server/object_server.h"

#include <gtest/gtest.h>

#include "minos/image/miniature.h"
#include "minos/server/workstation.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

class ObjectServerTest : public ::testing::Test {
 protected:
  ObjectServerTest()
      : device_("optical", 65536, 512,
                storage::DeviceCostModel::Instant(), true, &clock_),
        cache_(256),
        archiver_(&device_, &cache_),
        link_(Link::Ethernet(&clock_)),
        server_(&archiver_, &versions_, &clock_, &link_) {}

  MultimediaObject TextObject(storage::ObjectId id,
                              const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
    EXPECT_TRUE(obj.SetAttribute("kind", "memo").ok());
    VisualPageSpec page;
    page.text_page = 1;
    obj.descriptor().pages.push_back(page);
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  MultimediaObject ImageObject(storage::ObjectId id, int w, int h) {
    MultimediaObject obj(id);
    image::Bitmap bm(w, h);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        bm.Set(x, y, static_cast<uint8_t>((x + y) % 251));
      }
    }
    EXPECT_TRUE(
        obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
    VisualPageSpec page;
    page.images.push_back({0, image::Rect{}});
    obj.descriptor().pages.push_back(page);
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  MultimediaObject AudioObject(storage::ObjectId id,
                               const std::string& body) {
    MultimediaObject obj(id);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\n" + body + "\n");
    EXPECT_TRUE(doc.ok());
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(*doc);
    EXPECT_TRUE(track.ok());
    voice::VoiceDocument vdoc(std::move(track).value());
    EXPECT_TRUE(obj.SetVoicePart(std::move(vdoc)).ok());
    obj.descriptor().driving_mode = object::DrivingMode::kAudio;
    EXPECT_TRUE(obj.Archive().ok());
    return obj;
  }

  SimClock clock_;
  storage::BlockDevice device_;
  storage::BlockCache cache_;
  storage::Archiver archiver_;
  storage::VersionStore versions_;
  Link link_;
  ObjectServer server_;
};

TEST_F(ObjectServerTest, StoreAndFetch) {
  ASSERT_TRUE(server_.Store(TextObject(1, "stored at the server")).ok());
  EXPECT_EQ(server_.object_count(), 1u);
  auto fetched = server_.Fetch(1);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("stored"),
            std::string::npos);
  EXPECT_GT(link_.bytes_transferred(), 0u);
  EXPECT_TRUE(server_.Fetch(9).status().IsNotFound());
}

TEST_F(ObjectServerTest, FetchVersionReadsHistoricalCopies) {
  ASSERT_TRUE(server_.Store(TextObject(1, "version one body")).ok());
  clock_.Advance(1000);
  ASSERT_TRUE(server_.Store(TextObject(1, "version two body")).ok());
  auto v1 = server_.FetchVersion(1, 1);
  auto v2 = server_.FetchVersion(1, 2);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(v1->text_part().contents().find("version one"),
            std::string::npos);
  EXPECT_NE(v2->text_part().contents().find("version two"),
            std::string::npos);
  // The plain Fetch returns the current (latest) version.
  auto current = server_.Fetch(1);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->text_part().contents(), v2->text_part().contents());
  EXPECT_TRUE(server_.FetchVersion(1, 3).status().IsNotFound());
  EXPECT_TRUE(server_.FetchVersion(9, 1).status().IsNotFound());
}

TEST_F(ObjectServerTest, ContentQueryByTextWord) {
  ASSERT_TRUE(
      server_.Store(TextObject(1, "report about the hospital wing")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "memo about the subway line")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(3, "hospital budget for the year")).ok());
  EXPECT_EQ(server_.Query("hospital"),
            (std::vector<storage::ObjectId>{1, 3}));
  EXPECT_EQ(server_.Query("subway"), (std::vector<storage::ObjectId>{2}));
  EXPECT_TRUE(server_.Query("airport").empty());
  // Case-insensitive.
  EXPECT_EQ(server_.Query("HOSPITAL").size(), 2u);
}

TEST_F(ObjectServerTest, QueryMatchesAttributesAndVoice) {
  ASSERT_TRUE(server_.Store(TextObject(1, "plain body")).ok());  // kind=memo.
  ASSERT_TRUE(
      server_.Store(AudioObject(2, "dictated findings about the fracture"))
          .ok());
  EXPECT_EQ(server_.Query("memo"), (std::vector<storage::ObjectId>{1}));
  EXPECT_EQ(server_.Query("fracture"),
            (std::vector<storage::ObjectId>{2}));
}

TEST_F(ObjectServerTest, ConjunctiveQuery) {
  ASSERT_TRUE(server_.Store(TextObject(1, "red apples and pears")).ok());
  ASSERT_TRUE(server_.Store(TextObject(2, "red bricks and mortar")).ok());
  EXPECT_EQ(server_.QueryAll({"red", "apples"}),
            (std::vector<storage::ObjectId>{1}));
  EXPECT_EQ(server_.QueryAll({"red"}).size(), 2u);
  EXPECT_TRUE(server_.QueryAll({"red", "zebra"}).empty());
}

TEST_F(ObjectServerTest, MiniatureOfVisualObject) {
  // A long document, so the miniature economics are visible.
  std::string body;
  for (int i = 0; i < 400; ++i) {
    body += "Sentence " + std::to_string(i) + " of the long report. ";
  }
  ASSERT_TRUE(server_.Store(TextObject(1, body)).ok());
  link_.ResetStats();
  auto card = server_.FetchMiniature(1);
  ASSERT_TRUE(card.ok());
  EXPECT_FALSE(card->audio_mode);
  EXPECT_GT(card->thumb.width(), 0);
  // Much cheaper than fetching the whole object.
  const uint64_t mini_bytes = link_.bytes_transferred();
  ASSERT_TRUE(server_.Fetch(1).ok());
  EXPECT_LT(mini_bytes, link_.bytes_transferred() - mini_bytes);
}

TEST_F(ObjectServerTest, MiniatureOfAudioObject) {
  ASSERT_TRUE(
      server_.Store(AudioObject(2, "spoken introduction to the archive"))
          .ok());
  auto card = server_.FetchMiniature(2);
  ASSERT_TRUE(card.ok());
  EXPECT_TRUE(card->audio_mode);
  // The preview carries the first spoken words.
  EXPECT_NE(card->preview_transcript.find("spoken"), std::string::npos);
}

TEST_F(ObjectServerTest, FetchImageRegionReturnsExactPixels) {
  MultimediaObject obj = ImageObject(5, 200, 150);
  const image::Bitmap full = obj.images()[0].Render();
  ASSERT_TRUE(server_.Store(obj).ok());
  const image::Rect r{50, 40, 60, 30};
  auto region = server_.FetchImageRegion(5, 0, r);
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_EQ(region->width(), 60);
  EXPECT_EQ(region->height(), 30);
  for (int y = 0; y < r.h; ++y) {
    for (int x = 0; x < r.w; ++x) {
      ASSERT_EQ(region->At(x, y), full.At(r.x + x, r.y + y))
          << x << "," << y;
    }
  }
}

TEST_F(ObjectServerTest, RegionFetchTransfersFewerBytes) {
  ASSERT_TRUE(server_.Store(ImageObject(5, 400, 300)).ok());
  link_.ResetStats();
  ASSERT_TRUE(server_.FetchImageRegion(5, 0, image::Rect{0, 0, 50, 50}).ok());
  const uint64_t region_bytes = link_.bytes_transferred();
  link_.ResetStats();
  ASSERT_TRUE(server_.FetchImage(5, 0).ok());
  const uint64_t full_bytes = link_.bytes_transferred();
  EXPECT_LT(region_bytes * 10, full_bytes);
}

TEST_F(ObjectServerTest, RegionFetchClipsToImage) {
  ASSERT_TRUE(server_.Store(ImageObject(5, 100, 100)).ok());
  auto region =
      server_.FetchImageRegion(5, 0, image::Rect{80, 80, 50, 50});
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region->width(), 20);
  EXPECT_EQ(region->height(), 20);
}

TEST_F(ObjectServerTest, RegionFetchUnsupportedForGraphics) {
  MultimediaObject obj(6);
  image::GraphicsImage g(100, 100);
  image::GraphicsObject dot;
  dot.shape = image::ShapeKind::kPoint;
  dot.vertices = {{5, 5}};
  g.Add(dot);
  ASSERT_TRUE(
      obj.AddImage(image::Image::FromGraphics(std::move(g))).ok());
  VisualPageSpec page;
  page.images.push_back({0, image::Rect{}});
  obj.descriptor().pages.push_back(page);
  ASSERT_TRUE(obj.Archive().ok());
  ASSERT_TRUE(server_.Store(obj).ok());
  EXPECT_TRUE(server_.FetchImageRegion(6, 0, image::Rect{0, 0, 10, 10})
                  .status()
                  .IsUnsupported());
}

TEST_F(ObjectServerTest, FetchImagePartMissing) {
  ASSERT_TRUE(server_.Store(TextObject(1, "no images")).ok());
  EXPECT_TRUE(server_.FetchImage(1, 0).status().IsNotFound());
}

TEST_F(ObjectServerTest, ViewDefinedOnMiniatureFetchesMatchingRegion) {
  // §2: "When a view is defined on the representation image the system
  // has to transfer only the data of the view." Define a rectangle on
  // the miniature, map it to full-image coordinates, fetch that region —
  // it must match the same crop of the original.
  MultimediaObject obj = ImageObject(8, 256, 192);
  const image::Bitmap full = obj.images()[0].Render();
  ASSERT_TRUE(server_.Store(obj).ok());
  auto mini = image::Miniature::Build(obj.images()[0], 4);
  ASSERT_TRUE(mini.ok());
  const image::Rect on_mini{10, 8, 16, 12};
  const image::Rect on_full = mini->ToFullImage(on_mini);
  EXPECT_EQ(on_full, (image::Rect{40, 32, 64, 48}));
  auto region = server_.FetchImageRegion(8, 0, on_full);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(*region, full.SubBitmap(on_full));
}

TEST(LinkTest, TransferChargesClockAndCounts) {
  SimClock clock;
  Link link(1000000.0, MillisToMicros(1), &clock);  // 1 MB/s, 1 ms latency.
  StatusOr<Micros> t = link.Transfer(500000);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(*t, MillisToMicros(1) + 500000);
  EXPECT_EQ(clock.Now(), *t);
  EXPECT_EQ(link.bytes_transferred(), 500000u);
  EXPECT_EQ(link.transfer_count(), 1u);
  link.ResetStats();
  EXPECT_EQ(link.bytes_transferred(), 0u);
}

TEST_F(ObjectServerTest, WorkstationQueryToPresentation) {
  ASSERT_TRUE(
      server_.Store(TextObject(1, "city hospital renovation memo")).ok());
  ASSERT_TRUE(
      server_.Store(TextObject(2, "hospital parking garage notes")).ok());
  ASSERT_TRUE(server_.Store(TextObject(3, "unrelated subject")).ok());

  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto browser = workstation.Query({"hospital"});
  ASSERT_TRUE(browser.ok());
  EXPECT_EQ(browser->size(), 2u);

  // Sequential browsing: next / previous / select.
  auto first = browser->Current();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->id, 1u);
  ASSERT_TRUE(browser->Next().ok());
  EXPECT_TRUE(browser->Next().IsOutOfRange());
  ASSERT_TRUE(browser->Previous().ok());
  EXPECT_TRUE(browser->Previous().IsOutOfRange());
  auto selected = browser->Select();
  ASSERT_TRUE(selected.ok());
  ASSERT_TRUE(workstation.Present(*selected).ok());
  EXPECT_TRUE(workstation.presentation().is_open());
  EXPECT_NE(workstation.presentation().visual_browser(), nullptr);
}

TEST_F(ObjectServerTest, WorkstationEmptyQuery) {
  render::Screen screen;
  Workstation workstation(&server_, &screen, &clock_);
  auto browser = workstation.Query({"nothing"});
  ASSERT_TRUE(browser.ok());
  EXPECT_TRUE(browser->empty());
  EXPECT_TRUE(browser->Current().status().IsNotFound());
  EXPECT_TRUE(browser->Select().status().IsNotFound());
}

}  // namespace
}  // namespace minos::server
