#include "minos/obs/metrics.h"

#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace minos::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000);
}

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, ExactAggregates) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Record(10.0);
  h.Record(2.0);
  h.Record(6.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(HistogramTest, NearestRankPercentiles) {
  Histogram h;
  for (int v = 100; v >= 1; --v) h.Record(v);  // Insertion order is free.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, SummarizeCarriesTheStandardSet) {
  Histogram h;
  for (int v = 1; v <= 10; ++v) h.Record(v);
  const HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 10);
  EXPECT_DOUBLE_EQ(s.sum, 55.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.p90, 9.0);
  EXPECT_DOUBLE_EQ(s.p99, 10.0);
}

TEST(HistogramTest, DecimationKeepsExactAggregatesAndSanePercentiles) {
  Histogram h;
  const int n = 50000;  // Far beyond kMaxSamples: forces decimation.
  double sum = 0.0;
  for (int v = 1; v <= n; ++v) {
    h.Record(v);
    sum += v;
  }
  EXPECT_EQ(h.count(), n);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), n);
  // The subsample is uniform over the stream, so percentiles stay within
  // a few percent of the true values.
  EXPECT_NEAR(h.Percentile(50), n * 0.50, n * 0.05);
  EXPECT_NEAR(h.Percentile(90), n * 0.90, n * 0.05);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(7.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->value(), 1);
}

TEST(MetricsRegistryTest, KindsLiveInSeparateNamespaces) {
  MetricsRegistry reg;
  reg.counter("x")->Increment(2);
  reg.gauge("x")->Set(1.5);
  reg.histogram("x")->Record(9.0);
  EXPECT_EQ(reg.size(), 3u);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("x"), 2);
  EXPECT_DOUBLE_EQ(snap.GaugeValue("x"), 1.5);
  ASSERT_NE(snap.FindHistogram("x"), nullptr);
  EXPECT_EQ(snap.FindHistogram("x")->count, 1);
}

TEST(MetricsRegistryTest, MakeScopeAllocatesUniquePrefixes) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.MakeScope("link"), "link0");
  EXPECT_EQ(reg.MakeScope("link"), "link1");
  EXPECT_EQ(reg.MakeScope("cache"), "cache0");
}

TEST(MetricsRegistryTest, SnapshotIsOrderedByName) {
  MetricsRegistry reg;
  reg.counter("b")->Increment();
  reg.counter("a")->Increment();
  reg.counter("c")->Increment();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a");
  EXPECT_EQ(snap.counters[1].first, "b");
  EXPECT_EQ(snap.counters[2].first, "c");
  EXPECT_FALSE(snap.HasCounter("zzz"));
  EXPECT_EQ(snap.CounterValue("zzz"), 0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsPointersAndNames) {
  MetricsRegistry reg;
  Counter* c = reg.counter("hits");
  Histogram* h = reg.histogram("lat_us");
  const std::string scope = reg.MakeScope("dev");
  EXPECT_EQ(scope, "dev0");
  c->Increment(5);
  h->Record(3.0);
  reg.Reset();
  // Pointers stay valid, values are zeroed, scope numbering restarts.
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(reg.counter("hits"), c);
  EXPECT_EQ(reg.MakeScope("dev"), "dev0");
}

TEST(MetricsRegistryTest, DefaultIsAProcessSingleton) {
  EXPECT_EQ(&MetricsRegistry::Default(), &MetricsRegistry::Default());
}

}  // namespace
}  // namespace minos::obs
