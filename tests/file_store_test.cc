#include "minos/storage/file_store.h"

#include <gtest/gtest.h>

#include "minos/format/object_formatter.h"
#include "minos/format/workspace_store.h"
#include "minos/util/random.h"

namespace minos::storage {
namespace {

class FileStoreTest : public ::testing::Test {
 protected:
  FileStoreTest()
      : device_("magnetic", 256, 32, DeviceCostModel::Instant(),
                /*write_once=*/false, &clock_),
        store_(&device_) {}

  SimClock clock_;
  BlockDevice device_;
  FileStore store_;
};

TEST_F(FileStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(store_.Put("memo", "editing state contents").ok());
  auto got = store_.Get("memo");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "editing state contents");
  EXPECT_TRUE(store_.Contains("memo"));
}

TEST_F(FileStoreTest, GetMissingIsNotFound) {
  EXPECT_TRUE(store_.Get("ghost").status().IsNotFound());
  EXPECT_FALSE(store_.Contains("ghost"));
}

TEST_F(FileStoreTest, OverwriteReplacesContents) {
  ASSERT_TRUE(store_.Put("doc", std::string(100, 'a')).ok());
  ASSERT_TRUE(store_.Put("doc", "tiny").ok());
  auto got = store_.Get("doc");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "tiny");
}

TEST_F(FileStoreTest, OverwriteFreesOldBlocks) {
  const uint64_t before = store_.free_blocks();
  ASSERT_TRUE(store_.Put("doc", std::string(32 * 10, 'a')).ok());
  ASSERT_TRUE(store_.Put("doc", std::string(32 * 2, 'b')).ok());
  EXPECT_EQ(store_.free_blocks(), before - 2);
}

TEST_F(FileStoreTest, DeleteFreesEverything) {
  const uint64_t before = store_.free_blocks();
  ASSERT_TRUE(store_.Put("doc", std::string(500, 'x')).ok());
  ASSERT_TRUE(store_.Delete("doc").ok());
  EXPECT_EQ(store_.free_blocks(), before);
  EXPECT_TRUE(store_.Delete("doc").IsNotFound());
}

TEST_F(FileStoreTest, DiskFullReportedAndOldFileSurvives) {
  // 256 blocks x 32 bytes = 8 KB total.
  ASSERT_TRUE(store_.Put("big", std::string(6000, 'x')).ok());
  EXPECT_TRUE(
      store_.Put("huge", std::string(4000, 'y')).IsResourceExhausted());
  // Overwriting 'big' with something too large also fails but keeps it.
  EXPECT_TRUE(
      store_.Put("big", std::string(9000, 'z')).IsResourceExhausted());
  auto got = store_.Get("big");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 6000u);
  EXPECT_EQ((*got)[0], 'x');
}

TEST_F(FileStoreTest, ListSortedByName) {
  store_.Put("zeta", "z").ok();
  store_.Put("alpha", "a").ok();
  store_.Put("mid", "m").ok();
  EXPECT_EQ(store_.List(),
            (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST_F(FileStoreTest, EmptyFileRoundTrip) {
  ASSERT_TRUE(store_.Put("empty", "").ok());
  auto got = store_.Get("empty");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST_F(FileStoreTest, ManyFilesChurnProperty) {
  Random rng(404);
  std::map<std::string, std::string> reference;
  for (int step = 0; step < 300; ++step) {
    const std::string name = "file" + std::to_string(rng.Uniform(12));
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      std::string payload;
      const size_t len = rng.Uniform(300);
      for (size_t i = 0; i < len; ++i) {
        payload.push_back(static_cast<char>(rng.Next64()));
      }
      if (store_.Put(name, payload).ok()) {
        reference[name] = payload;
      }
    } else if (dice < 0.8) {
      const Status s = store_.Delete(name);
      EXPECT_EQ(s.ok(), reference.erase(name) > 0);
    } else {
      auto got = store_.Get(name);
      auto it = reference.find(name);
      ASSERT_EQ(got.ok(), it != reference.end());
      if (got.ok()) EXPECT_EQ(*got, it->second);
    }
  }
  // Final verification pass.
  for (const auto& [name, payload] : reference) {
    auto got = store_.Get(name);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, payload);
  }
}

TEST(WorkspaceStoreTest, SaveLoadRoundTrip) {
  SimClock clock;
  BlockDevice device("magnetic", 1024, 64, DeviceCostModel::Instant(),
                     false, &clock);
  FileStore files(&device);
  format::WorkspaceStore store(&files);

  format::ObjectWorkspace ws("case-9");
  ws.SetSynthesis("@MODE visual\n.PP\nbody\n@IMAGE pic\n");
  ws.AddDataFile("pic", DataType::kImage, "imagebytes");
  ws.AddDraftDataFile("notes", DataType::kText, "draft notes");
  ws.ReferenceArchiverData("shared", DataType::kImage,
                           ArchiveAddress{512, 64});
  ASSERT_TRUE(store.Save(ws).ok());

  auto loaded = store.Load("case-9");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name(), "case-9");
  EXPECT_EQ(loaded->synthesis(), ws.synthesis());
  auto pic = loaded->ReadDataFile("pic");
  ASSERT_TRUE(pic.ok());
  EXPECT_EQ(*pic, "imagebytes");
  EXPECT_FALSE(loaded->directory().AllFinal());  // Draft preserved.
  auto shared = loaded->directory().Find("shared");
  ASSERT_TRUE(shared.ok());
  EXPECT_EQ(shared->archive_address, (ArchiveAddress{512, 64}));
  // Retrieval is by name; removal works.
  EXPECT_EQ(store.List(), (std::vector<std::string>{"case-9"}));
  ASSERT_TRUE(store.Remove("case-9").ok());
  EXPECT_TRUE(store.Load("case-9").status().IsNotFound());
}

TEST(WorkspaceStoreTest, LoadedWorkspaceFormats) {
  SimClock clock;
  BlockDevice device("magnetic", 1024, 64, DeviceCostModel::Instant(),
                     false, &clock);
  FileStore files(&device);
  format::WorkspaceStore store(&files);
  format::ObjectWorkspace ws("roundtrip");
  ws.SetSynthesis(".TITLE Round Trip\n.PP\nformatted after reload\n");
  ASSERT_TRUE(store.Save(ws).ok());
  auto loaded = store.Load("roundtrip");
  ASSERT_TRUE(loaded.ok());
  format::ObjectFormatter formatter;
  auto obj = formatter.Format(*loaded, 5);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->has_text());
}

}  // namespace
}  // namespace minos::storage
