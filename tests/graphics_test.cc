#include "minos/image/graphics.h"

#include <gtest/gtest.h>

namespace minos::image {
namespace {

GraphicsImage CityMap() {
  GraphicsImage img(200, 200);
  GraphicsObject hospital;
  hospital.shape = ShapeKind::kCircle;
  hospital.vertices = {{50, 50}};
  hospital.radius = 10;
  hospital.filled = true;
  hospital.label = {LabelKind::kText, "General Hospital", {62, 50}};
  img.Add(hospital);

  GraphicsObject university;
  university.shape = ShapeKind::kPolygon;
  university.vertices = {{100, 100}, {140, 100}, {140, 140}, {100, 140}};
  university.label = {LabelKind::kVoice, "the university campus", {120, 95}};
  img.Add(university);

  GraphicsObject subway;
  subway.shape = ShapeKind::kPolyline;
  subway.vertices = {{0, 180}, {100, 180}, {180, 120}};
  subway.label = {LabelKind::kInvisible, "subway line one", {90, 175}};
  img.Add(subway);
  return img;
}

TEST(GraphicsObjectTest, BoundingBoxes) {
  GraphicsObject circle;
  circle.shape = ShapeKind::kCircle;
  circle.vertices = {{50, 50}};
  circle.radius = 10;
  EXPECT_EQ(circle.BoundingBox(), (Rect{40, 40, 21, 21}));

  GraphicsObject poly;
  poly.shape = ShapeKind::kPolygon;
  poly.vertices = {{10, 20}, {30, 5}, {25, 40}};
  EXPECT_EQ(poly.BoundingBox(), (Rect{10, 5, 21, 36}));

  GraphicsObject empty;
  EXPECT_EQ(empty.BoundingBox(), (Rect{}));
}

TEST(GraphicsObjectTest, HitTestPoint) {
  GraphicsObject point;
  point.shape = ShapeKind::kPoint;
  point.vertices = {{10, 10}};
  EXPECT_TRUE(point.HitTest(10, 10));
  EXPECT_TRUE(point.HitTest(12, 11));
  EXPECT_FALSE(point.HitTest(15, 10));
}

TEST(GraphicsObjectTest, HitTestFilledCircle) {
  GraphicsObject circle;
  circle.shape = ShapeKind::kCircle;
  circle.vertices = {{50, 50}};
  circle.radius = 10;
  circle.filled = true;
  EXPECT_TRUE(circle.HitTest(50, 50));
  EXPECT_TRUE(circle.HitTest(57, 50));
  EXPECT_FALSE(circle.HitTest(65, 50));
}

TEST(GraphicsObjectTest, HitTestRingCircle) {
  GraphicsObject circle;
  circle.shape = ShapeKind::kCircle;
  circle.vertices = {{50, 50}};
  circle.radius = 10;
  circle.filled = false;
  EXPECT_TRUE(circle.HitTest(60, 50));   // On the ring.
  EXPECT_FALSE(circle.HitTest(50, 50));  // Hollow center.
}

TEST(GraphicsObjectTest, HitTestPolygonInterior) {
  GraphicsObject poly;
  poly.shape = ShapeKind::kPolygon;
  poly.vertices = {{0, 0}, {20, 0}, {20, 20}, {0, 20}};
  EXPECT_TRUE(poly.HitTest(10, 10));
  EXPECT_FALSE(poly.HitTest(30, 30));
}

TEST(GraphicsObjectTest, HitTestPolylineNearSegment) {
  GraphicsObject line;
  line.shape = ShapeKind::kPolyline;
  line.vertices = {{0, 0}, {100, 0}};
  EXPECT_TRUE(line.HitTest(50, 1));
  EXPECT_TRUE(line.HitTest(50, 2));
  EXPECT_FALSE(line.HitTest(50, 10));
  EXPECT_FALSE(line.HitTest(120, 0));
}

TEST(GraphicsImageTest, AddAssignsIds) {
  GraphicsImage img = CityMap();
  ASSERT_EQ(img.objects().size(), 3u);
  EXPECT_EQ(img.objects()[0].id, 1u);
  EXPECT_EQ(img.objects()[2].id, 3u);
}

TEST(GraphicsImageTest, FindById) {
  GraphicsImage img = CityMap();
  auto o = img.Find(2);
  ASSERT_TRUE(o.ok());
  EXPECT_EQ(o->label.text, "the university campus");
  EXPECT_TRUE(img.Find(99).status().IsNotFound());
}

TEST(GraphicsImageTest, ObjectAtReturnsTopmost) {
  GraphicsImage img(100, 100);
  GraphicsObject a, b;
  a.shape = b.shape = ShapeKind::kCircle;
  a.vertices = b.vertices = {{50, 50}};
  a.radius = b.radius = 10;
  a.filled = b.filled = true;
  const uint32_t id_a = img.Add(a);
  const uint32_t id_b = img.Add(b);
  (void)id_a;
  auto hit = img.ObjectAt(50, 50);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->id, id_b);  // Later object is on top.
  EXPECT_TRUE(img.ObjectAt(0, 0).status().IsNotFound());
}

TEST(GraphicsImageTest, MatchLabelsSubstring) {
  GraphicsImage img = CityMap();
  EXPECT_EQ(img.MatchLabels("Hospital").size(), 1u);
  EXPECT_EQ(img.MatchLabels("university").size(), 1u);
  EXPECT_EQ(img.MatchLabels("subway").size(), 1u);  // Invisible labels count.
  EXPECT_TRUE(img.MatchLabels("airport").empty());
  EXPECT_TRUE(img.MatchLabels("").empty());
}

TEST(GraphicsImageTest, SerializeRoundTrip) {
  GraphicsImage img = CityMap();
  auto restored = GraphicsImage::Deserialize(img.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->objects().size(), 3u);
  EXPECT_EQ(restored->width(), 200);
  const GraphicsObject& poly = restored->objects()[1];
  EXPECT_EQ(poly.shape, ShapeKind::kPolygon);
  EXPECT_EQ(poly.vertices.size(), 4u);
  EXPECT_EQ(poly.label.kind, LabelKind::kVoice);
  EXPECT_EQ(poly.label.text, "the university campus");
  EXPECT_EQ(poly.label.anchor, (Point{120, 95}));
  // Ids keep incrementing past the restored set.
  GraphicsObject extra;
  extra.shape = ShapeKind::kPoint;
  extra.vertices = {{1, 1}};
  EXPECT_EQ(restored->Add(extra), 4u);
}

TEST(GraphicsImageTest, DeserializeRejectsTruncation) {
  GraphicsImage img = CityMap();
  const std::string bytes = img.Serialize();
  EXPECT_FALSE(
      GraphicsImage::Deserialize(std::string_view(bytes).substr(0, 8)).ok());
}

}  // namespace
}  // namespace minos::image
