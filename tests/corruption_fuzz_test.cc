// Property tests: decoders must never crash and must either fail cleanly
// or produce a structurally valid object, for every single-byte
// corruption and truncation of a valid archive. The archiver must serve
// any read pattern consistently with an in-memory reference.

#include <gtest/gtest.h>

#include "minos/object/multimedia_object.h"
#include "minos/object/part_codec.h"
#include "minos/obs/trace.h"
#include "minos/server/fault.h"
#include "minos/server/object_server.h"
#include "minos/server/repair.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/markup.h"
#include "minos/util/random.h"
#include "minos/voice/synthesizer.h"

namespace minos {
namespace {

object::MultimediaObject ReferenceObject() {
  object::MultimediaObject obj(77);
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".TITLE Fuzz Target\n.CHAPTER One\n.PP\nSome *styled* body text "
      "with a few words. Another sentence.\n");
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  image::Bitmap bm(24, 16);
  bm.FillRect(image::Rect{2, 2, 8, 8}, 99);
  EXPECT_TRUE(obj.AddImage(image::Image::FromBitmap(std::move(bm))).ok());
  object::VisualPageSpec page;
  page.text_page = 1;
  page.images.push_back({0, image::Rect{1, 2, 20, 10}});
  obj.descriptor().pages.push_back(page);
  object::VoiceLogicalMessage m;
  m.transcript = "fuzzed note";
  m.text_anchor = object::TextAnchor{3, 9};
  obj.descriptor().voice_messages.push_back(m);
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

TEST(CorruptionFuzzTest, EveryTruncationFailsCleanly) {
  const object::MultimediaObject obj = ReferenceObject();
  const std::string bytes = obj.SerializeArchived().value();
  for (size_t cut = 0; cut < bytes.size(); cut += 3) {
    auto decoded = object::MultimediaObject::DeserializeArchived(
        77, std::string_view(bytes).substr(0, cut));
    // Must not crash; almost always an error. If a prefix happens to
    // decode, it must be structurally sound.
    if (decoded.ok()) {
      EXPECT_EQ(decoded->state(), object::ObjectState::kArchived);
    }
  }
}

TEST(CorruptionFuzzTest, SingleByteFlipsNeverCrash) {
  const object::MultimediaObject obj = ReferenceObject();
  const std::string bytes = obj.SerializeArchived().value();
  Random rng(2024);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next64());
    auto decoded =
        object::MultimediaObject::DeserializeArchived(77, mutated);
    if (decoded.ok()) {
      // A surviving decode must be internally consistent: anchors and
      // image references may be wild, but reading the parts must work.
      if (decoded->has_text()) {
        EXPECT_LE(decoded->text_part().size(), mutated.size());
      }
      for (const auto& img : decoded->images()) {
        EXPECT_GE(img.width(), 0);
        EXPECT_GE(img.height(), 0);
      }
    }
  }
}

TEST(CorruptionFuzzTest, InjectorWireFlipsNeverCrashEitherDecoder) {
  // The same property under the fault injector's corruption model: its
  // seeded byte flips (what the fetch path actually sees on the wire)
  // must never crash the strict or the lenient decoder, and whenever the
  // strict decode rejects the payload, the checksummed parts guarantee a
  // Corruption (not a structurally confused success elsewhere).
  const object::MultimediaObject obj = ReferenceObject();
  const std::string bytes = obj.SerializeArchived().value();
  SimClock clock;
  obs::MetricsRegistry reg;
  server::FaultProfile profile;
  profile.corrupt_rate = 1.0;
  server::FaultInjector injector(profile, 0xBADBEEF, &clock, &reg);
  for (int trial = 0; trial < 400; ++trial) {
    std::string wire = bytes;
    ASSERT_TRUE(injector.MaybeCorrupt(&wire));
    auto strict = object::MultimediaObject::DeserializeArchived(77, wire);
    object::MultimediaObject::PartSalvageReport report;
    auto lenient = object::MultimediaObject::DeserializeArchivedLenient(
        77, wire, &report);
    if (strict.ok()) {
      EXPECT_EQ(strict->state(), object::ObjectState::kArchived);
    }
    // Lenient decoding never does worse than strict decoding.
    if (strict.ok()) EXPECT_TRUE(lenient.ok());
    if (lenient.ok() && report.degraded()) {
      // A salvage dropped parts; the object must still be presentable.
      EXPECT_TRUE(lenient->has_text() || !lenient->images().empty());
    }
  }
}

TEST(CorruptionFuzzTest, DescriptorFlipsNeverCrash) {
  object::ObjectDescriptor desc = ReferenceObject().descriptor();
  const std::string bytes = desc.Serialize();
  Random rng(7);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = bytes;
    mutated[rng.Uniform(mutated.size())] = static_cast<char>(rng.Next64());
    auto decoded = object::ObjectDescriptor::Deserialize(mutated);
    (void)decoded;  // Either ok or an error; never a crash.
  }
}

TEST(CorruptionFuzzTest, VoiceDocumentFlipsNeverCrash) {
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\nshort spoken words here\n");
  ASSERT_TRUE(doc.ok());
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  voice::VoiceDocument vdoc(synth.Synthesize(*doc).value());
  const std::string bytes = object::EncodeVoiceDocument(vdoc);
  Random rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::string mutated = bytes;
    // Flip in the header region where structure lives (the sample data
    // dominates the tail and flips there are uninteresting).
    mutated[rng.Uniform(std::min<size_t>(mutated.size(), 64))] =
        static_cast<char>(rng.Next64());
    auto decoded = object::DecodeVoiceDocument(mutated);
    (void)decoded;
  }
}

TEST(CorruptionFuzzTest, TraceJsonTruncationsAndFlipsNeverCrash) {
  // Trace snapshots travel through files and CI artifacts like archive
  // bytes travel over the wire: FromJson must fail cleanly — never
  // crash — on every truncation and on random single-byte damage.
  SimClock clock;
  obs::Tracer tracer(&clock);
  {
    obs::TraceSpan root = tracer.StartSpan("req \"quoted\"#42");
    root.AddTag("shard", "3");
    clock.Advance(10);
    obs::TraceSpan child = tracer.StartSpan("work\\path");
    clock.Advance(5);
  }
  const std::string json = tracer.ToJson();
  ASSERT_TRUE(obs::Tracer::FromJson(json).ok());
  for (size_t cut = 0; cut < json.size(); cut += 3) {
    auto parsed =
        obs::Tracer::FromJson(std::string_view(json).substr(0, cut));
    // A strict prefix is never a complete document.
    EXPECT_FALSE(parsed.ok());
  }
  Random rng(0xACE);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = json;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next64());
    auto parsed = obs::Tracer::FromJson(mutated);
    if (parsed.ok()) {
      // A surviving parse must be structurally sound span records:
      // names came out of the document, tags are fully materialized.
      for (const obs::SpanRecord& s : *parsed) {
        EXPECT_LE(s.name.size(), mutated.size());
        for (const auto& [key, value] : s.tags) {
          EXPECT_LE(key.size() + value.size(), mutated.size());
        }
      }
    }
  }
}

server::CatalogDigest ReferenceDigest() {
  server::CatalogDigest digest;
  for (storage::ObjectId id = 2; id <= 40; id += 2) {
    server::DigestEntry e;
    e.id = id;
    e.version = static_cast<uint32_t>(1 + id % 5);
    e.content_crc = static_cast<uint32_t>(0xC0DE0000u + id);
    digest.entries.push_back(e);
  }
  return digest;
}

TEST(CorruptionFuzzTest, CatalogDigestTruncationSweepFailsCleanly) {
  // Repair digests travel shard-to-shard like archive bytes travel to
  // the workstation: every strict prefix must be rejected — the
  // trailing document checksum cannot survive a cut.
  const std::string wire = ReferenceDigest().Serialize();
  ASSERT_TRUE(server::CatalogDigest::Deserialize(wire).ok());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto parsed = server::CatalogDigest::Deserialize(
        std::string_view(wire).substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "truncation at " << cut << " parsed";
  }
}

TEST(CorruptionFuzzTest, CatalogDigestMutationsNeverPassQuietly) {
  // Random multi-byte damage anywhere in the wire document — header,
  // entries, trailer — must be rejected, never crash, and never yield
  // a digest that quietly drives repair decisions.
  const std::string wire = ReferenceDigest().Serialize();
  Random rng(0xD16E57);
  for (int trial = 0; trial < 600; ++trial) {
    std::string mutated = wire;
    const int edits = 1 + static_cast<int>(rng.Uniform(3));
    bool changed = false;
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.Uniform(mutated.size());
      const char value = static_cast<char>(rng.Next64());
      changed = changed || mutated[pos] != value;
      mutated[pos] = value;
    }
    if (!changed) continue;
    EXPECT_FALSE(server::CatalogDigest::Deserialize(mutated).ok());
  }
  // Arbitrary garbage is rejected too, whatever its length.
  for (int trial = 0; trial < 100; ++trial) {
    std::string garbage(rng.Uniform(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Next64());
    auto parsed = server::CatalogDigest::Deserialize(garbage);
    if (parsed.ok()) {
      // Only the genuine empty document may parse by chance.
      EXPECT_TRUE(parsed->entries.empty());
    }
  }
}

TEST(CorruptionFuzzTest, FuzzedReplicaIngestIsAtomicAndNeverDestructive) {
  // AcceptReplica is the door damage would walk through: for every
  // mutated payload it must either reject without cataloging anything,
  // or ingest a replica the server can actually serve — never a
  // half-ingested or unservable state.
  SimClock clock;
  storage::BlockDevice device("fuzz", 65536, 512,
                              storage::DeviceCostModel::Instant(), true,
                              &clock);
  storage::BlockCache cache(256);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);

  const object::MultimediaObject obj = ReferenceObject();
  const std::string bytes = obj.SerializeArchived().value();
  Random rng(0xFEED);
  size_t held = server.object_count();
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Next64());
    auto accepted = server.AcceptReplica(77, 1, mutated);
    if (!accepted.ok()) {
      // Rejected: the catalog must be exactly as before.
      EXPECT_EQ(server.object_count(), held);
      continue;
    }
    if (*accepted) {
      // Survived strict validation and was (re)ingested: the server
      // must serve it back whole.
      held = server.object_count();
      EXPECT_EQ(held, 1u);
      EXPECT_TRUE(server.ReadObjectBytes(77).ok());
    }
  }
  // The pristine replica always lands, whatever the fuzz left behind.
  auto accepted = server.AcceptReplica(77, 2, bytes);
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE(*accepted);
  EXPECT_TRUE(server.Fetch(77).ok());
}

TEST(ArchiverPropertyTest, RandomAppendsReadBackExactly) {
  SimClock clock;
  storage::BlockDevice device("d", 4096, 32,
                              storage::DeviceCostModel::Instant(), true,
                              &clock);
  storage::BlockCache cache(8);
  storage::Archiver archiver(&device, &cache);
  Random rng(5);
  std::string reference;  // The logical byte stream.
  std::vector<storage::ArchiveAddress> addrs;
  for (int i = 0; i < 60; ++i) {
    const size_t len = 1 + rng.Uniform(200);
    std::string payload;
    for (size_t b = 0; b < len; ++b) {
      payload.push_back(static_cast<char>(rng.Next64()));
    }
    if (rng.Bernoulli(0.2)) {
      ASSERT_TRUE(archiver.Flush().ok());
      reference.resize(archiver.size(), '\0');  // Flush pads the block.
    }
    auto addr = archiver.Append(payload);
    ASSERT_TRUE(addr.ok());
    ASSERT_EQ(addr->offset, reference.size());
    reference += payload;
    addrs.push_back(*addr);
  }
  // Whole-record reads.
  Random pick(6);
  for (int i = 0; i < 60; ++i) {
    const auto& addr = addrs[pick.Uniform(addrs.size())];
    std::string out;
    ASSERT_TRUE(archiver.Read(addr, &out).ok());
    EXPECT_EQ(out, reference.substr(addr.offset, addr.length));
  }
  // Arbitrary range reads.
  for (int i = 0; i < 60; ++i) {
    const uint64_t off = pick.Uniform(reference.size());
    const uint64_t len = pick.Uniform(reference.size() - off + 1);
    std::string out;
    ASSERT_TRUE(archiver.ReadRange(off, len, &out).ok());
    EXPECT_EQ(out, reference.substr(off, len));
  }
}

TEST(MarkupPropertyTest, RandomMarkupNeverCrashesParser) {
  Random rng(31337);
  const char* pieces[] = {".TITLE x\n", ".CHAPTER y\n", ".SECTION z\n",
                          ".PP\n",      ".ABSTRACT\n",  ".REFERENCES\n",
                          "word ",      "*bold* ",      "_under_ ",
                          "\n",         "sentence. ",   "/tilt/ "};
  for (int trial = 0; trial < 300; ++trial) {
    std::string markup;
    const int n = 1 + static_cast<int>(rng.Uniform(30));
    for (int i = 0; i < n; ++i) {
      markup += pieces[rng.Uniform(std::size(pieces))];
    }
    text::MarkupParser parser;
    auto doc = parser.Parse(markup);
    if (doc.ok()) {
      // Structural sanity: every component span within bounds.
      for (int u = 0; u < 8; ++u) {
        for (const auto& c :
             doc->Components(static_cast<text::LogicalUnit>(u))) {
          EXPECT_LE(c.span.begin, c.span.end);
          EXPECT_LE(c.span.end, doc->size());
        }
      }
    }
  }
}

}  // namespace
}  // namespace minos
