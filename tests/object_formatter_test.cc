#include "minos/format/object_formatter.h"

#include <gtest/gtest.h>

namespace minos::format {
namespace {

using object::DrivingMode;
using object::MultimediaObject;
using object::TransparencyDisplay;
using object::VisualPageSpec;

std::string SerializedBitmap(int w, int h, uint8_t ink) {
  image::Bitmap bm(w, h);
  bm.FillRect(image::Rect{0, 0, w / 2, h / 2}, ink);
  return image::Image::FromBitmap(std::move(bm)).Serialize();
}

ObjectWorkspace TourWorkspace() {
  ObjectWorkspace ws("city-tour");
  ws.SetSynthesis(R"(@MODE visual
@LAYOUT 40 10
.TITLE City Tour
.PP
Welcome to the tour of the old town and its squares.
@IMAGE map
@TRANSPARENCY overlay_a
@TRANSPARENCY overlay_b
@METHOD separate
@OVERWRITE footprints
@PROCESS 500 2
)");
  ws.AddDataFile("map", storage::DataType::kImage,
                 SerializedBitmap(64, 48, 120));
  ws.AddDataFile("overlay_a", storage::DataType::kImage,
                 SerializedBitmap(64, 48, 200));
  ws.AddDataFile("overlay_b", storage::DataType::kImage,
                 SerializedBitmap(64, 48, 250));
  ws.AddDataFile("footprints", storage::DataType::kImage,
                 SerializedBitmap(64, 48, 90));
  return ws;
}

TEST(ObjectFormatterTest, BuildsTextAndImageParts) {
  ObjectFormatter formatter;
  auto obj = formatter.Format(TourWorkspace(), 7);
  ASSERT_TRUE(obj.ok()) << obj.status().ToString();
  EXPECT_EQ(obj->id(), 7u);
  EXPECT_EQ(obj->state(), object::ObjectState::kEditing);
  EXPECT_TRUE(obj->has_text());
  EXPECT_EQ(obj->images().size(), 4u);
  EXPECT_EQ(obj->descriptor().driving_mode, DrivingMode::kVisual);
  EXPECT_EQ(obj->descriptor().layout.width, 40);
}

TEST(ObjectFormatterTest, PageSequenceTextThenDirectives) {
  ObjectFormatter formatter;
  auto obj = formatter.Format(TourWorkspace(), 7);
  ASSERT_TRUE(obj.ok());
  const auto& pages = obj->descriptor().pages;
  // Text pages come first (text_page != 0), then 4 directive pages.
  ASSERT_GE(pages.size(), 5u);
  const size_t text_pages = pages.size() - 4;
  for (size_t i = 0; i < text_pages; ++i) {
    EXPECT_EQ(pages[i].kind, VisualPageSpec::Kind::kNormal);
    EXPECT_EQ(pages[i].text_page, static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(pages[text_pages].kind, VisualPageSpec::Kind::kNormal);
  EXPECT_EQ(pages[text_pages + 1].kind,
            VisualPageSpec::Kind::kTransparency);
  EXPECT_EQ(pages[text_pages + 2].kind,
            VisualPageSpec::Kind::kTransparency);
  EXPECT_EQ(pages[text_pages + 3].kind, VisualPageSpec::Kind::kOverwrite);
}

TEST(ObjectFormatterTest, TransparencySetCollected) {
  ObjectFormatter formatter;
  auto obj = formatter.Format(TourWorkspace(), 7);
  ASSERT_TRUE(obj.ok());
  const auto& sets = obj->descriptor().transparency_sets;
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0].count, 2u);
  // @METHOD separate was declared while the set was open.
  EXPECT_EQ(sets[0].method, TransparencyDisplay::kSeparate);
}

TEST(ObjectFormatterTest, ProcessSimulationCoversTrailingPages) {
  ObjectFormatter formatter;
  auto obj = formatter.Format(TourWorkspace(), 7);
  ASSERT_TRUE(obj.ok());
  const auto& sims = obj->descriptor().process_simulations;
  ASSERT_EQ(sims.size(), 1u);
  EXPECT_EQ(sims[0].count, 2u);
  EXPECT_EQ(sims[0].first_page + sims[0].count,
            obj->descriptor().pages.size());
  EXPECT_EQ(sims[0].page_interval, MillisToMicros(500));
}

TEST(ObjectFormatterTest, FormattedObjectArchivesCleanly) {
  ObjectFormatter formatter;
  auto obj = formatter.Format(TourWorkspace(), 7);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->Archive().ok());
}

TEST(ObjectFormatterTest, DraftDataFileBlocksFormatting) {
  ObjectWorkspace ws("draft");
  ws.SetSynthesis("@IMAGE pic\n");
  ws.AddDraftDataFile("pic", storage::DataType::kImage,
                      SerializedBitmap(8, 8, 99));
  ObjectFormatter formatter;
  EXPECT_TRUE(formatter.Format(ws, 1).status().IsFailedPrecondition());
  ASSERT_TRUE(ws.FinalizeDataFile("pic").ok());
  EXPECT_TRUE(formatter.Format(ws, 1).ok());
}

TEST(ObjectFormatterTest, MissingDataFileReported) {
  ObjectWorkspace ws("missing");
  ws.SetSynthesis("@IMAGE ghost\n");
  ObjectFormatter formatter;
  EXPECT_TRUE(formatter.Format(ws, 1).status().IsNotFound());
}

TEST(ObjectFormatterTest, CorruptDataFileReported) {
  ObjectWorkspace ws("corrupt");
  ws.SetSynthesis("@IMAGE junk\n");
  ws.AddDataFile("junk", storage::DataType::kImage, "not an image");
  ObjectFormatter formatter;
  EXPECT_FALSE(formatter.Format(ws, 1).ok());
}

TEST(ObjectFormatterTest, ProcessBiggerThanPagesRejected) {
  ObjectWorkspace ws("bad-process");
  ws.SetSynthesis("@PROCESS 100 5\n");
  ObjectFormatter formatter;
  EXPECT_TRUE(formatter.Format(ws, 1).status().IsInvalidArgument());
}

TEST(ObjectFormatterTest, TextOnlyWorkspace) {
  ObjectWorkspace ws("text-only");
  ws.SetSynthesis(".PP\nplain paragraph text here\n");
  ObjectFormatter formatter;
  auto obj = formatter.Format(ws, 2);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->has_text());
  EXPECT_TRUE(obj->images().empty());
  EXPECT_GE(obj->descriptor().pages.size(), 1u);
}

TEST(ObjectFormatterTest, WorkspaceReadDataFile) {
  ObjectWorkspace ws("rw");
  ws.AddDataFile("a", storage::DataType::kText, "payload");
  auto read = ws.ReadDataFile("a");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "payload");
  EXPECT_TRUE(ws.ReadDataFile("b").status().IsNotFound());
}

TEST(ObjectFormatterTest, WorkspaceArchiverReferenceIsNotLocal) {
  ObjectWorkspace ws("ref");
  ws.ReferenceArchiverData("shared", storage::DataType::kImage,
                           storage::ArchiveAddress{100, 50});
  EXPECT_TRUE(ws.ReadDataFile("shared").status().IsNotFound());
  auto e = ws.directory().Find("shared");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->location, storage::DataLocation::kArchiver);
}

}  // namespace
}  // namespace minos::format
