// The self-healing storage tier: catalog digests (wire format and
// strict rejection), replica ingest, heal-triggered anti-entropy
// syncs, degrade-then-repair convergence, fail-closed shard expansion,
// and determinism of the whole repair schedule.

#include "minos/server/repair.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "minos/server/shard_router.h"
#include "minos/text/markup.h"
#include "minos/util/coding.h"

namespace minos::server {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;
using storage::ObjectId;

int64_t Count(const std::string& name) {
  return obs::MetricsRegistry::Default().counter(name)->value();
}

double GaugeVal(const std::string& name) {
  return obs::MetricsRegistry::Default().gauge(name)->value();
}

/// One shard's full server stack: its own device, archiver, versions
/// and link, so per-shard faults and breakers stay independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  Link link;
  ObjectServer server;
};

MultimediaObject TextObject(ObjectId id, const std::string& body) {
  MultimediaObject obj(id);
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  EXPECT_TRUE(doc.ok());
  EXPECT_TRUE(obj.SetTextPart(std::move(doc).value()).ok());
  VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  EXPECT_TRUE(obj.Archive().ok());
  return obj;
}

class RepairTest : public ::testing::Test {
 protected:
  /// Builds `n` shard stacks, a router over them (replication 2, range
  /// placement of `ids_per_shard`) and a RepairManager on the router.
  void BuildShards(size_t n, uint64_t ids_per_shard,
                   RepairOptions options = {}) {
    for (size_t i = 0; i < n; ++i) {
      stacks_.push_back(std::make_unique<ShardStack>(&clock_));
    }
    std::vector<ObjectServer*> servers;
    for (auto& stack : stacks_) servers.push_back(&stack->server);
    router_.emplace(servers, &clock_, RangePlacement(ids_per_shard),
                    ShardRouterOptions{});
    repair_.emplace(&*router_, &clock_, options);
  }

  /// Trips shard `i`'s breaker open by recording failures directly.
  void TripBreaker(size_t i, int threshold = 3) {
    CircuitBreaker::Options options;
    options.failure_threshold = threshold;
    stacks_[i]->link.ConfigureBreaker(options);
    for (int f = 0; f < threshold; ++f) {
      stacks_[i]->link.breaker().RecordFailure();
    }
    ASSERT_EQ(stacks_[i]->link.breaker().state(),
              CircuitBreaker::State::kOpen);
  }

  /// Sits out the breaker cooldown and crosses the heal edge (which
  /// fires the router's heal listener).
  void HealShard(size_t i) {
    clock_.Advance(stacks_[i]->link.breaker().options().cooldown_us + 1);
    ASSERT_TRUE(router_->IsLive(i));
  }

  SimClock clock_;
  std::vector<std::unique_ptr<ShardStack>> stacks_;
  std::optional<ShardRouter> router_;
  std::optional<RepairManager> repair_;
};

// --- Digest wire format ------------------------------------------------

TEST(CatalogDigestTest, SerializeRoundTripsExactly) {
  CatalogDigest digest;
  digest.entries.push_back(DigestEntry{3, 1, 0xDEADBEEF});
  digest.entries.push_back(DigestEntry{17, 4, 0});
  digest.entries.push_back(DigestEntry{900, 2, 0xFFFFFFFF});
  const std::string wire = digest.Serialize();
  auto parsed = CatalogDigest::Deserialize(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, digest);

  const CatalogDigest empty;
  auto parsed_empty = CatalogDigest::Deserialize(empty.Serialize());
  ASSERT_TRUE(parsed_empty.ok());
  EXPECT_TRUE(parsed_empty->entries.empty());
}

TEST(CatalogDigestTest, EveryBitFlipIsRejected) {
  CatalogDigest digest;
  for (ObjectId id = 1; id <= 8; ++id) {
    digest.entries.push_back(DigestEntry{
        id, static_cast<uint32_t>(id), static_cast<uint32_t>(0x1000u + id)});
  }
  const std::string wire = digest.Serialize();
  for (size_t pos = 0; pos < wire.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string damaged = wire;
      damaged[pos] = static_cast<char>(damaged[pos] ^ (1 << bit));
      auto parsed = CatalogDigest::Deserialize(damaged);
      EXPECT_FALSE(parsed.ok())
          << "flip survived at byte " << pos << " bit " << bit;
      EXPECT_TRUE(parsed.status().IsCorruption());
    }
  }
}

TEST(CatalogDigestTest, EveryTruncationIsRejected) {
  CatalogDigest digest;
  for (ObjectId id = 1; id <= 8; ++id) {
    digest.entries.push_back(
        DigestEntry{id * 7, 2, static_cast<uint32_t>(0xAB00u + id)});
  }
  const std::string wire = digest.Serialize();
  for (size_t keep = 0; keep < wire.size(); ++keep) {
    auto parsed = CatalogDigest::Deserialize(wire.substr(0, keep));
    EXPECT_FALSE(parsed.ok()) << "truncation to " << keep << " survived";
  }
  // Trailing garbage moves the checksum trailer: also rejected.
  EXPECT_FALSE(CatalogDigest::Deserialize(wire + "x").ok());
}

TEST(CatalogDigestTest, RejectsOutOfOrderIdsAndZeroVersions) {
  CatalogDigest unordered;
  unordered.entries.push_back(DigestEntry{9, 1, 1});
  unordered.entries.push_back(DigestEntry{3, 1, 2});
  auto parsed = CatalogDigest::Deserialize(unordered.Serialize());
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());

  CatalogDigest duplicate;
  duplicate.entries.push_back(DigestEntry{5, 1, 1});
  duplicate.entries.push_back(DigestEntry{5, 2, 2});
  EXPECT_FALSE(CatalogDigest::Deserialize(duplicate.Serialize()).ok());

  CatalogDigest zero_version;
  zero_version.entries.push_back(DigestEntry{5, 0, 1});
  EXPECT_FALSE(CatalogDigest::Deserialize(zero_version.Serialize()).ok());
}

// --- Server-side digest + replica ingest -------------------------------

TEST(ObjectServerAntiEntropyTest, DigestListsCatalogAscendingWithCrcs) {
  SimClock clock;
  ShardStack stack(&clock);
  for (ObjectId id : {23u, 5u, 14u}) {
    ASSERT_TRUE(
        stack.server.Store(TextObject(id, "digest body")).ok());
  }
  const CatalogDigest digest = stack.server.BuildCatalogDigest();
  ASSERT_EQ(digest.entries.size(), 3u);
  EXPECT_EQ(digest.entries[0].id, 5u);
  EXPECT_EQ(digest.entries[1].id, 14u);
  EXPECT_EQ(digest.entries[2].id, 23u);
  for (const DigestEntry& e : digest.entries) {
    EXPECT_EQ(e.version, 1u);
    auto bytes = stack.server.ReadObjectBytes(e.id);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(e.content_crc, Crc32(*bytes));
  }
  // A scrub over intact media agrees with the cached checksums.
  EXPECT_EQ(stack.server.BuildCatalogDigest(/*scrub=*/true), digest);
}

TEST(ObjectServerAntiEntropyTest, AcceptReplicaIngestsServesAndSkips) {
  SimClock clock;
  ShardStack source(&clock);
  ShardStack target(&clock);
  ASSERT_TRUE(source.server.Store(TextObject(7, "replica body")).ok());
  auto bytes = source.server.ReadObjectBytes(7);
  ASSERT_TRUE(bytes.ok());

  auto first = target.server.AcceptReplica(7, 1, *bytes);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first);
  EXPECT_EQ(target.server.object_count(), 1u);
  // The replica serves fetches and queries like a native store.
  auto fetched = target.server.Fetch(7);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("replica"),
            std::string::npos);
  EXPECT_EQ(target.server.QueryAll({"replica"}),
            std::vector<ObjectId>{7});
  // Same version, same bytes: a verified no-op.
  auto again = target.server.AcceptReplica(7, 1, *bytes);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(ObjectServerAntiEntropyTest, AcceptReplicaRejectsDamageUnchanged) {
  SimClock clock;
  ShardStack source(&clock);
  ShardStack target(&clock);
  ASSERT_TRUE(source.server.Store(TextObject(7, "damaged body")).ok());
  auto bytes = source.server.ReadObjectBytes(7);
  ASSERT_TRUE(bytes.ok());

  std::string damaged = *bytes;
  damaged[damaged.size() / 2] =
      static_cast<char>(damaged[damaged.size() / 2] ^ 0x40);
  auto accepted = target.server.AcceptReplica(7, 1, damaged);
  EXPECT_FALSE(accepted.ok());
  EXPECT_EQ(target.server.object_count(), 0u);
  // Truncation is equally fatal, equally non-destructive.
  EXPECT_FALSE(
      target.server.AcceptReplica(7, 1, bytes->substr(0, 10)).ok());
  EXPECT_EQ(target.server.object_count(), 0u);
  // Version 0 is not a version.
  EXPECT_FALSE(target.server.AcceptReplica(7, 0, *bytes).ok());
}

TEST(ObjectServerAntiEntropyTest, AcceptReplicaNeverRegressesVersions) {
  SimClock clock;
  ShardStack source(&clock);
  ShardStack target(&clock);
  ASSERT_TRUE(source.server.Store(TextObject(7, "first draft")).ok());
  auto v1 = source.server.ReadObjectBytes(7);
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(source.server.Store(TextObject(7, "second draft")).ok());
  auto v2 = source.server.ReadObjectBytes(7);
  ASSERT_TRUE(v2.ok());

  auto newer = target.server.AcceptReplica(7, 2, *v2);
  ASSERT_TRUE(newer.ok());
  EXPECT_TRUE(*newer);
  // A stale replica arriving late is ignored, not installed.
  auto stale = target.server.AcceptReplica(7, 1, *v1);
  ASSERT_TRUE(stale.ok());
  EXPECT_FALSE(*stale);
  auto fetched = target.server.Fetch(7);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("second"),
            std::string::npos);
}

// --- Degrade → surface → heal → repair ---------------------------------

TEST_F(RepairTest, StoreOntoDarkReplicaSurfacesUnderReplication) {
  BuildShards(2, 10);
  std::vector<std::pair<ObjectId, int>> degraded_events;
  router_->SetDegradedStoreListener([&](ObjectId id, int live_copies) {
    degraded_events.push_back({id, live_copies});
  });
  const int64_t degraded_before = Count("router.degraded_stores_total");

  TripBreaker(1);
  // Primary of 15 is the dark shard 1; only the replica on 0 lands.
  ASSERT_TRUE(router_->Store(TextObject(15, "degraded body")).ok());
  EXPECT_EQ(stacks_[0]->server.object_count(), 1u);
  EXPECT_EQ(stacks_[1]->server.object_count(), 0u);

  EXPECT_EQ(router_->under_replicated(), std::set<ObjectId>{15});
  EXPECT_EQ(GaugeVal("router.under_replicated"), 1.0);
  EXPECT_EQ(Count("router.degraded_stores_total"), degraded_before + 1);
  ASSERT_EQ(degraded_events.size(), 1u);
  EXPECT_EQ(degraded_events[0], (std::pair<ObjectId, int>{15, 1}));
  // Redundancy debt alone keeps a sync pending — no heal needed.
  EXPECT_TRUE(repair_->sync_pending());
}

TEST_F(RepairTest, SyncAgainstDarkShardReportsDebtWithoutPendingWork) {
  BuildShards(2, 10);
  TripBreaker(1);
  ASSERT_TRUE(router_->Store(TextObject(15, "waiting body")).ok());

  const RepairReport report = repair_->Sync();
  EXPECT_EQ(report.digests_exchanged, 1u);  // Only shard 0 answered.
  EXPECT_EQ(report.replicas_repaired, 0u);
  EXPECT_EQ(report.under_replicated, 1u);  // The dark deficit remains...
  EXPECT_EQ(report.pending, 0u);  // ...but no live work was left undone.
  EXPECT_EQ(GaugeVal("router.under_replicated"), 1.0);
  EXPECT_EQ(GaugeVal("repair.pending"), 0.0);
  EXPECT_TRUE(repair_->sync_pending());  // The debt keeps it pending.
}

TEST_F(RepairTest, HealTriggersPendingSyncThatRestoresRedundancy) {
  BuildShards(2, 10);
  TripBreaker(1);
  ASSERT_TRUE(router_->Store(TextObject(15, "healed body")).ok());
  ASSERT_TRUE(router_->Store(TextObject(3, "intact body")).ok());

  const int64_t syncs_before = Count("repair.syncs_total");
  const int64_t repaired_before = Count("repair.replicas_repaired_total");
  HealShard(1);
  ASSERT_TRUE(repair_->sync_pending());

  std::optional<RepairReport> report = repair_->SyncIfPending();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->digests_exchanged, 2u);
  // Shard 1 was dark for both stores, so both objects were singly held
  // and both needed a copy shipped.
  EXPECT_EQ(report->replicas_repaired, 2u);
  EXPECT_EQ(report->objects_checked, 2u);
  EXPECT_EQ(report->repair_failures, 0u);
  EXPECT_EQ(report->under_replicated, 0u);
  EXPECT_EQ(report->pending, 0u);
  EXPECT_GT(report->bytes_shipped, 0u);

  // The archive converged: both shards hold both objects, the gauge is
  // clear, the healed shard serves the repaired copy directly.
  EXPECT_EQ(stacks_[1]->server.object_count(), 2u);
  EXPECT_TRUE(router_->under_replicated().empty());
  EXPECT_EQ(GaugeVal("router.under_replicated"), 0.0);
  EXPECT_FALSE(repair_->sync_pending());
  EXPECT_EQ(Count("repair.syncs_total"), syncs_before + 1);
  EXPECT_EQ(Count("repair.replicas_repaired_total"), repaired_before + 2);
  auto fetched = stacks_[1]->server.Fetch(15);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("healed"),
            std::string::npos);
  // Nothing further to do: an idle round ships no objects.
  EXPECT_FALSE(repair_->SyncIfPending().has_value());
}

TEST_F(RepairTest, RepairTransfersRideTheBackgroundLane) {
  BuildShards(2, 10);
  TripBreaker(1);
  ASSERT_TRUE(router_->Store(TextObject(15, "lane body")).ok());
  HealShard(1);

  // A repair transfer failure must never trip the healed breaker: wire
  // an injector that kills only background traffic, then sync.
  FaultProfile storm;
  storm.fail_first_n = 1000;
  storm.op_filter = "background";
  FaultInjector chaos(storm, 0xC0FFEE, &clock_);
  stacks_[1]->link.SetFaultInjector(&chaos);

  const RepairReport report = repair_->Sync();
  // Shard 1's digest could not even ship: the round leaves the debt in
  // place without inventing repairs.
  EXPECT_EQ(report.digests_exchanged, 1u);
  EXPECT_EQ(report.replicas_repaired, 0u);
  EXPECT_EQ(report.under_replicated, 1u);
  // Background failures never count against the breaker: the digest
  // transfer consumed the half-open probe slot, but its failure carried
  // no weight, so the link stays routable instead of re-opening.
  EXPECT_NE(stacks_[1]->link.breaker().state(),
            CircuitBreaker::State::kOpen);
  EXPECT_TRUE(router_->IsLive(1));

  // Chaos over; the next sync converges and its successful digest
  // transfer finally closes the breaker.
  stacks_[1]->link.SetFaultInjector(nullptr);
  const RepairReport clean = repair_->Sync();
  EXPECT_EQ(clean.replicas_repaired, 1u);
  EXPECT_EQ(clean.under_replicated, 0u);
  EXPECT_EQ(stacks_[1]->server.object_count(), 1u);
  EXPECT_EQ(stacks_[1]->link.breaker().state(),
            CircuitBreaker::State::kClosed);
}

TEST_F(RepairTest, RottenSourceLeavesDeficitPendingNotPropagated) {
  BuildShards(2, 10);
  TripBreaker(1);
  // Tear the only copy's bytes as they land on shard 0's media: the
  // catalog's cached checksum stays clean, the platter lies. The tear
  // hits a low byte of the first block — inside the archived image, not
  // the block padding.
  stacks_[0]->device.SetWriteFaultHook([](uint64_t, std::string* data) {
    if (data->size() > 8) (*data)[8] = static_cast<char>((*data)[8] ^ 0x40);
    return Status::OK();
  });
  ASSERT_TRUE(router_->Store(TextObject(15, "rotten body")).ok());
  stacks_[0]->device.SetWriteFaultHook(nullptr);
  // By the time the heal lands the block cache has turned over, so the
  // repair's source read serves the platter's truth, not the cache's
  // memory of the clean write.
  stacks_[0]->cache.Clear();
  HealShard(1);

  const int64_t failures_before = Count("repair.failures_total");
  const RepairReport report = repair_->Sync();
  // The repair was planned, the damage was detected, nothing rotten
  // reached shard 1, and the deficit stays visible as pending work.
  EXPECT_EQ(report.replicas_repaired, 0u);
  EXPECT_GE(report.repair_failures, 1u);
  EXPECT_EQ(report.under_replicated, 1u);
  EXPECT_EQ(report.pending, 1u);
  EXPECT_EQ(GaugeVal("repair.pending"), 1.0);
  EXPECT_EQ(stacks_[1]->server.object_count(), 0u);
  EXPECT_GT(Count("repair.failures_total"), failures_before);
  EXPECT_TRUE(repair_->sync_pending());
}

TEST_F(RepairTest, ScrubDetectsMediaRotAndRepairsTheRottenReplica) {
  RepairOptions options;
  options.scrub = true;
  BuildShards(2, 10, options);
  // Rot lands on shard 1's platter mid-store; shard 0's copy is clean.
  // A low byte of the first block is guaranteed to sit inside the
  // archived image, where the scrub's platter read can see it.
  stacks_[1]->device.SetWriteFaultHook([](uint64_t, std::string* data) {
    if (data->size() > 8) (*data)[8] = static_cast<char>((*data)[8] ^ 0x40);
    return Status::OK();
  });
  ASSERT_TRUE(router_->Store(TextObject(15, "scrubbed body")).ok());
  stacks_[1]->device.SetWriteFaultHook(nullptr);

  // Without scrub the cached checksums agree and nothing is detected;
  // the scrubbing sync re-reads the platters and sees the divergence.
  const RepairReport report = repair_->Sync();
  EXPECT_EQ(report.replicas_repaired, 1u);
  EXPECT_EQ(report.under_replicated, 0u);
  auto fetched = stacks_[1]->server.Fetch(15);
  ASSERT_TRUE(fetched.ok());
  EXPECT_NE(fetched->text_part().contents().find("scrubbed"),
            std::string::npos);
  // Converged: a second scrub finds clean media everywhere.
  const RepairReport again = repair_->Sync();
  EXPECT_EQ(again.replicas_repaired, 0u);
  EXPECT_EQ(again.under_replicated, 0u);
}

TEST_F(RepairTest, ScheduledScrubCycleDetectsRotOnItsInterval) {
  // Satellite: a scrub *cycle*. options.scrub stays false (ordinary
  // syncs use cached checksums); the interval alone promotes a round to
  // a platter-reading scrub once enough simulated time has passed.
  RepairOptions options;
  options.scrub_interval = MillisToMicros(500);
  BuildShards(2, 10, options);
  // Rot lands on shard 1's platter mid-store, invisible to cached
  // checksums — only a scrub's platter read can see it.
  stacks_[1]->device.SetWriteFaultHook([](uint64_t, std::string* data) {
    if (data->size() > 8) (*data)[8] = static_cast<char>((*data)[8] ^ 0x40);
    return Status::OK();
  });
  ASSERT_TRUE(router_->Store(TextObject(15, "cycle body")).ok());
  stacks_[1]->device.SetWriteFaultHook(nullptr);

  // No debt and the interval has not elapsed: nothing runs, the rot
  // sits undetected.
  const int64_t scrubs_before = Count("repair.scrubs_total");
  EXPECT_FALSE(repair_->sync_pending());
  EXPECT_FALSE(repair_->SyncIfPending().has_value());

  // The interval elapses: the next pending check fires a scrub round in
  // the background lane, and the platter read finds the divergence.
  clock_.Advance(options.scrub_interval + 1);
  ASSERT_TRUE(repair_->sync_pending());
  const Micros due_at = clock_.Now();
  std::optional<RepairReport> report = repair_->SyncIfPending();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->replicas_repaired, 1u);
  EXPECT_EQ(Count("repair.scrubs_total"), scrubs_before + 1);
  EXPECT_EQ(repair_->last_scrub(), due_at);
  EXPECT_TRUE(stacks_[1]->server.Fetch(15).ok());

  // The cycle re-arms: quiet until the next interval, then a clean
  // scheduled scrub finds converged media.
  EXPECT_FALSE(repair_->sync_pending());
  clock_.Advance(options.scrub_interval + 1);
  report = repair_->SyncIfPending();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->replicas_repaired, 0u);
  EXPECT_EQ(Count("repair.scrubs_total"), scrubs_before + 2);
}

TEST_F(RepairTest, TamperedDigestIsRejectedAndItsShardSkipped) {
  BuildShards(2, 10);
  ASSERT_TRUE(router_->Store(TextObject(15, "tap body")).ok());
  const size_t count_before_0 = stacks_[0]->server.object_count();
  const size_t count_before_1 = stacks_[1]->server.object_count();
  const int64_t rejects_before = Count("repair.digest_rejects_total");

  repair_->SetDigestTap([](size_t shard, std::string* wire) {
    if (shard == 1 && !wire->empty()) {
      (*wire)[wire->size() / 2] =
          static_cast<char>((*wire)[wire->size() / 2] ^ 0x01);
    }
  });
  const RepairReport report = repair_->Sync();
  EXPECT_EQ(report.digests_rejected, 1u);
  EXPECT_EQ(report.digests_exchanged, 1u);
  // Never destructive: no catalog changed, nothing shipped to or from
  // the shard whose summary could not be verified; the object merely
  // counts unverified (under-replicated) until a clean exchange.
  EXPECT_EQ(report.replicas_repaired, 0u);
  EXPECT_EQ(report.under_replicated, 1u);
  EXPECT_EQ(stacks_[0]->server.object_count(), count_before_0);
  EXPECT_EQ(stacks_[1]->server.object_count(), count_before_1);
  EXPECT_EQ(Count("repair.digest_rejects_total"), rejects_before + 1);

  repair_->SetDigestTap(nullptr);
  const RepairReport clean = repair_->Sync();
  EXPECT_EQ(clean.digests_rejected, 0u);
  EXPECT_EQ(clean.replicas_repaired, 0u);  // Data was never damaged.
  EXPECT_EQ(clean.under_replicated, 0u);
}

TEST_F(RepairTest, SyncScheduleIsDeterministicAcrossIdenticalRuns) {
  auto run = [](SimClock* clock, RepairReport* report,
                std::vector<CatalogDigest>* digests) {
    std::vector<std::unique_ptr<ShardStack>> stacks;
    for (size_t i = 0; i < 4; ++i) {
      stacks.push_back(std::make_unique<ShardStack>(clock));
    }
    std::vector<ObjectServer*> servers;
    for (auto& stack : stacks) servers.push_back(&stack->server);
    ShardRouter router(servers, clock, RangePlacement(10));
    RepairManager repair(&router, clock);

    CircuitBreaker::Options options;
    options.failure_threshold = 3;
    stacks[2]->link.ConfigureBreaker(options);
    for (int f = 0; f < 3; ++f) stacks[2]->link.breaker().RecordFailure();
    for (ObjectId id : {5u, 15u, 25u, 35u, 22u, 28u}) {
      ASSERT_TRUE(
          router.Store(TextObject(id, "det body " + std::to_string(id)))
              .ok());
    }
    clock->Advance(stacks[2]->link.breaker().options().cooldown_us + 1);
    ASSERT_TRUE(router.IsLive(2));
    *report = repair.Sync();
    for (auto& stack : stacks) {
      digests->push_back(stack->server.BuildCatalogDigest());
    }
  };

  SimClock clock_a, clock_b;
  RepairReport report_a, report_b;
  std::vector<CatalogDigest> digests_a, digests_b;
  run(&clock_a, &report_a, &digests_a);
  run(&clock_b, &report_b, &digests_b);

  EXPECT_GT(report_a.replicas_repaired, 0u);
  EXPECT_EQ(report_a.under_replicated, 0u);
  EXPECT_EQ(report_a.digests_exchanged, report_b.digests_exchanged);
  EXPECT_EQ(report_a.objects_checked, report_b.objects_checked);
  EXPECT_EQ(report_a.replicas_repaired, report_b.replicas_repaired);
  EXPECT_EQ(report_a.bytes_shipped, report_b.bytes_shipped);
  EXPECT_EQ(report_a.under_replicated, report_b.under_replicated);
  EXPECT_EQ(report_a.pending, report_b.pending);
  // Same seed, same schedule, same simulated time, identical catalogs.
  EXPECT_EQ(clock_a.Now(), clock_b.Now());
  EXPECT_EQ(digests_a, digests_b);
}

TEST_F(RepairTest, SingleShardSyncIsACleanNoOp) {
  BuildShards(1, 100);
  ASSERT_TRUE(router_->Store(TextObject(5, "solo body")).ok());
  const RepairReport report = repair_->Sync();
  EXPECT_EQ(report.digests_exchanged, 1u);
  EXPECT_EQ(report.objects_checked, 1u);
  EXPECT_EQ(report.replicas_repaired, 0u);
  EXPECT_EQ(report.under_replicated, 0u);
  EXPECT_EQ(report.pending, 0u);
  EXPECT_FALSE(repair_->sync_pending());
}

// --- Shard-count change ------------------------------------------------

TEST_F(RepairTest, ExpandShardsMigratesRangesThenFlipsRoutingAtomically) {
  BuildShards(2, 10);
  for (ObjectId id : {5u, 15u, 25u}) {
    ASSERT_TRUE(
        router_->Store(TextObject(id, "moving body " + std::to_string(id)))
            .ok());
  }
  // Under the 2-shard table, id 25 clamps onto shard 1.
  EXPECT_EQ(router_->PrimaryOf(25), 1u);
  const uint64_t epoch_before = router_->routing_epoch();
  const int64_t migrations_before = Count("repair.migrations_total");

  auto third = std::make_unique<ShardStack>(&clock_);
  auto report = repair_->ExpandShards(&third->server);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->under_replicated, 0u);
  EXPECT_GT(report->replicas_repaired, 0u);

  // The table flipped in one step: modulus 3, fresh epoch, no staged
  // remainder, and the new shard owns its placement range.
  EXPECT_EQ(router_->active_count(), 3u);
  EXPECT_FALSE(router_->expansion_staged());
  EXPECT_GT(router_->routing_epoch(), epoch_before);
  EXPECT_EQ(GaugeVal("router.routing_epoch"),
            static_cast<double>(router_->routing_epoch()));
  EXPECT_EQ(router_->PrimaryOf(25), 2u);
  // New chains: 15 -> {1,2}, 25 -> {2,0}; both live on the new shard.
  EXPECT_EQ(third->server.object_count(), 2u);
  EXPECT_EQ(Count("repair.migrations_total"), migrations_before + 1);
  for (ObjectId id : {5u, 15u, 25u}) {
    EXPECT_TRUE(router_->Fetch(id).ok()) << "id " << id;
  }
  EXPECT_EQ(router_->QueryAll({"moving"}),
            (std::vector<ObjectId>{5, 15, 25}));
}

TEST_F(RepairTest, ExpandShardsFailsClosedWhileAShardIsDark) {
  BuildShards(2, 10);
  ASSERT_TRUE(router_->Store(TextObject(15, "guarded body")).ok());
  TripBreaker(1);

  auto third = std::make_unique<ShardStack>(&clock_);
  auto refused = repair_->ExpandShards(&third->server);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsUnavailable());
  // Nothing changed: old modulus, nothing staged, no migration counted.
  EXPECT_EQ(router_->active_count(), 2u);
  EXPECT_FALSE(router_->expansion_staged());
  EXPECT_EQ(third->server.object_count(), 0u)
      << "refused expansion must not stream data";

  // Once the fabric heals the same call is retryable and completes.
  HealShard(1);
  auto report = repair_->ExpandShards(&third->server);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(router_->active_count(), 3u);
  EXPECT_EQ(report->under_replicated, 0u);
}

// --- Fault matrix ------------------------------------------------------

TEST_F(RepairTest, AppendTimeMediaErrorDegradesOneReplicaUntilRepaired) {
  BuildShards(2, 10);
  // Shard 1's media refuses the write outright: the Append-time fault
  // fails that replica's store (catalog and indexes untouched) while
  // the shard itself stays routable.
  stacks_[1]->device.SetWriteFaultHook([](uint64_t, std::string*) {
    return Status::Corruption("media error: write refused");
  });
  const int64_t store_errors_before =
      Count("router.replica_store_errors_total");
  ASSERT_TRUE(router_->Store(TextObject(15, "append fault body")).ok());
  stacks_[1]->device.SetWriteFaultHook(nullptr);

  EXPECT_EQ(stacks_[0]->server.object_count(), 1u);
  EXPECT_EQ(stacks_[1]->server.object_count(), 0u);
  EXPECT_GT(Count("router.replica_store_errors_total"),
            store_errors_before);
  EXPECT_EQ(router_->under_replicated(), std::set<ObjectId>{15});
  ASSERT_TRUE(repair_->sync_pending());

  // The shard never went dark, so repair needs no heal event: the
  // degraded-store debt alone drives the round.
  const RepairReport report = repair_->Sync();
  EXPECT_EQ(report.replicas_repaired, 1u);
  EXPECT_EQ(report.under_replicated, 0u);
  EXPECT_EQ(stacks_[1]->server.object_count(), 1u);
  EXPECT_TRUE(stacks_[1]->server.Fetch(15).ok());
}

TEST_F(RepairTest, ConcurrentSessionStormConvergesOnceHealed) {
  BuildShards(4, 10);
  std::vector<std::unique_ptr<FaultInjector>> chaos;
  for (size_t i = 0; i < stacks_.size(); ++i) {
    CircuitBreaker::Options options;
    options.failure_threshold = 3;
    stacks_[i]->link.ConfigureBreaker(options);
    chaos.push_back(std::make_unique<FaultInjector>(
        FaultProfile::Storm(), 0xBAD5EED0 + i, &clock_));
    stacks_[i]->link.SetFaultInjector(chaos.back().get());
  }

  // Twelve interleaved sessions store and immediately browse; the storm
  // trips breakers mid-flight, so stores land short and reads fail over.
  std::vector<ObjectId> ids;
  for (ObjectId id = 1; id <= 36; id += 3) {
    ids.push_back(id);
    ASSERT_TRUE(
        router_->Store(TextObject(id, "storm body " + std::to_string(id)))
            .ok());
    (void)router_->Fetch(id);
    (void)router_->GatherCards({"storm"});
  }

  // The weather passes: chaos off, cooldowns expire, breakers readmit.
  for (auto& stack : stacks_) stack->link.SetFaultInjector(nullptr);
  clock_.Advance(MillisToMicros(600));
  EXPECT_EQ(router_->live_count(), 4u);

  // However the storm scrambled the copies, anti-entropy converges the
  // archive back to full redundancy — possibly over a couple of rounds
  // (a round can leave work pending when a probe transfer fails).
  RepairReport report = repair_->Sync();
  for (int round = 0; round < 3 && report.under_replicated > 0; ++round) {
    report = repair_->Sync();
  }
  EXPECT_EQ(report.under_replicated, 0u);
  EXPECT_EQ(report.pending, 0u);
  EXPECT_TRUE(router_->under_replicated().empty());
  EXPECT_EQ(GaugeVal("router.under_replicated"), 0.0);
  for (ObjectId id : ids) {
    EXPECT_TRUE(router_->Fetch(id).ok()) << "id " << id;
  }
  EXPECT_EQ(router_->QueryAll({"storm"}), ids);
}

}  // namespace
}  // namespace minos::server
