#include "minos/core/audio_browser.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/voice/recognizer.h"
#include "minos/voice/synthesizer.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::VoiceAnchor;

constexpr char kMarkup[] =
    ".CHAPTER Examination\n.PP\n"
    "The patient presented with wrist pain after a fall. The x-ray shows "
    "a hairline fracture near the joint.\n"
    ".PP\nNo displacement is visible in the lateral view today.\n"
    ".CHAPTER Plan\n.PP\n"
    "Immobilize the wrist for three weeks. Schedule a follow up x-ray "
    "after the cast removal.\n";

class AudioBrowserTest : public ::testing::Test {
 protected:
  AudioBrowserTest() : messages_(&clock_, voice::SpeakerParams{}) {
    text::MarkupParser parser;
    auto doc = parser.Parse(kMarkup);
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(doc_);
    EXPECT_TRUE(track.ok());
    track_ = *track;
    voice::VoiceDocument vdoc(std::move(track).value());
    vdoc.TagFromAlignment(doc_, voice::EditingLevel::kParagraphs);
    obj_ = std::make_unique<MultimediaObject>(3);
    obj_->descriptor().driving_mode = object::DrivingMode::kAudio;
    EXPECT_TRUE(obj_->SetVoicePart(std::move(vdoc)).ok());
    image::Bitmap xray(32, 32);
    xray.FillRect(image::Rect{8, 8, 16, 16}, 210);
    EXPECT_TRUE(
        obj_->AddImage(image::Image::FromBitmap(std::move(xray))).ok());
  }

  void FinishObject(voice::AudioPagerParams pager = MakePager()) {
    ASSERT_TRUE(obj_->Archive().ok());
    auto browser = AudioBrowser::Open(obj_.get(), &screen_, &messages_,
                                      &clock_, &log_, pager);
    ASSERT_TRUE(browser.ok()) << browser.status().ToString();
    browser_ = std::move(browser).value();
  }

  static voice::AudioPagerParams MakePager() {
    voice::AudioPagerParams p;
    p.page_duration = SecondsToMicros(3);
    return p;
  }

  /// Sample span of the spoken word at text position of `word`.
  voice::SampleSpan SpanOfWord(const std::string& word) {
    const size_t pos = doc_.contents().find(word);
    EXPECT_NE(pos, std::string::npos);
    for (const voice::WordAlignment& w : track_.words) {
      if (w.text_offset == pos) return w.samples;
    }
    ADD_FAILURE() << "word not aligned: " << word;
    return {};
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  text::Document doc_;
  voice::VoiceTrack track_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<AudioBrowser> browser_;
};

TEST_F(AudioBrowserTest, OpenRejectsVisualMode) {
  obj_->descriptor().driving_mode = object::DrivingMode::kVisual;
  object::VisualPageSpec page;
  obj_->descriptor().pages.push_back(page);
  ASSERT_TRUE(obj_->Archive().ok());
  auto browser = AudioBrowser::Open(obj_.get(), &screen_, &messages_,
                                    &clock_, &log_);
  EXPECT_TRUE(browser.status().IsInvalidArgument());
}

TEST_F(AudioBrowserTest, PlayAdvancesClockByVoiceDuration) {
  FinishObject();
  const Micros duration = obj_->voice_part().pcm().Duration();
  ASSERT_TRUE(browser_->Play().ok());
  EXPECT_EQ(clock_.Now(), duration);
  EXPECT_EQ(browser_->position(), obj_->voice_part().pcm().size());
}

TEST_F(AudioBrowserTest, PlayForStopsEarly) {
  FinishObject();
  ASSERT_TRUE(browser_->PlayFor(SecondsToMicros(2)).ok());
  EXPECT_EQ(browser_->position(),
            obj_->voice_part().pcm().MicrosToSamples(SecondsToMicros(2)));
  ASSERT_TRUE(browser_->Interrupt().ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceInterrupted).size(), 1u);
}

TEST_F(AudioBrowserTest, ResumeContinues) {
  FinishObject();
  ASSERT_TRUE(browser_->PlayFor(SecondsToMicros(1)).ok());
  ASSERT_TRUE(browser_->Interrupt().ok());
  ASSERT_TRUE(browser_->Resume().ok());
  EXPECT_EQ(browser_->position(), obj_->voice_part().pcm().size());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceResumed).size(), 1u);
}

TEST_F(AudioBrowserTest, ResumeFromPageStartRewinds) {
  FinishObject();
  ASSERT_TRUE(browser_->PlayFor(SecondsToMicros(4)).ok());  // Into page 2.
  const int page = browser_->current_page();
  EXPECT_GE(page, 2);
  ASSERT_TRUE(browser_->ResumeFromPageStart().ok());
  // The resume event carries the page-start position.
  const auto resumed = log_.OfKind(EventKind::kVoiceResumed);
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(resumed[0].detail, "page-start");
}

TEST_F(AudioBrowserTest, PageNavigationSymmetricWithText) {
  FinishObject();
  EXPECT_EQ(browser_->current_page(), 1);
  ASSERT_TRUE(browser_->NextPage().ok());
  EXPECT_EQ(browser_->current_page(), 2);
  ASSERT_TRUE(browser_->PreviousPage().ok());
  EXPECT_EQ(browser_->current_page(), 1);
  EXPECT_TRUE(browser_->PreviousPage().IsNotFound());
  EXPECT_TRUE(browser_->GotoPage(999).IsNotFound());
  ASSERT_GE(browser_->page_count(), 3);
  ASSERT_TRUE(browser_->AdvancePages(2).ok());
  EXPECT_EQ(browser_->current_page(), 3);
}

TEST_F(AudioBrowserTest, AudioPageEventsDuringPlayback) {
  FinishObject();
  ASSERT_TRUE(browser_->Play().ok());
  const auto starts = log_.OfKind(EventKind::kAudioPageStarted);
  EXPECT_EQ(static_cast<int>(starts.size()), browser_->page_count());
  // Pages start at increasing times.
  for (size_t i = 1; i < starts.size(); ++i) {
    EXPECT_GT(starts[i].at, starts[i - 1].at);
  }
}

TEST_F(AudioBrowserTest, LogicalUnitNavigation) {
  FinishObject();
  ASSERT_TRUE(browser_->NextUnit(text::LogicalUnit::kChapter).ok());
  const auto reached = log_.OfKind(EventKind::kUnitReached);
  ASSERT_EQ(reached.size(), 1u);
  EXPECT_EQ(reached[0].detail, "chapter");
  // The landing sample is the second chapter's start.
  const auto& chapters =
      obj_->voice_part().Components(text::LogicalUnit::kChapter);
  ASSERT_EQ(chapters.size(), 2u);
  EXPECT_EQ(browser_->position(), chapters[1].span.begin);
  ASSERT_TRUE(browser_->PreviousUnit(text::LogicalUnit::kChapter).ok());
  EXPECT_EQ(browser_->position(), chapters[0].span.begin);
}

TEST_F(AudioBrowserTest, UntaggedUnitUnsupported) {
  FinishObject();
  EXPECT_TRUE(
      browser_->NextUnit(text::LogicalUnit::kSentence).IsUnsupported());
}

TEST_F(AudioBrowserTest, PauseRewindMovesBackward) {
  FinishObject();
  ASSERT_TRUE(browser_->PlayFor(SecondsToMicros(6)).ok());
  const size_t before = browser_->position();
  ASSERT_TRUE(browser_->RewindPauses(2, voice::PauseKind::kShort).ok());
  EXPECT_LT(browser_->position(), before);
  const auto rewound = log_.OfKind(EventKind::kRewound);
  ASSERT_EQ(rewound.size(), 1u);
  EXPECT_EQ(rewound[0].detail, "short");
}

TEST_F(AudioBrowserTest, LongPauseRewindLandsAtParagraph) {
  FinishObject();
  ASSERT_TRUE(browser_->Play().ok());
  ASSERT_TRUE(browser_->RewindPauses(1, voice::PauseKind::kLong).ok());
  // A long-pause rewind lands near a paragraph boundary silence.
  bool near = false;
  for (const voice::SilenceTruth& s : track_.silences) {
    if (s.level >= 1) {
      const int64_t d = static_cast<int64_t>(browser_->position()) -
                        static_cast<int64_t>(s.samples.end);
      if (d > -2000 && d < 2000) near = true;
    }
  }
  EXPECT_TRUE(near);
}

TEST_F(AudioBrowserTest, RewindPastStartRestartsFromZero) {
  FinishObject();
  ASSERT_TRUE(browser_->PlayFor(MillisToMicros(500)).ok());
  ASSERT_TRUE(browser_->RewindPauses(500, voice::PauseKind::kShort).ok());
  EXPECT_EQ(browser_->position(), 0u);
}

TEST_F(AudioBrowserTest, SpokenPatternRequiresIndex) {
  FinishObject();
  EXPECT_TRUE(
      browser_->FindSpokenPattern("fracture").IsFailedPrecondition());
}

TEST_F(AudioBrowserTest, SpokenPatternFindsPage) {
  FinishObject();
  voice::RecognizerParams params;
  params.hit_rate = 1.0;
  params.false_alarm_rate = 0.0;
  voice::Recognizer recognizer({"fracture", "cast"}, params);
  const auto result = recognizer.Recognize(obj_->voice_part().track());
  browser_->SetRecognitionIndex(
      voice::Recognizer::BuildIndex(result.utterances));
  ASSERT_TRUE(browser_->FindSpokenPattern("fracture").ok());
  const auto found = log_.OfKind(EventKind::kPatternFound);
  ASSERT_EQ(found.size(), 1u);
  // The browser moved to the page holding the spoken word.
  const voice::SampleSpan span = SpanOfWord("fracture");
  const int expected_page =
      voice::AudioPager::PageForSample(browser_->pages(), span.begin);
  EXPECT_EQ(browser_->current_page(), expected_page);
  EXPECT_TRUE(browser_->FindSpokenPattern("surgery").IsNotFound());
}

TEST_F(AudioBrowserTest, VoiceMessagePlaysBeforeSegment) {
  // Attach a voice message to the Plan chapter's voice span.
  const voice::SampleSpan plan = SpanOfWord("Immobilize");
  object::VoiceLogicalMessage m;
  m.transcript = "treatment instructions follow";
  m.voice_anchor = VoiceAnchor{plan.begin, plan.begin + 8000};
  obj_->descriptor().voice_messages.push_back(m);
  FinishObject();
  ASSERT_TRUE(browser_->Play().ok());
  const auto played = log_.OfKind(EventKind::kVoiceMessagePlayed);
  ASSERT_EQ(played.size(), 1u);
  // The message fired exactly when playback reached the anchor: the
  // simulated time at the event equals the duration of voice before it.
  const Micros voice_before =
      obj_->voice_part().pcm().SamplesToMicros(plan.begin);
  EXPECT_EQ(played[0].at, voice_before);
}

TEST_F(AudioBrowserTest, VoiceMessageReplaysOnRebranch) {
  const voice::SampleSpan plan = SpanOfWord("Immobilize");
  object::VoiceLogicalMessage m;
  m.transcript = "instructions";
  m.voice_anchor = VoiceAnchor{plan.begin, plan.begin + 8000};
  obj_->descriptor().voice_messages.push_back(m);
  FinishObject();
  ASSERT_TRUE(browser_->Play().ok());
  // Seek back before the segment and play again: branch-in fires again.
  ASSERT_TRUE(browser_->GotoPage(1).ok());
  ASSERT_TRUE(browser_->Play().ok());
  EXPECT_EQ(log_.OfKind(EventKind::kVoiceMessagePlayed).size(), 2u);
}

TEST_F(AudioBrowserTest, VisualMessagePinnedForSegmentDuration) {
  const voice::SampleSpan from = SpanOfWord("x-ray");
  const voice::SampleSpan to = SpanOfWord("joint.");
  object::VisualLogicalMessage m;
  m.text = "XRAY";
  m.image_index = 0;
  m.voice_anchors.push_back(VoiceAnchor{from.begin, to.end});
  obj_->descriptor().visual_messages.push_back(m);
  FinishObject();
  ASSERT_TRUE(browser_->Play().ok());
  const auto shown = log_.OfKind(EventKind::kVisualMessageShown);
  const auto hidden = log_.OfKind(EventKind::kVisualMessageHidden);
  ASSERT_EQ(shown.size(), 1u);
  ASSERT_EQ(hidden.size(), 1u);
  const voice::PcmBuffer& pcm = obj_->voice_part().pcm();
  EXPECT_EQ(shown[0].at, pcm.SamplesToMicros(from.begin));
  EXPECT_EQ(hidden[0].at, pcm.SamplesToMicros(to.end));
  EXPECT_GT(hidden[0].at, shown[0].at);
}

TEST_F(AudioBrowserTest, BranchIntoSegmentShowsMessageImmediately) {
  const voice::SampleSpan from = SpanOfWord("x-ray");
  const voice::SampleSpan to = SpanOfWord("joint.");
  object::VisualLogicalMessage m;
  m.text = "XRAY";
  m.voice_anchors.push_back(VoiceAnchor{from.begin, to.end});
  obj_->descriptor().visual_messages.push_back(m);
  FinishObject();
  // Seek into the middle of the segment, then play a little.
  const size_t mid = from.begin + (to.end - from.begin) / 2;
  ASSERT_TRUE(browser_->GotoPage(voice::AudioPager::PageForSample(
                                     browser_->pages(), mid))
                  .ok());
  // Play from the page start through the segment.
  ASSERT_TRUE(browser_->PlayFor(SecondsToMicros(1)).ok());
  EXPECT_GE(log_.OfKind(EventKind::kVisualMessageShown).size(), 0u);
  ASSERT_TRUE(browser_->Play().ok());
  EXPECT_GE(log_.OfKind(EventKind::kVisualMessageShown).size(), 1u);
}

TEST_F(AudioBrowserTest, MenuOptionsSymmetricWithVisual) {
  FinishObject();
  const auto options = browser_->MenuOptions();
  auto has = [&](const std::string& s) {
    return std::find(options.begin(), options.end(), s) != options.end();
  };
  // The page vocabulary matches the visual browser's.
  EXPECT_TRUE(has("next page"));
  EXPECT_TRUE(has("prev page"));
  EXPECT_TRUE(has("goto page"));
  // Plus the audio-specific commands.
  EXPECT_TRUE(has("play"));
  EXPECT_TRUE(has("rewind short pauses"));
  EXPECT_TRUE(has("rewind long pauses"));
  // Logical units tagged at insertion time appear.
  EXPECT_TRUE(has("next chapter"));
  EXPECT_TRUE(has("next paragraph"));
  EXPECT_FALSE(has("next sentence"));  // Not tagged at kParagraphs level.
}

TEST_F(AudioBrowserTest, RelevantLinksVisibleAtVoicePosition) {
  const voice::SampleSpan plan = SpanOfWord("Immobilize");
  object::RelevantObjectLink link;
  link.target = 55;
  link.indicator_label = "cast instructions";
  link.parent_voice_anchor = VoiceAnchor{plan.begin, plan.begin + 16000};
  obj_->descriptor().relevant_objects.push_back(link);
  FinishObject();
  EXPECT_TRUE(browser_->VisibleRelevantLinks().empty());
  // Move playback into the anchored span.
  ASSERT_TRUE(browser_->GotoPage(voice::AudioPager::PageForSample(
                                     browser_->pages(), plan.begin + 100))
                  .ok());
  // Position is at the page start, maybe before the anchor; nudge by
  // playing up to the anchor.
  const voice::PcmBuffer& pcm = obj_->voice_part().pcm();
  while (browser_->position() < plan.begin) {
    ASSERT_TRUE(browser_->PlayFor(pcm.SamplesToMicros(4000)).ok());
  }
  EXPECT_EQ(browser_->VisibleRelevantLinks().size(), 1u);
}

}  // namespace
}  // namespace minos::core
