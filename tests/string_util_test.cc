#include "minos/util/string_util.h"

#include <gtest/gtest.h>

namespace minos {
namespace {

TEST(SplitStringTest, BasicSplit) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(SplitWordsTest, CollapsesWhitespace) {
  const auto words = SplitWords("  the   quick\tbrown\nfox  ");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "the");
  EXPECT_EQ(words[3], "fox");
}

TEST(SplitWordsTest, EmptyAndAllSpace) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   \t\n").empty());
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi  "), "hi");
  EXPECT_EQ(TrimWhitespace("hi"), "hi");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
}

TEST(AsciiToLowerTest, LowersOnlyAscii) {
  EXPECT_EQ(AsciiToLower("MiNoS-1986"), "minos-1986");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("miniature", "mini"));
  EXPECT_FALSE(StartsWith("mini", "miniature"));
  EXPECT_TRUE(EndsWith("voice.pcm", ".pcm"));
  EXPECT_FALSE(EndsWith(".pcm", "voice.pcm"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(Fnv1a64Test, StableAndSensitive) {
  const uint64_t a = Fnv1a64("hello");
  EXPECT_EQ(a, Fnv1a64("hello"));
  EXPECT_NE(a, Fnv1a64("hellp"));
  EXPECT_NE(Fnv1a64(""), 0u);
}

TEST(FormatDurationTest, PicksUnits) {
  EXPECT_EQ(FormatDuration(500), "500us");
  EXPECT_EQ(FormatDuration(1500), "1ms");
  EXPECT_EQ(FormatDuration(2500000), "2.50s");
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512B");
  EXPECT_EQ(FormatBytes(2048), "2KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024), "3.0MB");
  EXPECT_EQ(FormatBytes(2ULL * 1024 * 1024 * 1024), "2.0GB");
}

}  // namespace
}  // namespace minos
