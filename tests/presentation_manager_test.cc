#include "minos/core/presentation_manager.h"

#include <gtest/gtest.h>

#include <map>

#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::core {
namespace {

using object::DrivingMode;
using object::MultimediaObject;
using object::Relevance;
using object::RelevantObjectLink;
using object::TextAnchor;
using object::VisualPageSpec;

/// An in-memory object library acting as the resolver.
class ObjectLibrary {
 public:
  void Put(MultimediaObject obj) {
    const storage::ObjectId id = obj.id();
    objects_.emplace(id, std::move(obj));
  }

  PresentationManager::ObjectResolver Resolver() {
    return [this](storage::ObjectId id) -> StatusOr<MultimediaObject> {
      auto it = objects_.find(id);
      if (it == objects_.end()) return Status::NotFound("no such object");
      // Hand out a copy via the archival round trip, as a server would.
      auto bytes = it->second.SerializeArchived();
      if (!bytes.ok()) return bytes.status();
      return MultimediaObject::DeserializeArchived(id, *bytes);
    };
  }

 private:
  std::map<storage::ObjectId, MultimediaObject> objects_;
};

text::Document ParseOrDie(std::string_view markup) {
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

MultimediaObject VisualObject(storage::ObjectId id,
                              const std::string& body) {
  MultimediaObject obj(id);
  text::Document doc = ParseOrDie(".PP\n" + body + "\n");
  obj.descriptor().layout.width = 40;
  obj.descriptor().layout.height = 8;
  EXPECT_TRUE(obj.SetTextPart(std::move(doc)).ok());
  VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  return obj;
}

MultimediaObject AudioObject(storage::ObjectId id,
                             const std::string& body) {
  MultimediaObject obj(id);
  text::Document doc = ParseOrDie(".PP\n" + body + "\n");
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(doc);
  EXPECT_TRUE(track.ok());
  voice::VoiceDocument vdoc(std::move(track).value());
  EXPECT_TRUE(obj.SetVoicePart(std::move(vdoc)).ok());
  obj.descriptor().driving_mode = DrivingMode::kAudio;
  return obj;
}

image::Image SubwayMap() {
  image::GraphicsImage g(300, 200);
  image::GraphicsObject station;
  station.shape = image::ShapeKind::kCircle;
  station.vertices = {{60, 60}};
  station.radius = 6;
  station.label = {image::LabelKind::kVoice, "union station", {60, 50}};
  g.Add(station);
  image::GraphicsObject hospital;
  hospital.shape = image::ShapeKind::kPolygon;
  hospital.vertices = {{200, 100}, {240, 100}, {240, 140}, {200, 140}};
  hospital.label = {image::LabelKind::kText, "city hospital", {220, 95}};
  g.Add(hospital);
  image::GraphicsObject river;
  river.shape = image::ShapeKind::kPolyline;
  river.vertices = {{0, 180}, {150, 170}, {299, 185}};
  g.Add(river);
  return image::Image::FromGraphics(std::move(g));
}

class PresentationManagerTest : public ::testing::Test {
 protected:
  PresentationManagerTest() : manager_(&screen_, &clock_) {
    manager_.SetResolver(library_.Resolver());
  }

  render::Screen screen_;
  SimClock clock_;
  ObjectLibrary library_;
  PresentationManager manager_;
};

TEST_F(PresentationManagerTest, OpenRequiresResolver) {
  PresentationManager bare(&screen_, &clock_);
  EXPECT_TRUE(bare.Open(1).IsFailedPrecondition());
}

TEST_F(PresentationManagerTest, OpenVisualObject) {
  MultimediaObject obj = VisualObject(1, "hello presentation manager");
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());
  EXPECT_TRUE(manager_.is_open());
  EXPECT_EQ(manager_.depth(), 1u);
  auto mode = manager_.CurrentMode();
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, DrivingMode::kVisual);
  EXPECT_NE(manager_.visual_browser(), nullptr);
  EXPECT_EQ(manager_.audio_browser(), nullptr);
  // The first page was presented.
  EXPECT_EQ(manager_.log().OfKind(EventKind::kPageShown).size(), 1u);
}

TEST_F(PresentationManagerTest, OpenAudioObject) {
  MultimediaObject obj = AudioObject(2, "spoken record for the archive");
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(2).ok());
  EXPECT_EQ(manager_.visual_browser(), nullptr);
  ASSERT_NE(manager_.audio_browser(), nullptr);
  EXPECT_TRUE(manager_.audio_browser()->Play().ok());
}

TEST_F(PresentationManagerTest, OpenMissingObject) {
  EXPECT_TRUE(manager_.Open(99).IsNotFound());
  EXPECT_FALSE(manager_.is_open());
}

TEST_F(PresentationManagerTest, EnterAndReturnRelevantObject) {
  // Parent: visual; relevant object: audio — modes must switch and then
  // be reestablished (§3).
  MultimediaObject child =
      AudioObject(20, "voice annotation about the survey area");
  ASSERT_TRUE(child.Archive().ok());
  library_.Put(std::move(child));

  MultimediaObject parent =
      VisualObject(10, "the survey area is shown with further notes");
  RelevantObjectLink link;
  link.target = 20;
  link.indicator_label = "voice notes";
  const size_t pos = parent.text_part().contents().find("survey");
  link.parent_text_anchor = TextAnchor{pos, pos + 11};
  parent.descriptor().relevant_objects.push_back(link);
  ASSERT_TRUE(parent.Archive().ok());
  library_.Put(std::move(parent));

  ASSERT_TRUE(manager_.Open(10).ok());
  const auto indicators = manager_.VisibleRelevantIndicators();
  ASSERT_EQ(indicators.size(), 1u);
  EXPECT_EQ(indicators[0], "voice notes");

  ASSERT_TRUE(manager_.EnterRelevantObject(0).ok());
  EXPECT_EQ(manager_.depth(), 2u);
  auto mode = manager_.CurrentMode();
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, DrivingMode::kAudio);
  EXPECT_EQ(manager_.log().OfKind(EventKind::kRelevantEntered).size(), 1u);

  ASSERT_TRUE(manager_.ReturnFromRelevantObject().ok());
  EXPECT_EQ(manager_.depth(), 1u);
  mode = manager_.CurrentMode();
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, DrivingMode::kVisual);
  EXPECT_EQ(manager_.log().OfKind(EventKind::kRelevantReturned).size(), 1u);
}

TEST_F(PresentationManagerTest, ReturnFromRootFails) {
  MultimediaObject obj = VisualObject(1, "root only");
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());
  EXPECT_TRUE(manager_.ReturnFromRelevantObject().IsFailedPrecondition());
}

TEST_F(PresentationManagerTest, EnterBadIndicatorIndex) {
  MultimediaObject obj = VisualObject(1, "no links here");
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());
  EXPECT_TRUE(manager_.EnterRelevantObject(0).IsOutOfRange());
}

TEST_F(PresentationManagerTest, RelevancesAvailableInsideLink) {
  MultimediaObject child = AudioObject(20, "related speech plays here");
  ASSERT_TRUE(child.Archive().ok());
  const size_t half = child.voice_part().pcm().size() / 2;
  library_.Put(std::move(child));

  MultimediaObject parent = VisualObject(10, "parent section text");
  RelevantObjectLink link;
  link.target = 20;
  link.indicator_label = "related voice";
  link.parent_text_anchor = TextAnchor{0, 10};
  Relevance rel;
  rel.voice_span = object::VoiceAnchor{0, half};
  link.relevances.push_back(rel);
  parent.descriptor().relevant_objects.push_back(link);
  ASSERT_TRUE(parent.Archive().ok());
  library_.Put(std::move(parent));

  ASSERT_TRUE(manager_.Open(10).ok());
  EXPECT_TRUE(manager_.CurrentRelevances().empty());  // Root has none.
  ASSERT_TRUE(manager_.EnterRelevantObject(0).ok());
  EXPECT_EQ(manager_.CurrentRelevances().size(), 1u);

  // Playing the voice relevance advances the clock by the span duration.
  const Micros before = clock_.Now();
  ASSERT_TRUE(manager_.PlayNextRelevantVoiceSegment().ok());
  EXPECT_GT(clock_.Now(), before);
  // Exhausted: wraps with OutOfRange.
  EXPECT_TRUE(manager_.PlayNextRelevantVoiceSegment().IsOutOfRange());
  // After the wrap the first relevance plays again.
  EXPECT_TRUE(manager_.PlayNextRelevantVoiceSegment().ok());
}

TEST_F(PresentationManagerTest, ImageLabelFacilities) {
  MultimediaObject obj = VisualObject(1, "map of the city follows");
  EXPECT_TRUE(obj.AddImage(SubwayMap()).ok());
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());

  // Pattern highlighting.
  auto ids = manager_.HighlightLabelPattern(0, "hospital");
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(ids->size(), 1u);

  // Inverse lookup: text label displayed, voice label played.
  auto text_label = manager_.SelectObjectAt(0, 220, 120);
  ASSERT_TRUE(text_label.ok());
  EXPECT_EQ(*text_label, "city hospital");
  EXPECT_EQ(manager_.log().OfKind(EventKind::kLabelShown).size(), 2u);

  const Micros before = clock_.Now();
  // Click on the circle's ring (the station icon outline).
  auto voice_label = manager_.SelectObjectAt(0, 66, 60);
  ASSERT_TRUE(voice_label.ok());
  EXPECT_EQ(*voice_label, "union station");
  EXPECT_GT(clock_.Now(), before);  // Voice label actually played.
  EXPECT_EQ(manager_.log().OfKind(EventKind::kLabelPlayed).size(), 1u);

  // Unlabeled object: NotFound.
  EXPECT_TRUE(manager_.SelectObjectAt(0, 150, 170).status().IsNotFound());

  // Play-all walks voice labels in id order.
  ASSERT_TRUE(manager_.PlayAllVoiceLabels(0).ok());
  EXPECT_EQ(manager_.log().OfKind(EventKind::kLabelPlayed).size(), 2u);

  // PlayVoiceLabel rejects text-labeled objects.
  EXPECT_TRUE(manager_.PlayVoiceLabel(0, 2).IsInvalidArgument());
}

TEST_F(PresentationManagerTest, ViewCreationClampsToImage) {
  MultimediaObject obj = VisualObject(1, "viewing a large image");
  EXPECT_TRUE(obj.AddImage(SubwayMap()).ok());
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());
  auto view = manager_.CreateView(0, image::Rect{250, 150, 100, 100});
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->rect(), (image::Rect{200, 100, 100, 100}));
  EXPECT_TRUE(manager_.CreateView(9, image::Rect{}).status().IsOutOfRange());
}

TEST_F(PresentationManagerTest, TourPlaysStopsAndMessages) {
  MultimediaObject obj = VisualObject(1, "tour of the old town");
  EXPECT_TRUE(obj.AddImage(SubwayMap()).ok());
  object::ObjectDescriptor::TourSpec tour;
  tour.image_index = 0;
  tour.view_width = 100;
  tour.view_height = 80;
  tour.positions = {{0, 0}, {40, 40}, {150, 60}};
  tour.audio_messages = {"welcome to the tour", "", "this ends the tour"};
  obj.descriptor().tours.push_back(tour);
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());

  auto end = manager_.PlayTour(0);
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(*end, 3u);
  EXPECT_EQ(manager_.log().OfKind(EventKind::kTourStop).size(), 3u);
  // Two stops had audio messages.
  EXPECT_EQ(manager_.log().OfKind(EventKind::kVoiceMessagePlayed).size(),
            2u);
  // The first stop's view covers the station -> its voice label played.
  EXPECT_GE(manager_.log().OfKind(EventKind::kLabelPlayed).size(), 1u);
  EXPECT_GT(clock_.Now(), 0);
}

TEST_F(PresentationManagerTest, TourInterruptionAndResume) {
  MultimediaObject obj = VisualObject(1, "interruptible tour");
  EXPECT_TRUE(obj.AddImage(SubwayMap()).ok());
  object::ObjectDescriptor::TourSpec tour;
  tour.image_index = 0;
  tour.view_width = 50;
  tour.view_height = 50;
  tour.positions = {{0, 0}, {50, 50}, {100, 100}, {150, 120}};
  obj.descriptor().tours.push_back(tour);
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());

  // Play only the first two stops (the user interrupts).
  auto paused = manager_.PlayTour(0, 0, 2);
  ASSERT_TRUE(paused.ok());
  EXPECT_EQ(*paused, 2u);
  // Resume from where the tour stopped.
  auto done = manager_.PlayTour(0, *paused);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, 4u);
  EXPECT_EQ(manager_.log().OfKind(EventKind::kTourStop).size(), 4u);
}

TEST_F(PresentationManagerTest, TourBadIndices) {
  MultimediaObject obj = VisualObject(1, "no tours");
  ASSERT_TRUE(obj.Archive().ok());
  library_.Put(std::move(obj));
  ASSERT_TRUE(manager_.Open(1).ok());
  EXPECT_TRUE(manager_.PlayTour(0).status().IsOutOfRange());
}

}  // namespace
}  // namespace minos::core
