#include <gtest/gtest.h>

#include "minos/image/image.h"
#include "minos/image/miniature.h"
#include "minos/image/tour.h"
#include "minos/image/view.h"

namespace minos::image {
namespace {

Image BigBitmap() {
  Bitmap bm(400, 300);
  bm.FillRect(Rect{100, 100, 50, 50}, 255);  // A landmark square.
  return Image::FromBitmap(std::move(bm));
}

Image LabeledMap() {
  GraphicsImage g(400, 300);
  GraphicsObject a;
  a.shape = ShapeKind::kCircle;
  a.vertices = {{50, 50}};
  a.radius = 8;
  a.label = {LabelKind::kVoice, "first landmark", {50, 40}};
  g.Add(a);
  GraphicsObject b;
  b.shape = ShapeKind::kCircle;
  b.vertices = {{350, 250}};
  b.radius = 8;
  b.label = {LabelKind::kVoice, "second landmark", {350, 240}};
  g.Add(b);
  return Image::FromGraphics(std::move(g));
}

TEST(ImageTest, BitmapAndGraphicsDimensions) {
  EXPECT_EQ(BigBitmap().width(), 400);
  EXPECT_EQ(LabeledMap().height(), 300);
  EXPECT_TRUE(BigBitmap().is_bitmap());
  EXPECT_TRUE(LabeledMap().is_graphics());
}

TEST(ImageTest, GraphicsFacilitiesUnsupportedOnBitmaps) {
  const Image img = BigBitmap();
  EXPECT_TRUE(img.graphics().status().IsUnsupported());
  EXPECT_TRUE(img.ObjectAt(0, 0).status().IsUnsupported());
  EXPECT_TRUE(img.MatchLabels("x").empty());
}

TEST(ImageTest, RegionByteSizeSmallerThanFull) {
  const Image img = BigBitmap();
  EXPECT_EQ(img.ByteSize(), 400u * 300u);
  EXPECT_EQ(img.RegionByteSize(Rect{0, 0, 100, 100}), 100u * 100u);
  EXPECT_LT(img.RegionByteSize(Rect{0, 0, 100, 100}), img.ByteSize());
}

TEST(ImageTest, SerializeRoundTripBothKinds) {
  auto bm = Image::Deserialize(BigBitmap().Serialize());
  ASSERT_TRUE(bm.ok());
  EXPECT_TRUE(bm->is_bitmap());
  EXPECT_EQ(bm->width(), 400);
  auto g = Image::Deserialize(LabeledMap().Serialize());
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->is_graphics());
}

TEST(ImageTest, RenderRegionMatchesFullRenderCrop) {
  const Image img = BigBitmap();
  const Bitmap full = img.Render();
  const Rect r{90, 90, 80, 80};
  const Bitmap region = img.RenderRegion(r);
  EXPECT_EQ(region, full.SubBitmap(r));
}

TEST(MiniatureTest, ScaleReducesSize) {
  auto mini = Miniature::Build(BigBitmap(), 4);
  ASSERT_TRUE(mini.ok());
  EXPECT_EQ(mini->raster().width(), 100);
  EXPECT_EQ(mini->raster().height(), 75);
  EXPECT_LT(mini->ByteSize(), BigBitmap().ByteSize() / 10);
}

TEST(MiniatureTest, RejectsBadArguments) {
  EXPECT_TRUE(Miniature::Build(BigBitmap(), 0).status().IsInvalidArgument());
  EXPECT_TRUE(Miniature::Build(Image(), 2).status().IsInvalidArgument());
}

TEST(MiniatureTest, LandmarkVisibleInMiniature) {
  auto mini = Miniature::Build(BigBitmap(), 4);
  ASSERT_TRUE(mini.ok());
  // The 50x50 landmark at (100,100) maps to (25,25)..(37,37).
  EXPECT_GT(mini->raster().At(30, 30), 100);
  EXPECT_EQ(mini->raster().At(5, 5), 0);
}

TEST(MiniatureTest, CoordinateMappingRoundTrips) {
  auto mini = Miniature::Build(BigBitmap(), 4);
  ASSERT_TRUE(mini.ok());
  const Rect on_mini{10, 10, 20, 15};
  const Rect full = mini->ToFullImage(on_mini);
  EXPECT_EQ(full, (Rect{40, 40, 80, 60}));
  EXPECT_EQ(mini->ToMiniature(full), on_mini);
}

TEST(MiniatureTest, GraphicsSketchShowsObjects) {
  auto mini = Miniature::Build(LabeledMap(), 4);
  ASSERT_TRUE(mini.ok());
  int inked = 0;
  for (int y = 0; y < mini->raster().height(); ++y) {
    for (int x = 0; x < mini->raster().width(); ++x) {
      if (mini->raster().At(x, y) > 0) ++inked;
    }
  }
  EXPECT_GT(inked, 10);
}

TEST(ViewTest, ClampsIntoImage) {
  const Image img = BigBitmap();
  View view(&img, Rect{-50, -50, 100, 100});
  EXPECT_EQ(view.rect(), (Rect{0, 0, 100, 100}));
  view.JumpTo(1000, 1000);
  EXPECT_EQ(view.rect(), (Rect{300, 200, 100, 100}));
}

TEST(ViewTest, MoveByDelta) {
  const Image img = BigBitmap();
  View view(&img, Rect{0, 0, 100, 100});
  view.Move(50, 30);
  EXPECT_EQ(view.rect(), (Rect{50, 30, 100, 100}));
  view.Move(-500, -500);
  EXPECT_EQ(view.rect(), (Rect{0, 0, 100, 100}));
}

TEST(ViewTest, ResizeAnchorsAtCenter) {
  const Image img = BigBitmap();
  View view(&img, Rect{100, 100, 100, 100});
  view.Resize(20, 20);
  EXPECT_EQ(view.rect(), (Rect{90, 90, 120, 120}));
  view.Resize(-40, -40);
  EXPECT_EQ(view.rect().w, 80);
}

TEST(ViewTest, RetrieveChargesBytes) {
  const Image img = BigBitmap();
  View view(&img, Rect{100, 100, 50, 50});
  EXPECT_EQ(view.bytes_transferred(), 0u);
  const Bitmap data = view.Retrieve();
  EXPECT_EQ(data.width(), 50);
  EXPECT_EQ(view.bytes_transferred(), 2500u);
  view.Retrieve();
  EXPECT_EQ(view.bytes_transferred(), 5000u);
}

TEST(ViewTest, RetrieveShowsLandmark) {
  const Image img = BigBitmap();
  View view(&img, Rect{100, 100, 50, 50});
  const Bitmap data = view.Retrieve();
  EXPECT_EQ(data.At(10, 10), 255);
}

TEST(ViewTest, VoiceLabelsPlayedOnEncounter) {
  const Image img = LabeledMap();
  View view(&img, Rect{200, 100, 100, 100});
  view.set_voice_option(true);
  // Jump onto the second landmark.
  auto labels = view.JumpTo(300, 200);
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].label.text, "second landmark");
  // Moving within it does not replay.
  labels = view.Move(5, 5);
  EXPECT_TRUE(labels.empty());
}

TEST(ViewTest, VoiceOptionOffSilencesLabels) {
  const Image img = LabeledMap();
  View view(&img, Rect{200, 100, 100, 100});
  EXPECT_TRUE(view.JumpTo(300, 200).empty());
}

TEST(ViewTest, GrowingViewEncountersNewLabels) {
  const Image img = LabeledMap();
  View view(&img, Rect{150, 100, 50, 50});
  view.set_voice_option(true);
  auto labels = view.Resize(500, 400);  // Now covers everything.
  EXPECT_EQ(labels.size(), 2u);
}

TEST(TourTest, RectAtUsesFixedSize) {
  Tour tour(80, 60);
  tour.AddStop(TourStop{{10, 20}, std::nullopt, std::nullopt,
                        SecondsToMicros(1)});
  tour.AddStop(TourStop{{50, 60}, std::nullopt, "a message", {}});
  EXPECT_EQ(tour.size(), 2u);
  auto r = tour.RectAt(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Rect{50, 60, 80, 60}));
  EXPECT_TRUE(tour.RectAt(2).status().IsOutOfRange());
}

}  // namespace
}  // namespace minos::image
