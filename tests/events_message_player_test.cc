#include <gtest/gtest.h>

#include "minos/core/events.h"
#include "minos/core/message_player.h"

namespace minos::core {
namespace {

TEST(EventLogTest, RecordsInOrder) {
  EventLog log;
  log.Add(EventKind::kPageShown, 100, 1, "");
  log.Add(EventKind::kVoicePlayed, 200, 0, "to 500");
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].kind, EventKind::kPageShown);
  EXPECT_EQ(log.events()[1].at, 200);
  EXPECT_EQ(log.events()[1].detail, "to 500");
}

TEST(EventLogTest, OfKindFilters) {
  EventLog log;
  log.Add(EventKind::kPageShown, 1, 1, "");
  log.Add(EventKind::kTourStop, 2, 0, "");
  log.Add(EventKind::kPageShown, 3, 2, "");
  const auto pages = log.OfKind(EventKind::kPageShown);
  ASSERT_EQ(pages.size(), 2u);
  EXPECT_EQ(pages[1].value, 2);
  EXPECT_TRUE(log.OfKind(EventKind::kRewound).empty());
}

TEST(EventLogTest, ToStringStableFormat) {
  EventLog log;
  log.Add(EventKind::kUnitReached, 42, 7, "chapter");
  EXPECT_EQ(log.ToString(), "42 unit-reached 7 chapter\n");
}

TEST(EventLogTest, DigestStableAndSensitive) {
  EventLog a, b;
  a.Add(EventKind::kPageShown, 1, 1, "");
  b.Add(EventKind::kPageShown, 1, 1, "");
  EXPECT_EQ(a.Digest(), b.Digest());
  b.Add(EventKind::kPageShown, 2, 2, "");
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(EventLogTest, ClearEmpties) {
  EventLog log;
  log.Add(EventKind::kPageShown, 1, 1, "");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(EventLogTest, EveryKindHasAName) {
  for (int k = 0; k <= static_cast<int>(EventKind::kRewound); ++k) {
    EXPECT_STRNE(EventKindName(static_cast<EventKind>(k)), "?");
  }
}

TEST(MessagePlayerTest, PlayAdvancesClockByAudioDuration) {
  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  EventLog log;
  const Micros duration =
      player.Play("a short message", &log, EventKind::kVoiceMessagePlayed, 3);
  EXPECT_GT(duration, 0);
  EXPECT_EQ(clock.Now(), duration);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.events()[0].at, 0);  // Logged at the start of playback.
  EXPECT_EQ(log.events()[0].value, 3);
  EXPECT_EQ(log.events()[0].detail, "a short message");
}

TEST(MessagePlayerTest, DurationMatchesPlay) {
  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  const Micros estimated = player.DurationOf("hello there friend");
  const Micros played =
      player.Play("hello there friend", nullptr, EventKind::kLabelPlayed, 0);
  EXPECT_EQ(estimated, played);
}

TEST(MessagePlayerTest, LongerTranscriptTakesLonger) {
  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  EXPECT_GT(player.DurationOf("one two three four five six seven"),
            player.DurationOf("one"));
}

TEST(MessagePlayerTest, NullLogIsSafe) {
  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  EXPECT_GT(player.Play("msg", nullptr, EventKind::kLabelPlayed, 0), 0);
}

TEST(MessagePlayerTest, EmptyTranscriptIsInstant) {
  SimClock clock;
  MessagePlayer player(&clock, voice::SpeakerParams{});
  EXPECT_EQ(player.DurationOf(""), 0);
}

}  // namespace
}  // namespace minos::core
