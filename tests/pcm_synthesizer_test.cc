#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/voice/pcm.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {
namespace {

text::Document ParseOrDie(std::string_view markup) {
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  EXPECT_TRUE(doc.ok());
  return std::move(doc).value();
}

TEST(PcmBufferTest, SizeAndDuration) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(8000, 0);
  EXPECT_EQ(pcm.size(), 8000u);
  EXPECT_EQ(pcm.Duration(), SecondsToMicros(1));
}

TEST(PcmBufferTest, SampleTimeConversions) {
  PcmBuffer pcm(8000);
  EXPECT_EQ(pcm.SamplesToMicros(4000), 500000);
  EXPECT_EQ(pcm.MicrosToSamples(500000), 4000u);
  EXPECT_EQ(pcm.MicrosToSamples(pcm.SamplesToMicros(12345)), 12345u);
}

TEST(PcmBufferTest, RmsEnergyOfSilenceIsZero) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(100, 0);
  EXPECT_DOUBLE_EQ(pcm.RmsEnergy(SampleSpan{0, 100}), 0.0);
}

TEST(PcmBufferTest, RmsEnergyOfFullScale) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(100, 32767);
  EXPECT_NEAR(pcm.RmsEnergy(SampleSpan{0, 100}), 1.0, 0.01);
}

TEST(PcmBufferTest, RmsEnergyClampsSpan) {
  PcmBuffer pcm(8000);
  pcm.AppendConstant(10, 16000);
  EXPECT_GT(pcm.RmsEnergy(SampleSpan{0, 1000}), 0.0);
  EXPECT_DOUBLE_EQ(pcm.RmsEnergy(SampleSpan{50, 60}), 0.0);
}

TEST(SampleSpanTest, Contains) {
  SampleSpan span{10, 20};
  EXPECT_TRUE(span.Contains(10));
  EXPECT_FALSE(span.Contains(20));
  EXPECT_EQ(span.length(), 10u);
}

class SynthesizerTest : public ::testing::Test {
 protected:
  SynthesizerTest()
      : doc_(ParseOrDie(
            ".PP\nOne two three. Four five.\n.PP\nSix seven eight.\n")) {}

  text::Document doc_;
};

TEST_F(SynthesizerTest, RequiresFineStructure) {
  text::Document empty;
  SpeechSynthesizer synth{SpeakerParams{}};
  EXPECT_TRUE(synth.Synthesize(empty).status().IsInvalidArgument());
}

TEST_F(SynthesizerTest, OneBurstPerWord) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  EXPECT_EQ(track->words.size(), 8u);
  EXPECT_EQ(track->silences.size(), 7u);  // One between each pair.
}

TEST_F(SynthesizerTest, AlignmentOffsetsMatchDocument) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  const auto& words = doc_.Components(text::LogicalUnit::kWord);
  ASSERT_EQ(words.size(), track->words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(track->words[i].text_offset, words[i].span.begin);
    EXPECT_EQ(track->words[i].word,
              doc_.contents().substr(words[i].span.begin,
                                     words[i].span.length()));
  }
}

TEST_F(SynthesizerTest, WordsAndSilencesTileTheBuffer) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  size_t expect_begin = 0;
  for (size_t i = 0; i < track->words.size(); ++i) {
    EXPECT_EQ(track->words[i].samples.begin, expect_begin);
    expect_begin = track->words[i].samples.end;
    if (i < track->silences.size()) {
      EXPECT_EQ(track->silences[i].samples.begin, expect_begin);
      expect_begin = track->silences[i].samples.end;
    }
  }
  EXPECT_EQ(expect_begin, track->pcm.size());
}

TEST_F(SynthesizerTest, SilenceLevelsFollowStructure) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  // Words: One two three. | Four five. || Six seven eight.
  // Silences after words: 0 0 1(sentence) 0 2(paragraph) 0 0
  ASSERT_EQ(track->silences.size(), 7u);
  EXPECT_EQ(track->silences[0].level, 0);
  EXPECT_EQ(track->silences[1].level, 0);
  EXPECT_EQ(track->silences[2].level, 1);
  EXPECT_EQ(track->silences[3].level, 0);
  EXPECT_EQ(track->silences[4].level, 2);
  EXPECT_EQ(track->silences[5].level, 0);
  EXPECT_EQ(track->silences[6].level, 0);
}

TEST_F(SynthesizerTest, ParagraphSilencesLongerThanWordSilences) {
  SpeakerParams params;
  params.jitter = 0.05;  // Keep the comparison robust.
  SpeechSynthesizer synth(params);
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  size_t word_silence = 0, para_silence = 0;
  for (const SilenceTruth& s : track->silences) {
    if (s.level == 0) {
      word_silence = std::max(word_silence, s.samples.length());
    }
    if (s.level == 2) para_silence = s.samples.length();
  }
  EXPECT_GT(para_silence, word_silence * 3);
}

TEST_F(SynthesizerTest, VoicedLouderThanSilence) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto track = synth.Synthesize(doc_);
  ASSERT_TRUE(track.ok());
  const double voiced = track->pcm.RmsEnergy(track->words[0].samples);
  const double silent = track->pcm.RmsEnergy(track->silences[0].samples);
  EXPECT_GT(voiced, 10 * silent);
}

TEST_F(SynthesizerTest, DeterministicForSeed) {
  SpeechSynthesizer synth{SpeakerParams{}};
  auto a = synth.Synthesize(doc_);
  auto b = synth.Synthesize(doc_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->pcm.samples(), b->pcm.samples());
}

TEST_F(SynthesizerTest, DifferentSeedsDiffer) {
  SpeakerParams p1, p2;
  p2.seed = 999;
  auto a = SpeechSynthesizer(p1).Synthesize(doc_);
  auto b = SpeechSynthesizer(p2).Synthesize(doc_);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->pcm.samples(), b->pcm.samples());
}

TEST(SynthesizeWordsTest, BareWordList) {
  SpeechSynthesizer synth{SpeakerParams{}};
  const VoiceTrack track = synth.SynthesizeWords({"hello", "world"});
  EXPECT_EQ(track.words.size(), 2u);
  EXPECT_EQ(track.silences.size(), 1u);
  EXPECT_GT(track.pcm.size(), 0u);
}

TEST(SynthesizeWordsTest, EmptyListYieldsEmptyTrack) {
  SpeechSynthesizer synth{SpeakerParams{}};
  const VoiceTrack track = synth.SynthesizeWords({});
  EXPECT_TRUE(track.pcm.empty());
}

TEST(SynthesizeWordsTest, LongerWordsLongerBursts) {
  SpeakerParams params;
  params.jitter = 0.0;
  SpeechSynthesizer synth(params);
  const VoiceTrack track =
      synth.SynthesizeWords({"a", "extraordinarily"});
  ASSERT_EQ(track.words.size(), 2u);
  EXPECT_GT(track.words[1].samples.length(),
            track.words[0].samples.length());
}

}  // namespace
}  // namespace minos::voice
