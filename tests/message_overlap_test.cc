// §2 details: "Voice logical messages may be attached to overlapping text
// segments or images" — all messages whose segments are branched into
// play; pattern highlighting works in the lower content region while a
// visual message is pinned.

#include <gtest/gtest.h>

#include "minos/core/visual_browser.h"
#include "minos/text/markup.h"

namespace minos::core {
namespace {

using object::MultimediaObject;
using object::TextAnchor;
using object::VisualPageSpec;

class OverlapTest : public ::testing::Test {
 protected:
  OverlapTest() : messages_(&clock_, voice::SpeakerParams{}) {
    obj_ = std::make_unique<MultimediaObject>(1);
    text::MarkupParser parser;
    std::string filler;
    for (int i = 0; i < 25; ++i) {
      filler += "Leading filler sentence " + std::to_string(i) + ". ";
    }
    auto doc = parser.Parse(".PP\n" + filler +
                            "The overlapping target phrase lives here "
                            "with more trailing words after it.\n");
    obj_->descriptor().layout.width = 40;
    obj_->descriptor().layout.height = 8;
    obj_->SetTextPart(std::move(doc).value()).ok();
    auto formatted = FormatObjectText(*obj_);
    for (size_t i = 0; i < formatted->pages.size(); ++i) {
      VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      obj_->descriptor().pages.push_back(page);
    }
  }

  void Finish() {
    ASSERT_TRUE(obj_->Archive().ok());
    auto browser = VisualBrowser::Open(obj_.get(), &screen_, &messages_,
                                       &clock_, &log_);
    ASSERT_TRUE(browser.ok());
    browser_ = std::move(browser).value();
  }

  size_t TargetPos() const {
    return obj_->text_part().contents().find("overlapping target");
  }

  SimClock clock_;
  render::Screen screen_;
  MessagePlayer messages_;
  EventLog log_;
  std::unique_ptr<MultimediaObject> obj_;
  std::unique_ptr<VisualBrowser> browser_;
};

TEST_F(OverlapTest, OverlappingVoiceMessagesAllPlay) {
  const size_t pos = TargetPos();
  object::VoiceLogicalMessage wide;
  wide.transcript = "wide segment note";
  wide.text_anchor = TextAnchor{pos - 10, pos + 60};
  object::VoiceLogicalMessage narrow;
  narrow.transcript = "narrow segment note";
  narrow.text_anchor = TextAnchor{pos, pos + 18};
  obj_->descriptor().voice_messages.push_back(wide);
  obj_->descriptor().voice_messages.push_back(narrow);
  Finish();
  ASSERT_TRUE(browser_->FindPattern("overlapping").ok());
  const auto played = log_.OfKind(EventKind::kVoiceMessagePlayed);
  ASSERT_EQ(played.size(), 2u);
  EXPECT_EQ(played[0].detail, "wide segment note");
  EXPECT_EQ(played[1].detail, "narrow segment note");
}

TEST_F(OverlapTest, HighlightWorksUnderPinnedMessage) {
  const size_t pos = TargetPos();
  object::VisualLogicalMessage pinned;
  pinned.text = "PINNED";
  pinned.text_anchors.push_back(TextAnchor{pos, pos + 30});
  obj_->descriptor().visual_messages.push_back(pinned);
  Finish();
  // FindPattern lands on the page, pins the message, and highlights the
  // hit in the *lower* content region.
  ASSERT_TRUE(browser_->FindPattern("overlapping").ok());
  ASSERT_EQ(log_.OfKind(EventKind::kVisualMessageShown).size(), 1u);
  // The hit word must be highlightable again explicitly, proving the
  // content region is tracked correctly while pinned.
  EXPECT_TRUE(browser_->HighlightOffset(TargetPos()).ok());
  // The message area carries the pinned headline ink.
  const auto msg = screen_.MessageArea();
  int ink = 0;
  for (int y = msg.y; y < msg.y + msg.h; ++y) {
    for (int x = msg.x; x < msg.x + msg.w; ++x) {
      if (screen_.framebuffer().At(x, y) > 0) ++ink;
    }
  }
  EXPECT_GT(ink, 30);
}

TEST_F(OverlapTest, OverlappingVisualMessagesFirstWins) {
  const size_t pos = TargetPos();
  object::VisualLogicalMessage first;
  first.text = "FIRST";
  first.text_anchors.push_back(TextAnchor{pos, pos + 30});
  object::VisualLogicalMessage second;
  second.text = "SECOND";
  second.text_anchors.push_back(TextAnchor{pos - 5, pos + 40});
  obj_->descriptor().visual_messages.push_back(first);
  obj_->descriptor().visual_messages.push_back(second);
  Finish();
  ASSERT_TRUE(browser_->FindPattern("overlapping").ok());
  const auto shown = log_.OfKind(EventKind::kVisualMessageShown);
  ASSERT_EQ(shown.size(), 1u);  // Exactly one pinned at a time.
  EXPECT_EQ(shown[0].detail, "FIRST");
}

}  // namespace
}  // namespace minos::core
