#include "minos/object/descriptor.h"

#include <gtest/gtest.h>

namespace minos::object {
namespace {

ObjectDescriptor FullDescriptor() {
  ObjectDescriptor d;
  d.driving_mode = DrivingMode::kAudio;
  d.layout.width = 48;
  d.layout.height = 12;
  d.layout.paragraph_indent = 3;
  d.layout.chapter_starts_page = false;

  d.parts.push_back({"text", storage::DataType::kText, false, 0, 100});
  d.parts.push_back({"image:0", storage::DataType::kImage, true, 4096, 500});

  VisualPageSpec p0;
  p0.kind = VisualPageSpec::Kind::kNormal;
  p0.text_page = 1;
  p0.images.push_back({0, image::Rect{10, 20, 30, 40}});
  d.pages.push_back(p0);
  VisualPageSpec p1;
  p1.kind = VisualPageSpec::Kind::kTransparency;
  d.pages.push_back(p1);
  VisualPageSpec p2;
  p2.kind = VisualPageSpec::Kind::kOverwrite;
  d.pages.push_back(p2);

  VoiceLogicalMessage vm;
  vm.transcript = "note the fracture here";
  vm.text_anchor = TextAnchor{10, 50};
  vm.image_index = 0;
  d.voice_messages.push_back(vm);
  VoiceLogicalMessage vm2;
  vm2.transcript = "point message";
  vm2.voice_anchor = VoiceAnchor{800, 800};
  d.voice_messages.push_back(vm2);

  VisualLogicalMessage xm;
  xm.text = "X-RAY 42";
  xm.image_index = 0;
  xm.voice_anchors.push_back(VoiceAnchor{100, 900});
  xm.text_anchors.push_back(TextAnchor{0, 60});
  xm.display_once = true;
  d.visual_messages.push_back(xm);

  d.transparency_sets.push_back({1, 1, TransparencyDisplay::kSeparate});
  ProcessSimulationSpec sim;
  sim.first_page = 0;
  sim.count = 3;
  sim.page_interval = MillisToMicros(750);
  sim.page_messages = {"one", "", "three"};
  d.process_simulations.push_back(sim);

  RelevantObjectLink link;
  link.target = 77;
  link.indicator_label = "hospitals";
  link.parent_text_anchor = TextAnchor{5, 25};
  Relevance rel;
  rel.image_index = 0;
  rel.image_object_id = 3;
  link.relevances.push_back(rel);
  Relevance rel2;
  rel2.voice_span = VoiceAnchor{0, 500};
  link.relevances.push_back(rel2);
  d.relevant_objects.push_back(link);

  ObjectDescriptor::TourSpec tour;
  tour.image_index = 0;
  tour.view_width = 80;
  tour.view_height = 60;
  tour.positions = {{0, 0}, {40, 30}, {80, 60}};
  tour.audio_messages = {"start", "", "end"};
  d.tours.push_back(tour);
  return d;
}

TEST(DescriptorTest, RoundTripPreservesEverything) {
  const ObjectDescriptor d = FullDescriptor();
  auto r = ObjectDescriptor::Deserialize(d.Serialize());
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  EXPECT_EQ(r->driving_mode, DrivingMode::kAudio);
  EXPECT_EQ(r->layout.width, 48);
  EXPECT_EQ(r->layout.height, 12);
  EXPECT_EQ(r->layout.paragraph_indent, 3);
  EXPECT_FALSE(r->layout.chapter_starts_page);

  ASSERT_EQ(r->parts.size(), 2u);
  EXPECT_EQ(r->parts[1].name, "image:0");
  EXPECT_TRUE(r->parts[1].in_archiver);
  EXPECT_EQ(r->parts[1].offset, 4096u);

  ASSERT_EQ(r->pages.size(), 3u);
  EXPECT_EQ(r->pages[0].kind, VisualPageSpec::Kind::kNormal);
  EXPECT_EQ(r->pages[0].text_page, 1u);
  ASSERT_EQ(r->pages[0].images.size(), 1u);
  EXPECT_EQ(r->pages[0].images[0].placement, (image::Rect{10, 20, 30, 40}));
  EXPECT_EQ(r->pages[1].kind, VisualPageSpec::Kind::kTransparency);
  EXPECT_EQ(r->pages[2].kind, VisualPageSpec::Kind::kOverwrite);

  ASSERT_EQ(r->voice_messages.size(), 2u);
  EXPECT_EQ(r->voice_messages[0].transcript, "note the fracture here");
  EXPECT_EQ(*r->voice_messages[0].text_anchor, (TextAnchor{10, 50}));
  EXPECT_EQ(*r->voice_messages[0].image_index, 0u);
  EXPECT_FALSE(r->voice_messages[0].voice_anchor.has_value());
  EXPECT_EQ(*r->voice_messages[1].voice_anchor, (VoiceAnchor{800, 800}));

  ASSERT_EQ(r->visual_messages.size(), 1u);
  EXPECT_EQ(r->visual_messages[0].text, "X-RAY 42");
  EXPECT_TRUE(r->visual_messages[0].display_once);
  ASSERT_EQ(r->visual_messages[0].voice_anchors.size(), 1u);
  ASSERT_EQ(r->visual_messages[0].text_anchors.size(), 1u);

  ASSERT_EQ(r->transparency_sets.size(), 1u);
  EXPECT_EQ(r->transparency_sets[0].method, TransparencyDisplay::kSeparate);

  ASSERT_EQ(r->process_simulations.size(), 1u);
  EXPECT_EQ(r->process_simulations[0].page_interval, MillisToMicros(750));
  EXPECT_EQ(r->process_simulations[0].page_messages.size(), 3u);

  ASSERT_EQ(r->relevant_objects.size(), 1u);
  EXPECT_EQ(r->relevant_objects[0].target, 77u);
  ASSERT_EQ(r->relevant_objects[0].relevances.size(), 2u);
  EXPECT_EQ(*r->relevant_objects[0].relevances[0].image_object_id, 3u);
  EXPECT_EQ(r->relevant_objects[0].relevances[1].voice_span->end, 500u);

  ASSERT_EQ(r->tours.size(), 1u);
  EXPECT_EQ(r->tours[0].positions.size(), 3u);
  EXPECT_EQ(r->tours[0].positions[1], (image::Point{40, 30}));
  EXPECT_EQ(r->tours[0].audio_messages[2], "end");
}

TEST(DescriptorTest, EmptyRoundTrip) {
  ObjectDescriptor d;
  auto r = ObjectDescriptor::Deserialize(d.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->driving_mode, DrivingMode::kVisual);
  EXPECT_TRUE(r->pages.empty());
  EXPECT_TRUE(r->parts.empty());
}

TEST(DescriptorTest, TruncationRejectedAtEveryPrefix) {
  const std::string bytes = FullDescriptor().Serialize();
  for (size_t cut = 0; cut < bytes.size(); cut += 7) {
    auto r = ObjectDescriptor::Deserialize(
        std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(DescriptorTest, BadDrivingModeRejected) {
  std::string bytes = FullDescriptor().Serialize();
  bytes[0] = 9;
  EXPECT_TRUE(
      ObjectDescriptor::Deserialize(bytes).status().IsCorruption());
}

TEST(DescriptorTest, FindPart) {
  const ObjectDescriptor d = FullDescriptor();
  auto p = d.FindPart("text");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length, 100u);
  EXPECT_TRUE(d.FindPart("nope").status().IsNotFound());
}

TEST(DescriptorTest, RebaseShiftsOnlyCompositionOffsets) {
  ObjectDescriptor d = FullDescriptor();
  d.RebaseCompositionOffsets(1000);
  EXPECT_EQ(d.parts[0].offset, 1000u);   // Composition-resident.
  EXPECT_EQ(d.parts[1].offset, 4096u);   // Archiver pointer untouched.
}

TEST(AnchorTest, RangeAnchorContainment) {
  TextAnchor a{10, 20};
  EXPECT_TRUE(a.Contains(10));
  EXPECT_TRUE(a.Contains(19));
  EXPECT_FALSE(a.Contains(20));
  EXPECT_FALSE(a.Contains(9));
}

TEST(AnchorTest, PointAnchorContainsOnlyItsPoint) {
  VoiceAnchor p{15, 15};
  EXPECT_TRUE(p.Contains(15));
  EXPECT_FALSE(p.Contains(14));
  EXPECT_FALSE(p.Contains(16));
}

}  // namespace
}  // namespace minos::object
