// Edge cases across modules: degenerate screen layouts, empty
// transparency selections, audio-mode relevant-object entry, multiple
// transparency sets, and pager snapping degenerate inputs.

#include <gtest/gtest.h>

#include <map>

#include "minos/core/presentation_manager.h"
#include "minos/format/object_formatter.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos {
namespace {

using object::MultimediaObject;
using object::VisualPageSpec;

TEST(ScreenEdgeTest, MessageHeightLargerThanScreenClamps) {
  render::ScreenLayout layout;
  layout.height = 100;
  layout.message_height = 500;
  render::Screen screen(layout);
  EXPECT_EQ(screen.MessageArea().h, screen.PageArea().h);
  EXPECT_EQ(screen.LowerPageArea().h, 0);
}

TEST(ScreenEdgeTest, ZeroMenuWidth) {
  render::ScreenLayout layout;
  layout.menu_width = 0;
  render::Screen screen(layout);
  EXPECT_EQ(screen.PageArea().w, layout.width);
  EXPECT_EQ(screen.MenuArea().w, 0);
  screen.SetMenu({"option"});  // Draws nothing, crashes never.
}

TEST(AudioPagerEdgeTest, SnapNeverCreatesEmptyPages) {
  voice::PcmBuffer pcm(8000);
  pcm.AppendConstant(8000 * 20, 0);
  // A pathological pause right at the start of every page.
  std::vector<voice::Pause> pauses;
  for (size_t s = 0; s < pcm.size(); s += 8000 * 5) {
    pauses.push_back(voice::Pause{{s, s + 100}});
  }
  voice::AudioPagerParams params;
  params.page_duration = SecondsToMicros(5);
  params.snap_tolerance = 0.5;
  voice::AudioPager pager(params);
  const auto pages = pager.Paginate(pcm, pauses);
  for (const voice::AudioPage& p : pages) {
    EXPECT_GT(p.samples.length(), 0u);
  }
  EXPECT_EQ(pages.back().samples.end, pcm.size());
}

TEST(TransparencyEdgeTest, EmptySelectionShowsBaseOnly) {
  MultimediaObject obj(1);
  image::Bitmap base_bm(40, 40);
  base_bm.FillRect(image::Rect{0, 0, 20, 20}, 100);
  obj.AddImage(image::Image::FromBitmap(std::move(base_bm))).ok();
  image::Bitmap overlay_bm(40, 40);
  overlay_bm.FillRect(image::Rect{20, 20, 20, 20}, 200);
  obj.AddImage(image::Image::FromBitmap(std::move(overlay_bm))).ok();
  VisualPageSpec base;
  base.images.push_back({0, image::Rect{0, 0, 40, 40}});
  obj.descriptor().pages.push_back(base);
  VisualPageSpec t;
  t.kind = VisualPageSpec::Kind::kTransparency;
  t.images.push_back({1, image::Rect{0, 0, 40, 40}});
  obj.descriptor().pages.push_back(t);
  obj.descriptor().transparency_sets.push_back(
      {1, 1, object::TransparencyDisplay::kSeparate});
  ASSERT_TRUE(obj.Archive().ok());

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser =
      core::VisualBrowser::Open(&obj, &screen, &messages, &clock, &log);
  ASSERT_TRUE(browser.ok());
  ASSERT_TRUE((*browser)->ShowSelectedTransparencies(0, {}).ok());
  // Base ink present, overlay ink absent.
  EXPECT_GT(screen.framebuffer().At(5, 5), 0);
  EXPECT_EQ(screen.framebuffer().At(25, 25), 0);
  // Out-of-set selection rejected.
  EXPECT_TRUE(
      (*browser)->ShowSelectedTransparencies(0, {7}).IsOutOfRange());
  EXPECT_TRUE(
      (*browser)->ShowSelectedTransparencies(3, {}).IsOutOfRange());
}

TEST(FormatterEdgeTest, TwoTransparencySetsSeparatedByImage) {
  format::ObjectWorkspace ws("two-sets");
  auto serialized = [](uint8_t ink) {
    image::Bitmap bm(16, 16);
    bm.FillRect(image::Rect{0, 0, 8, 8}, ink);
    return image::Image::FromBitmap(std::move(bm)).Serialize();
  };
  ws.SetSynthesis(
      "@IMAGE a\n@TRANSPARENCY b\n@IMAGE c\n@TRANSPARENCY d\n"
      "@TRANSPARENCY e\n");
  for (const char* name : {"a", "b", "c", "d", "e"}) {
    ws.AddDataFile(name, storage::DataType::kImage,
                   serialized(static_cast<uint8_t>(name[0])));
  }
  format::ObjectFormatter formatter;
  auto obj = formatter.Format(ws, 9);
  ASSERT_TRUE(obj.ok());
  const auto& sets = obj->descriptor().transparency_sets;
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].count, 1u);
  EXPECT_EQ(sets[1].count, 2u);
  EXPECT_TRUE(obj->Archive().ok());
}

TEST(RelevantFromAudioTest, AudioParentEntersVisualChild) {
  std::map<storage::ObjectId, MultimediaObject> library;
  {
    MultimediaObject child(30);
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\nthe visual child body\n");
    child.SetTextPart(std::move(doc).value()).ok();
    VisualPageSpec page;
    page.text_page = 1;
    child.descriptor().pages.push_back(page);
    ASSERT_TRUE(child.Archive().ok());
    library.emplace(30, std::move(child));
  }
  {
    MultimediaObject parent(31);
    parent.descriptor().driving_mode = object::DrivingMode::kAudio;
    text::MarkupParser parser;
    auto doc = parser.Parse(".PP\nspoken parent words here today\n");
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    auto track = synth.Synthesize(*doc);
    const size_t half = track->pcm.size() / 2;
    parent.SetVoicePart(voice::VoiceDocument(std::move(track).value()))
        .ok();
    object::RelevantObjectLink link;
    link.target = 30;
    link.indicator_label = "text twin";
    link.parent_voice_anchor = object::VoiceAnchor{0, half};
    parent.descriptor().relevant_objects.push_back(link);
    ASSERT_TRUE(parent.Archive().ok());
    library.emplace(31, std::move(parent));
  }

  SimClock clock;
  render::Screen screen;
  core::PresentationManager pm(&screen, &clock);
  pm.SetResolver([&library](storage::ObjectId id)
                     -> StatusOr<MultimediaObject> {
    auto it = library.find(id);
    if (it == library.end()) return Status::NotFound("none");
    return it->second;
  });
  ASSERT_TRUE(pm.Open(31).ok());
  ASSERT_NE(pm.audio_browser(), nullptr);
  // At position 0 the voice anchor covers us: the indicator shows.
  ASSERT_EQ(pm.VisibleRelevantIndicators().size(), 1u);
  ASSERT_TRUE(pm.EnterRelevantObject(0).ok());
  EXPECT_NE(pm.visual_browser(), nullptr);  // Child's own mode.
  EXPECT_EQ(pm.audio_browser(), nullptr);
  ASSERT_TRUE(pm.ReturnFromRelevantObject().ok());
  EXPECT_NE(pm.audio_browser(), nullptr);  // Parent's mode restored.
}

TEST(MenuRenderEdgeTest, LongOptionLabelsTruncateInsideStrip) {
  render::Screen screen;
  screen.SetMenu({std::string(200, 'x')});
  // Nothing leaks into the page area.
  const auto page = screen.PageArea();
  int ink = 0;
  for (int y = page.y; y < page.y + page.h; ++y) {
    for (int x = page.x; x < page.x + page.w; ++x) {
      if (screen.framebuffer().At(x, y) > 0) ++ink;
    }
  }
  EXPECT_EQ(ink, 0);
}

TEST(ViewEdgeTest, ViewLargerThanImageClampsToWholeImage) {
  image::Bitmap bm(50, 40);
  const image::Image img = image::Image::FromBitmap(std::move(bm));
  image::View view(&img, image::Rect{0, 0, 500, 400});
  EXPECT_EQ(view.rect(), (image::Rect{0, 0, 50, 40}));
  const image::Bitmap data = view.Retrieve();
  EXPECT_EQ(data.width(), 50);
  EXPECT_EQ(data.height(), 40);
}

}  // namespace
}  // namespace minos
