#include "minos/storage/request_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "minos/obs/trace.h"

namespace minos::storage {
namespace {

BlockDevice MakeDevice(SimClock* clock) {
  DeviceCostModel cost;
  cost.seek_base = 100;
  cost.seek_per_block = 1.0;
  cost.rotational_latency = 0;
  cost.transfer_per_block = 1;
  return BlockDevice("d", 1000, 16, cost, false, clock);
}

IoRequest Req(uint64_t id, uint64_t block, Micros arrival,
              IoPriority priority = IoPriority::kForeground) {
  IoRequest r;
  r.id = id;
  r.block = block;
  r.count = 1;
  r.arrival_time = arrival;
  r.priority = priority;
  return r;
}

std::vector<IoRequest> ThreeRequestsAtOnce() {
  // All arrive at t=0; blocks 900, 50, 500.
  return {Req(1, 900, 0), Req(2, 50, 0), Req(3, 500, 0)};
}

std::vector<uint64_t> CompletionOrder(const std::vector<IoCompletion>& cs) {
  std::vector<uint64_t> ids;
  for (const IoCompletion& c : cs) ids.push_back(c.id);
  return ids;
}

TEST(RequestSchedulerTest, FcfsServesInArrivalOrder) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
  auto done = sched.Run(ThreeRequestsAtOnce());
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(RequestSchedulerTest, SstfPicksNearestFirst) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Head starts at 0: nearest is 50, then 500, then 900.
  auto done = sched.Run(ThreeRequestsAtOnce());
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{2, 3, 1}));
}

TEST(RequestSchedulerTest, ScanSweepsUpThenDown) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  // Seed head position at 400 by a direct read.
  std::string scratch;
  ASSERT_TRUE(dev.Read(399, 1, &scratch).ok());  // Head at 400.
  RequestScheduler sched(&dev, SchedulingPolicy::kScan);
  auto done = sched.Run(ThreeRequestsAtOnce());
  // Sweep up from 400: 500, 900; then down: 50.
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{3, 1, 2}));
}

TEST(RequestSchedulerTest, ForegroundRequestsPreemptBackgroundOnes) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Head starts at 0. The background (prefetch) request at block 10 is
  // by far the cheapest seek, but the foreground requests at 900 and
  // 500 must be served first anyway.
  std::vector<IoRequest> reqs = {
      Req(1, 10, 0, IoPriority::kBackground),
      Req(2, 900, 0, IoPriority::kForeground),
      Req(3, 500, 0, IoPriority::kForeground),
  };
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{3, 2, 1}));
}

TEST(RequestSchedulerTest, AllBackgroundBatchKeepsThePolicyOrder) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  std::vector<IoRequest> reqs = ThreeRequestsAtOnce();
  for (IoRequest& r : reqs) r.priority = IoPriority::kBackground;
  // With no foreground traffic, background requests schedule normally.
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{2, 3, 1}));
}

TEST(RequestSchedulerTest, SstfBeatsFcfsOnTotalSeek) {
  SimClock c1, c2;
  BlockDevice d1 = MakeDevice(&c1);
  BlockDevice d2 = MakeDevice(&c2);
  // A seek-heavy pattern: alternating far ends.
  std::vector<IoRequest> reqs;
  for (uint64_t i = 0; i < 20; ++i) {
    reqs.push_back(Req(i, (i % 2 == 0) ? i * 10 : 900 - i * 10, 0));
  }
  RequestScheduler fcfs(&d1, SchedulingPolicy::kFcfs);
  RequestScheduler sstf(&d2, SchedulingPolicy::kSstf);
  auto done_fcfs = fcfs.Run(reqs);
  auto done_sstf = sstf.Run(reqs);
  const QueueingStats sf = RequestScheduler::Summarize(reqs, done_fcfs);
  const QueueingStats ss = RequestScheduler::Summarize(reqs, done_sstf);
  EXPECT_LT(ss.makespan_us, sf.makespan_us);
}

TEST(RequestSchedulerTest, RespectsArrivalTimes) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Request 2 is nearest but arrives much later; request 1 must go first.
  std::vector<IoRequest> reqs = {Req(1, 800, 0), Req(2, 10, 5000000)};
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{1, 2}));
  // The second service cannot start before its arrival.
  EXPECT_GE(done[1].start_time, 5000000);
}

TEST(RequestSchedulerTest, QueueingDelayGrowsWithLoad) {
  auto run_with = [](int n) {
    SimClock clock;
    BlockDevice dev = MakeDevice(&clock);
    RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
    std::vector<IoRequest> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(Req(static_cast<uint64_t>(i),
                         static_cast<uint64_t>((i * 37) % 1000), 0));
    }
    auto done = sched.Run(reqs);
    return RequestScheduler::Summarize(reqs, done).mean_queueing_delay_us;
  };
  EXPECT_GT(run_with(32), run_with(4));
}

TEST(RequestSchedulerTest, EmptyBatch) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kScan);
  auto done = sched.Run({});
  EXPECT_TRUE(done.empty());
  const QueueingStats s = RequestScheduler::Summarize({}, done);
  EXPECT_EQ(s.makespan_us, 0);
}

TEST(RequestSchedulerTest, SummaryStatisticsConsistent) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
  std::vector<IoRequest> reqs = ThreeRequestsAtOnce();
  auto done = sched.Run(reqs);
  const QueueingStats s = RequestScheduler::Summarize(reqs, done);
  EXPECT_GT(s.mean_response_time_us, 0.0);
  EXPECT_GE(s.mean_response_time_us, s.mean_queueing_delay_us);
  EXPECT_GE(s.max_response_time_us, s.mean_response_time_us);
  Micros last = 0;
  for (const IoCompletion& c : done) {
    EXPECT_GE(c.completion_time, last);
    EXPECT_EQ(c.completion_time, c.start_time + c.service_time);
    last = c.completion_time;
  }
}

TEST(RequestSchedulerTest, QueueWaitSpansAttributeContentionByLane) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
  obs::Tracer tracer(&clock);
  sched.SetTracer(&tracer);

  // All three arrive together: the first into service waits nothing,
  // the other two queue behind it — one per lane, since the background
  // request is deferred until both foreground ones have been served.
  obs::TraceSpan root = tracer.StartSpan("batch");
  std::vector<IoRequest> reqs = {
      Req(1, 900, 0, IoPriority::kForeground),
      Req(2, 50, 0, IoPriority::kForeground),
      Req(3, 500, 0, IoPriority::kBackground),
  };
  for (IoRequest& r : reqs) r.trace = root.context();
  auto done = sched.Run(reqs);
  root.End();
  sched.SetTracer(nullptr);

  ASSERT_EQ(done.size(), 3u);
  std::map<uint64_t, Micros> waits;
  for (const IoCompletion& c : done) waits[c.id] = c.queueing_delay;
  EXPECT_EQ(waits[1], 0);
  EXPECT_GT(waits[2], 0);
  EXPECT_GT(waits[3], waits[2]);

  // One queue-wait span per request that waited, parented to the batch
  // root, lane-tagged, and exactly as long as the recorded delay.
  std::vector<const obs::SpanRecord*> qw;
  for (const obs::SpanRecord& s : tracer.spans()) {
    if (s.name == "scheduler.queue_wait") qw.push_back(&s);
  }
  ASSERT_EQ(qw.size(), 2u);
  std::multiset<Micros> span_waits;
  const std::multiset<Micros> completion_waits{waits[2], waits[3]};
  int background_lanes = 0;
  for (const obs::SpanRecord* s : qw) {
    EXPECT_EQ(s->trace_id, root.context().trace_id);
    EXPECT_EQ(s->parent_span_id, root.context().span_id);
    const std::string* lane = s->FindTag("lane");
    ASSERT_NE(lane, nullptr);
    if (*lane == "background") ++background_lanes;
    span_waits.insert(s->duration_us());
  }
  EXPECT_EQ(background_lanes, 1);
  EXPECT_EQ(span_waits, completion_waits);
}

TEST(RequestSchedulerTest, TracingQueueWaitsLeavesTheClockUntouched) {
  // Recording a wait rewinds the clock over the window it covers and
  // advances it back — attaching a tracer must not move simulated time
  // or change the schedule, or tracing would break determinism.
  auto final_time = [](bool traced) {
    SimClock clock;
    BlockDevice dev = MakeDevice(&clock);
    RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
    obs::Tracer tracer(&clock);
    if (traced) sched.SetTracer(&tracer);
    obs::TraceSpan root = tracer.StartSpan("batch");
    std::vector<IoRequest> reqs = ThreeRequestsAtOnce();
    for (IoRequest& r : reqs) r.trace = root.context();
    sched.Run(reqs);
    return clock.Now();
  };
  EXPECT_EQ(final_time(true), final_time(false));
}

TEST(RequestSchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kFcfs), "FCFS");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kSstf), "SSTF");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kScan), "SCAN");
}

}  // namespace
}  // namespace minos::storage
