#include "minos/storage/request_scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace minos::storage {
namespace {

BlockDevice MakeDevice(SimClock* clock) {
  DeviceCostModel cost;
  cost.seek_base = 100;
  cost.seek_per_block = 1.0;
  cost.rotational_latency = 0;
  cost.transfer_per_block = 1;
  return BlockDevice("d", 1000, 16, cost, false, clock);
}

std::vector<IoRequest> ThreeRequestsAtOnce() {
  // All arrive at t=0; blocks 900, 50, 500.
  return {{1, 900, 1, 0}, {2, 50, 1, 0}, {3, 500, 1, 0}};
}

std::vector<uint64_t> CompletionOrder(const std::vector<IoCompletion>& cs) {
  std::vector<uint64_t> ids;
  for (const IoCompletion& c : cs) ids.push_back(c.id);
  return ids;
}

TEST(RequestSchedulerTest, FcfsServesInArrivalOrder) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
  auto done = sched.Run(ThreeRequestsAtOnce());
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{1, 2, 3}));
}

TEST(RequestSchedulerTest, SstfPicksNearestFirst) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Head starts at 0: nearest is 50, then 500, then 900.
  auto done = sched.Run(ThreeRequestsAtOnce());
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{2, 3, 1}));
}

TEST(RequestSchedulerTest, ScanSweepsUpThenDown) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  // Seed head position at 400 by a direct read.
  std::string scratch;
  ASSERT_TRUE(dev.Read(399, 1, &scratch).ok());  // Head at 400.
  RequestScheduler sched(&dev, SchedulingPolicy::kScan);
  auto done = sched.Run(ThreeRequestsAtOnce());
  // Sweep up from 400: 500, 900; then down: 50.
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{3, 1, 2}));
}

TEST(RequestSchedulerTest, ForegroundRequestsPreemptBackgroundOnes) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Head starts at 0. The background (prefetch) request at block 10 is
  // by far the cheapest seek, but the foreground requests at 900 and
  // 500 must be served first anyway.
  std::vector<IoRequest> reqs = {
      {1, 10, 1, 0, IoPriority::kBackground},
      {2, 900, 1, 0, IoPriority::kForeground},
      {3, 500, 1, 0, IoPriority::kForeground},
  };
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{3, 2, 1}));
}

TEST(RequestSchedulerTest, AllBackgroundBatchKeepsThePolicyOrder) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  std::vector<IoRequest> reqs = ThreeRequestsAtOnce();
  for (IoRequest& r : reqs) r.priority = IoPriority::kBackground;
  // With no foreground traffic, background requests schedule normally.
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{2, 3, 1}));
}

TEST(RequestSchedulerTest, SstfBeatsFcfsOnTotalSeek) {
  SimClock c1, c2;
  BlockDevice d1 = MakeDevice(&c1);
  BlockDevice d2 = MakeDevice(&c2);
  // A seek-heavy pattern: alternating far ends.
  std::vector<IoRequest> reqs;
  for (uint64_t i = 0; i < 20; ++i) {
    reqs.push_back({i, (i % 2 == 0) ? i * 10 : 900 - i * 10, 1, 0});
  }
  RequestScheduler fcfs(&d1, SchedulingPolicy::kFcfs);
  RequestScheduler sstf(&d2, SchedulingPolicy::kSstf);
  auto done_fcfs = fcfs.Run(reqs);
  auto done_sstf = sstf.Run(reqs);
  const QueueingStats sf = RequestScheduler::Summarize(reqs, done_fcfs);
  const QueueingStats ss = RequestScheduler::Summarize(reqs, done_sstf);
  EXPECT_LT(ss.makespan_us, sf.makespan_us);
}

TEST(RequestSchedulerTest, RespectsArrivalTimes) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kSstf);
  // Request 2 is nearest but arrives much later; request 1 must go first.
  std::vector<IoRequest> reqs = {{1, 800, 1, 0}, {2, 10, 1, 5000000}};
  auto done = sched.Run(reqs);
  EXPECT_EQ(CompletionOrder(done), (std::vector<uint64_t>{1, 2}));
  // The second service cannot start before its arrival.
  EXPECT_GE(done[1].start_time, 5000000);
}

TEST(RequestSchedulerTest, QueueingDelayGrowsWithLoad) {
  auto run_with = [](int n) {
    SimClock clock;
    BlockDevice dev = MakeDevice(&clock);
    RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
    std::vector<IoRequest> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back({static_cast<uint64_t>(i),
                      static_cast<uint64_t>((i * 37) % 1000), 1, 0});
    }
    auto done = sched.Run(reqs);
    return RequestScheduler::Summarize(reqs, done).mean_queueing_delay_us;
  };
  EXPECT_GT(run_with(32), run_with(4));
}

TEST(RequestSchedulerTest, EmptyBatch) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kScan);
  auto done = sched.Run({});
  EXPECT_TRUE(done.empty());
  const QueueingStats s = RequestScheduler::Summarize({}, done);
  EXPECT_EQ(s.makespan_us, 0);
}

TEST(RequestSchedulerTest, SummaryStatisticsConsistent) {
  SimClock clock;
  BlockDevice dev = MakeDevice(&clock);
  RequestScheduler sched(&dev, SchedulingPolicy::kFcfs);
  std::vector<IoRequest> reqs = ThreeRequestsAtOnce();
  auto done = sched.Run(reqs);
  const QueueingStats s = RequestScheduler::Summarize(reqs, done);
  EXPECT_GT(s.mean_response_time_us, 0.0);
  EXPECT_GE(s.mean_response_time_us, s.mean_queueing_delay_us);
  EXPECT_GE(s.max_response_time_us, s.mean_response_time_us);
  Micros last = 0;
  for (const IoCompletion& c : done) {
    EXPECT_GE(c.completion_time, last);
    EXPECT_EQ(c.completion_time, c.start_time + c.service_time);
    last = c.completion_time;
  }
}

TEST(RequestSchedulerTest, PolicyNames) {
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kFcfs), "FCFS");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kSstf), "SSTF");
  EXPECT_STREQ(SchedulingPolicyName(SchedulingPolicy::kScan), "SCAN");
}

}  // namespace
}  // namespace minos::storage
