#include "minos/voice/voice_document.h"

#include <gtest/gtest.h>

#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"

namespace minos::voice {
namespace {

using text::LogicalUnit;

constexpr char kMarkup[] =
    ".CHAPTER First\n.PP\nAlpha beta gamma. Delta epsilon.\n"
    ".SECTION Inner\nZeta eta theta.\n"
    ".CHAPTER Second\n.PP\nIota kappa lambda.\n";

class VoiceDocumentTest : public ::testing::Test {
 protected:
  VoiceDocumentTest() {
    text::MarkupParser parser;
    auto doc = parser.Parse(kMarkup);
    EXPECT_TRUE(doc.ok());
    doc_ = std::move(doc).value();
    SpeechSynthesizer synth{SpeakerParams{}};
    auto track = synth.Synthesize(doc_);
    EXPECT_TRUE(track.ok());
    vdoc_ = std::make_unique<VoiceDocument>(std::move(track).value());
  }

  text::Document doc_;
  std::unique_ptr<VoiceDocument> vdoc_;
};

TEST_F(VoiceDocumentTest, UntaggedHasNoUnits) {
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kChapter));
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kParagraph));
}

TEST_F(VoiceDocumentTest, ManualTagging) {
  vdoc_->TagComponent(LogicalUnit::kChapter, SampleSpan{0, 1000}, "Intro");
  ASSERT_TRUE(vdoc_->HasUnit(LogicalUnit::kChapter));
  EXPECT_EQ(vdoc_->Components(LogicalUnit::kChapter)[0].title, "Intro");
}

TEST_F(VoiceDocumentTest, TagFromAlignmentChapterLevel) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kChapters);
  EXPECT_EQ(vdoc_->Components(LogicalUnit::kChapter).size(), 2u);
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kSection));
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kParagraph));
}

TEST_F(VoiceDocumentTest, TagFromAlignmentSectionLevel) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kSections);
  EXPECT_EQ(vdoc_->Components(LogicalUnit::kChapter).size(), 2u);
  EXPECT_EQ(vdoc_->Components(LogicalUnit::kSection).size(), 1u);
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kParagraph));
}

TEST_F(VoiceDocumentTest, TagFromAlignmentFull) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kFull);
  EXPECT_TRUE(vdoc_->HasUnit(LogicalUnit::kParagraph));
  EXPECT_TRUE(vdoc_->HasUnit(LogicalUnit::kSentence));
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kWord));  // Never tagged.
}

TEST_F(VoiceDocumentTest, TagFromAlignmentNone) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kNone);
  EXPECT_FALSE(vdoc_->HasUnit(LogicalUnit::kChapter));
}

TEST_F(VoiceDocumentTest, TaggedSpansOrderedAndWithinBuffer) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kFull);
  for (int u = 0; u < 8; ++u) {
    const auto& cs = vdoc_->Components(static_cast<LogicalUnit>(u));
    for (size_t i = 0; i < cs.size(); ++i) {
      EXPECT_LE(cs[i].span.end, vdoc_->pcm().size());
      EXPECT_LT(cs[i].span.begin, cs[i].span.end);
      if (i > 0) {
        EXPECT_GE(cs[i].span.begin, cs[i - 1].span.begin);
      }
    }
  }
}

TEST_F(VoiceDocumentTest, ChapterTitlesPreserved) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kChapters);
  const auto& chapters = vdoc_->Components(LogicalUnit::kChapter);
  ASSERT_EQ(chapters.size(), 2u);
  EXPECT_EQ(chapters[0].title, "First");
  EXPECT_EQ(chapters[1].title, "Second");
}

TEST_F(VoiceDocumentTest, NextPreviousUnitNavigation) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kChapters);
  const auto& chapters = vdoc_->Components(LogicalUnit::kChapter);
  auto next = vdoc_->NextUnitStart(LogicalUnit::kChapter, 0);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, chapters[1].span.begin);
  auto prev = vdoc_->PreviousUnitStart(LogicalUnit::kChapter,
                                       vdoc_->pcm().size());
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, chapters[1].span.begin);
  EXPECT_TRUE(vdoc_->PreviousUnitStart(LogicalUnit::kChapter, 0)
                  .status()
                  .IsNotFound());
}

TEST_F(VoiceDocumentTest, EnclosingUnit) {
  vdoc_->TagFromAlignment(doc_, EditingLevel::kChapters);
  const auto& chapters = vdoc_->Components(LogicalUnit::kChapter);
  auto enclosing = vdoc_->EnclosingUnit(LogicalUnit::kChapter,
                                        chapters[1].span.begin + 10);
  ASSERT_TRUE(enclosing.ok());
  EXPECT_EQ(enclosing->title, "Second");
}

TEST_F(VoiceDocumentTest, CrossMediaMappingRoundTrips) {
  // Pick the 5th word; its text offset must map to its sample start.
  const auto& words = vdoc_->track().words;
  ASSERT_GT(words.size(), 5u);
  const WordAlignment& w = words[5];
  auto sample = vdoc_->SampleForTextOffset(w.text_offset);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(*sample, w.samples.begin);
  auto offset = vdoc_->TextOffsetForSample(w.samples.begin + 1);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, w.text_offset);
}

TEST_F(VoiceDocumentTest, MappingClampsToNearestWordBefore) {
  const auto& words = vdoc_->track().words;
  // A sample inside the silence after word 2 maps to word 2.
  const size_t in_silence = words[2].samples.end + 10;
  auto offset = vdoc_->TextOffsetForSample(in_silence);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, words[2].text_offset);
}

TEST(VoiceDocumentEmptyTest, EmptyTrackMappingsFail) {
  VoiceDocument vdoc((VoiceTrack()));
  EXPECT_TRUE(vdoc.TextOffsetForSample(0).status().IsNotFound());
  EXPECT_TRUE(vdoc.SampleForTextOffset(0).status().IsNotFound());
}

}  // namespace
}  // namespace minos::voice
