#include <gtest/gtest.h>

#include "minos/util/clock.h"
#include "minos/util/random.h"

namespace minos {
namespace {

TEST(SimClockTest, StartsAtZeroByDefault) {
  SimClock clock;
  EXPECT_EQ(clock.Now(), 0);
}

TEST(SimClockTest, StartsAtGivenTime) {
  SimClock clock(1000);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(SimClockTest, SleepAdvances) {
  SimClock clock;
  clock.Sleep(250);
  clock.Sleep(750);
  EXPECT_EQ(clock.Now(), 1000);
}

TEST(SimClockTest, NegativeSleepIgnored) {
  SimClock clock(10);
  clock.Sleep(-5);
  EXPECT_EQ(clock.Now(), 10);
}

TEST(SimClockTest, AdvanceToNeverGoesBackward) {
  SimClock clock(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceTo(200);
  EXPECT_EQ(clock.Now(), 200);
}

TEST(ClockConversionTest, UnitHelpers) {
  EXPECT_EQ(MillisToMicros(3), 3000);
  EXPECT_EQ(SecondsToMicros(2), 2000000);
  EXPECT_EQ(MicrosToMillis(2500), 2);
  EXPECT_DOUBLE_EQ(MicrosToSeconds(1500000), 1.5);
}

TEST(WallClockTest, MonotonicNow) {
  WallClock clock;
  const Micros a = clock.Now();
  const Micros b = clock.Now();
  EXPECT_GE(b, a);
}

TEST(RandomTest, DeterministicFromSeed) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, UniformWithinBound) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
  EXPECT_EQ(rng.Uniform(0), 0u);
  EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformRange(5, 5), 5);
  EXPECT_EQ(rng.UniformRange(5, 4), 5);  // Degenerate: returns lo.
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRate) {
  Random rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RandomTest, GaussianMoments) {
  Random rng(19);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(10.0, 2.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

}  // namespace
}  // namespace minos
