// SESS-1: can the event-driven SessionManager multiplex thousands of
// concurrent browse/search sessions over a four-shard fabric without
// letting any class starve? Phase one measures a no-storm baseline:
// 400 paced readers turning pages alone on the fabric. Phase two opens
// 2400 mixed sessions (skimmers, readers, searchers, writers, idlers)
// against a 2000-slot admission cap — the overflow queues FIFO and is
// admitted as idle sessions are reaped and finished skimmers close —
// and requires the reader-class steady-state p99 page turn to stay
// within 2x the baseline (plus a 1 ms floor), per-class fairness to
// stay bounded, and the reap/queue machinery to have actually fired.
// The storm runs traced at a 1/64 head-sampling rate and the TRACE
// snapshot must reconcile against the manager's own sampled-session
// lifetime. Phase three replays a miniature storm on task pools of 1,
// 2 and 4 workers and requires bit-identical results.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/shard_router.h"
#include "minos/session/session_manager.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::ObjectId;

/// One shard's full stack: its own archive device, cache, version store
/// and link. The device runs the zero-cost model — this bench grades
/// session multiplexing and link scheduling, and a 2000-open warmup on
/// optical-seek costs would be a device benchmark, not a session one.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(1024),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

server::ShardPlacement RoundRobin() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    return static_cast<size_t>((id - 1) % shard_count);
  };
}

/// A report whose pages carry real transfer weight: formatted text plus
/// a bitmap on every fourth page, so speculative staging moves both
/// light and heavy pages over the links.
object::MultimediaObject PagedObject(ObjectId id, int paragraphs) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(bench::LongReport(paragraphs)).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  for (size_t i = 0; i < pages; i += 4) {
    const uint32_t index = obj.AddImage(bench::XrayBitmap(96, 72)).value();
    object::PlacedImage placed;
    placed.image_index = index;
    placed.placement = image::Rect{180, 20, 96, 72};
    obj.descriptor().pages[i].images.push_back(placed);
  }
  obj.Archive().ok();
  return obj;
}

/// FNV-1a fold of one 64-bit value into a running digest.
uint64_t Mix(uint64_t digest, uint64_t value) {
  return (digest ^ value) * 0x100000001b3ULL;
}

/// Counter values keyed by instance-normalized name (digits stripped),
/// for comparing fresh fabrics built back-to-back in one process.
std::map<std::string, int64_t> CounterValues() {
  std::map<std::string, int64_t> values;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Default().Snapshot().counters) {
    std::string normalized;
    for (const char c : name) {
      if (c < '0' || c > '9') normalized += c;
    }
    values[normalized] += value;
  }
  return values;
}

/// Session classes of the storm mix. Every class acts on a fixed cadence
/// (one action every kCadence epochs, phased by session index), so the
/// fabric sees a steady interleave instead of a thundering herd.
enum class Profile : uint8_t {
  kSkimmer,   ///< Turns kSkimStride pages at a time; closes at the end.
  kReader,    ///< Turns one page at a time; closes at the end.
  kSearcher,  ///< Only runs ranked queries; never opens an object.
  kWriter,    ///< Only appends (to a disjoint object range).
  kIdler,     ///< Opens once, then goes silent until the reaper fires.
};

const char* ProfileName(Profile p) {
  switch (p) {
    case Profile::kSkimmer:
      return "skimmer";
    case Profile::kReader:
      return "reader";
    case Profile::kSearcher:
      return "searcher";
    case Profile::kWriter:
      return "writer";
    case Profile::kIdler:
      return "idler";
  }
  return "unknown";
}

/// Composition. The initial cohort (admitted straight into slots) mixes
/// all five classes per 20 sessions: 10 skimmers, 5 readers, 2
/// searchers, one writer, 2 idlers. The overflow tail — admitted late,
/// as reaps and closes free slots — is readers and searchers only:
/// classes whose speculation is right from their first turn, so late
/// admission exercises the queue without re-running stride warmup
/// inside the measured steady-state window.
Profile ProfileOf(int index, int initial_cohort, bool mixed) {
  if (!mixed) return Profile::kReader;
  if (index < initial_cohort) {
    const int r = index % 20;
    if (r < 10) return Profile::kSkimmer;
    if (r < 15) return Profile::kReader;
    if (r < 17) return Profile::kSearcher;
    if (r < 18) return Profile::kWriter;
    return Profile::kIdler;
  }
  return index % 4 < 3 ? Profile::kReader : Profile::kSearcher;
}

constexpr int kCadence = 4;     ///< Epochs between one session's actions.
constexpr int kSkimStride = 3;  ///< Skimmer page-turn delta.

struct StormConfig {
  SimClock* clock = nullptr;  ///< Required; the tracer must share it.
  int sessions = 2400;
  size_t max_concurrent = 2000;
  int objects = 48;  ///< Last writer_objects ids are append-only targets.
  int writer_objects = 8;
  int epochs = 32;
  int measure_from = 20;  ///< Steady-state window for gated latencies.
  Micros advance_us = MillisToMicros(1200);
  /// Above the worst inter-action gap (4 epochs of advance plus the
  /// open-warmup staging each epoch books), so only true idlers reap.
  Micros idle_deadline_us = SecondsToMicros(20);
  bool mixed = true;
  int workers = 1;
  obs::Tracer* tracer = nullptr;  ///< Borrowed; sampling set by caller.
};

struct StormResult {
  bool ok = false;
  Micros elapsed = 0;
  uint64_t digest = 0;
  std::map<std::string, int64_t> counter_deltas;
  /// Steady-state (epoch >= measure_from) page-turn waits per class.
  std::map<std::string, std::vector<Micros>> turn_us;
  size_t peak_active = 0;
  size_t peak_queued = 0;
  Micros traced_active_us = 0;
  int64_t reaped = 0;
  int64_t admission_queued = 0;
  int64_t queue_admitted = 0;
};

Micros P99(std::vector<Micros> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = values.size() * 99 / 100;
  if (index >= values.size()) index = values.size() - 1;
  return values[index];
}

/// Drives one full storm on a fresh four-shard fabric. Everything the
/// workload does is a pure function of the config, so two runs with the
/// same config and different worker counts must return identical
/// digests, elapsed times and counter deltas.
StormResult RunStorm(const StormConfig& cfg) {
  StormResult out;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::map<std::string, int64_t> before = CounterValues();
  const int64_t reaped0 = reg.counter("session.reaped_total")->value();
  const int64_t queued0 =
      reg.counter("session.admission_queued_total")->value();
  const int64_t qadmit0 =
      reg.counter("session.queue_admitted_total")->value();

  SimClock& clock = *cfg.clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  runtime::TaskPool pool(&clock, cfg.workers);
  router.SetTaskPool(&pool);
  // Deep enough that a stride-3 skimmer is still mid-object at the last
  // epoch: the run must grade steady-state turns, not a synchronized
  // end-of-object miss wave (the page past the end is never speculated).
  for (ObjectId id = 1; id <= static_cast<ObjectId>(cfg.objects); ++id) {
    if (!router.Store(PagedObject(id, 24)).ok()) return out;
  }

  session::SessionOptions options;
  options.max_concurrent = cfg.max_concurrent;
  options.idle_deadline_us = cfg.idle_deadline_us;
  options.prefetch_budget_bytes = 64 * 1024;
  // Every reading session holds its shard lease for its whole life, so
  // the per-shard pool must cover the active population.
  options.streams_per_shard = 600;
  // One Pump per epoch must issue the whole epoch's speculation, and
  // thousands of staged-but-unconsumed pages are normal at this scale.
  options.prefetch.max_inflight_per_pump = 4096;
  options.prefetch.ready_capacity = 8192;
  session::SessionManager manager(&router, &clock, options);
  manager.SetTaskPool(&pool);
  if (cfg.tracer != nullptr) manager.SetTracer(cfg.tracer);
  manager.SetAppendHandler([&router](ObjectId id, const std::string& text) {
    server::ObjectServer::AppendParts parts;
    parts.text = text;
    return router.Append(id, parts).status();
  });

  const int read_objects = cfg.objects - cfg.writer_objects;
  const std::vector<std::string> kSearchWords[4] = {
      {"multimedia"}, {"presentation"}, {"archived", "objects"}, {"report"}};

  struct Drive {
    session::SessionId id = 0;
    Profile profile = Profile::kReader;
    bool opened = false;
    bool closed = false;
    int appends = 0;
  };
  const int initial_cohort =
      std::min<int>(cfg.sessions, static_cast<int>(cfg.max_concurrent));
  std::vector<Drive> drives(cfg.sessions);
  for (int i = 0; i < cfg.sessions; ++i) {
    drives[i].profile = ProfileOf(i, initial_cohort, cfg.mixed);
    drives[i].id = manager.Open(ProfileName(drives[i].profile));
  }

  const Micros start = clock.Now();
  auto pump = [&](const std::vector<session::SessionEvent>& events,
                  int epoch) {
    const std::vector<session::SessionOutcome> outcomes =
        manager.PumpEpoch(events);
    for (size_t j = 0; j < outcomes.size(); ++j) {
      const session::SessionOutcome& o = outcomes[j];
      out.digest = Mix(out.digest, static_cast<uint64_t>(o.status.code()));
      out.digest = Mix(out.digest, static_cast<uint64_t>(o.latency_us));
      out.digest = Mix(out.digest, o.prefetch_hit ? 1 : 0);
      out.digest = Mix(out.digest, o.results);
      const size_t idx = static_cast<size_t>(o.session - drives[0].id);
      if (idx >= drives.size()) continue;
      Drive& d = drives[idx];
      if (o.status.ok() && o.kind == session::SessionEvent::Kind::kOpen) {
        d.opened = true;
      }
      if (o.status.ok() && o.kind == session::SessionEvent::Kind::kClose) {
        d.closed = true;
      }
      if (o.status.ok() &&
          o.kind == session::SessionEvent::Kind::kPageTurn &&
          epoch >= cfg.measure_from) {
        out.turn_us[ProfileName(d.profile)].push_back(o.latency_us);
      }
    }
  };

  for (int e = 0; e < cfg.epochs; ++e) {
    std::vector<session::SessionEvent> events;
    for (int i = 0; i < cfg.sessions; ++i) {
      if ((i + e) % kCadence != 0) continue;
      Drive& d = drives[i];
      if (d.closed) continue;
      session::SessionEvent ev;
      ev.session = d.id;
      switch (d.profile) {
        case Profile::kSkimmer:
        case Profile::kReader:
        case Profile::kIdler: {
          if (manager.state(d.id) == session::SessionState::kClosed) {
            d.closed = true;  // Reaped by the manager.
            continue;
          }
          if (!d.opened) {
            ev.kind = session::SessionEvent::Kind::kOpen;
            ev.object = static_cast<ObjectId>(1 + (i * 7) % read_objects);
          } else if (d.profile == Profile::kIdler) {
            continue;  // Opened once; now waiting for the reaper.
          } else if (manager.page(d.id) >= manager.page_count(d.id)) {
            ev.kind = session::SessionEvent::Kind::kClose;
          } else {
            ev.kind = session::SessionEvent::Kind::kPageTurn;
            ev.delta = d.profile == Profile::kSkimmer ? kSkimStride : 1;
          }
          break;
        }
        case Profile::kSearcher:
          ev.kind = session::SessionEvent::Kind::kSearch;
          ev.words = kSearchWords[(i + e) % 4];
          break;
        case Profile::kWriter:
          ev.kind = session::SessionEvent::Kind::kAppend;
          ev.object = static_cast<ObjectId>(read_objects + 1 +
                                            i % cfg.writer_objects);
          ev.append_text = "Appended finding " + std::to_string(e) +
                           " from writer " + std::to_string(i) + ".";
          ++d.appends;
          break;
      }
      events.push_back(std::move(ev));
    }
    const Micros t0 = clock.Now();
    pump(events, e);
    if (std::getenv("STORM_DEBUG") != nullptr) {
      std::printf("debug: epoch=%d t0=%.2fs dt=%.0fms events=%zu "
                  "active=%zu queued=%zu\n",
                  e, t0 / 1e6, (clock.Now() - t0) / 1e3, events.size(),
                  manager.active_count(), manager.queued_count());
    }
    out.peak_active = std::max(out.peak_active, manager.active_count());
    out.peak_queued = std::max(out.peak_queued, manager.queued_count());
    clock.Advance(cfg.advance_us);
  }

  // Final epoch: every session still alive (or still queued) closes, so
  // every sampled root span has an end time and the trace reconciles.
  std::vector<session::SessionEvent> closes;
  for (Drive& d : drives) {
    if (d.closed || manager.state(d.id) == session::SessionState::kClosed) {
      continue;
    }
    session::SessionEvent ev;
    ev.session = d.id;
    ev.kind = session::SessionEvent::Kind::kClose;
    closes.push_back(std::move(ev));
  }
  pump(closes, cfg.epochs);

  out.elapsed = clock.Now() - start;
  out.traced_active_us = manager.traced_active_us();
  out.reaped = reg.counter("session.reaped_total")->value() - reaped0;
  out.admission_queued =
      reg.counter("session.admission_queued_total")->value() - queued0;
  out.queue_admitted =
      reg.counter("session.queue_admitted_total")->value() - qadmit0;
  for (const auto& [name, value] : CounterValues()) {
    const auto it = before.find(name);
    const int64_t delta = value - (it != before.end() ? it->second : 0);
    if (delta != 0) out.counter_deltas[name] = delta;
  }
  out.ok = true;
  return out;
}

int Run() {
  bench::PrintHeader("session_storm",
                     "2400 mixed sessions multiplexed over 4 shards");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  Micros total_sim_time = 0;

  // --- Phase 1: no-storm baseline ---------------------------------------
  // 400 paced readers alone on the fabric: the reader-class p99 the
  // storm phase is graded against.
  SimClock base_clock;
  StormConfig base_cfg;
  base_cfg.clock = &base_clock;
  base_cfg.sessions = 400;
  base_cfg.max_concurrent = 2000;
  base_cfg.mixed = false;
  base_cfg.workers = bench::Workers();
  const StormResult base = RunStorm(base_cfg);
  if (!base.ok) {
    std::printf("FAIL: baseline run did not complete\n");
    return 1;
  }
  total_sim_time += base.elapsed;
  const auto turns_of = [](const StormResult& r, const char* cls) {
    const auto it = r.turn_us.find(cls);
    return it != r.turn_us.end() ? it->second : std::vector<Micros>{};
  };
  const Micros base_p99 = P99(turns_of(base, "reader"));
  std::printf("baseline: 400 readers, reader p99=%lldus (%zu steady "
              "turns)\n",
              static_cast<long long>(base_p99),
              turns_of(base, "reader").size());

  // --- Phase 2: the storm, traced at 1/64 -------------------------------
  SimClock storm_clock;
  obs::Tracer tracer(&storm_clock);
  tracer.SetSampleRate(1.0 / 64.0);
  StormConfig storm_cfg;
  storm_cfg.clock = &storm_clock;
  storm_cfg.workers = bench::Workers();
  storm_cfg.tracer = &tracer;
  const StormResult storm = RunStorm(storm_cfg);
  if (!storm.ok) {
    std::printf("FAIL: storm run did not complete\n");
    return 1;
  }
  total_sim_time += storm.elapsed;

  std::printf("%-10s %-8s %-12s\n", "class", "turns", "p99_us");
  std::map<std::string, Micros> class_p99;
  for (const auto& [cls, waits] : storm.turn_us) {
    class_p99[cls] = P99(waits);
    std::printf("%-10s %-8zu %-12lld\n", cls.c_str(), waits.size(),
                static_cast<long long>(class_p99[cls]));
  }
  const Micros storm_p99 = class_p99.count("reader") != 0
                               ? class_p99["reader"]
                               : Micros{0};
  std::printf("storm: peak_active=%zu peak_queued=%zu reaped=%lld "
              "queued=%lld queue_admitted=%lld\n",
              storm.peak_active, storm.peak_queued,
              static_cast<long long>(storm.reaped),
              static_cast<long long>(storm.admission_queued),
              static_cast<long long>(storm.queue_admitted));

  reg.gauge("session_storm.peak_active")
      ->Set(static_cast<double>(storm.peak_active));
  reg.gauge("session_storm.peak_queued")
      ->Set(static_cast<double>(storm.peak_queued));
  reg.gauge("session_storm.reader_p99_base_us")
      ->Set(static_cast<double>(base_p99));
  reg.gauge("session_storm.reader_p99_storm_us")
      ->Set(static_cast<double>(storm_p99));

  // Gate 1: scale. The storm must actually have held >= 2000 concurrent
  // sessions with a live overflow queue, reaped idle ones, and admitted
  // from the queue into the freed slots.
  if (storm.peak_active < 2000 || storm.admission_queued <= 0 ||
      storm.reaped <= 0 || storm.queue_admitted <= 0) {
    std::printf("FAIL: storm machinery idle (peak_active=%zu "
                "admission_queued=%lld reaped=%lld queue_admitted=%lld)\n",
                storm.peak_active,
                static_cast<long long>(storm.admission_queued),
                static_cast<long long>(storm.reaped),
                static_cast<long long>(storm.queue_admitted));
    return 1;
  }
  std::printf("gate: %zu concurrent sessions, %lld queued, %lld reaped, "
              "%lld admitted from the queue\n",
              storm.peak_active,
              static_cast<long long>(storm.admission_queued),
              static_cast<long long>(storm.reaped),
              static_cast<long long>(storm.queue_admitted));

  // Gate 2: the reader class must not degrade. Prefetch hits cost zero,
  // so both p99s sit near zero when budgets and eviction hold — the
  // 1 ms floor keeps the 2x ratio meaningful at that scale.
  const Micros turn_budget = 2 * base_p99 + 1000;
  if (storm.turn_us.count("reader") == 0 ||
      storm.turn_us.at("reader").size() < 500) {
    std::printf("FAIL: too few steady-state reader turns to grade\n");
    return 1;
  }
  if (storm_p99 > turn_budget) {
    std::printf("FAIL: reader p99 %lldus under storm exceeds 2x no-storm "
                "p99 %lldus + 1ms\n",
                static_cast<long long>(storm_p99),
                static_cast<long long>(base_p99));
    return 1;
  }
  std::printf("gate: reader p99 %lldus under storm within 2x no-storm "
              "%lldus + 1ms floor\n",
              static_cast<long long>(storm_p99),
              static_cast<long long>(base_p99));

  // Gate 3: fairness. No page-turning class may see a steady-state p99
  // more than 4x another's (measured above a 1 ms floor, since a class
  // whose turns are all prefetch hits reads exactly zero).
  Micros fair_min = 0, fair_max = 0;
  bool first_class = true;
  for (const auto& [cls, p99] : class_p99) {
    (void)cls;
    if (first_class || p99 < fair_min) fair_min = p99;
    if (first_class || p99 > fair_max) fair_max = p99;
    first_class = false;
  }
  const double fairness =
      (static_cast<double>(fair_max) + 1000.0) /
      (static_cast<double>(fair_min) + 1000.0);
  reg.gauge("session_storm.fairness_ratio")->Set(fairness);
  if (!(fairness <= 4.0)) {
    std::printf("FAIL: class fairness ratio %.2f exceeds 4.0 "
                "(p99 range %lld..%lldus)\n",
                fairness, static_cast<long long>(fair_min),
                static_cast<long long>(fair_max));
    return 1;
  }
  std::printf("gate: class fairness ratio %.2f <= 4.0\n", fairness);

  // Gate 4: the trace reconciles. Every sampled session is one root
  // span; their lifetimes must sum to the manager's own accounting.
  if (storm.traced_active_us <= 0) {
    std::printf("FAIL: sampling admitted no sessions\n");
    return 1;
  }
  const Status trace_gate = bench::EmitTraceSnapshot(
      "session_storm", tracer, storm.traced_active_us);
  if (!trace_gate.ok()) {
    std::printf("FAIL: trace snapshot: %s\n",
                trace_gate.ToString().c_str());
    return 1;
  }
  if (tracer.dropped_spans() != 0) {
    std::printf("FAIL: trace ring dropped %llu spans\n",
                static_cast<unsigned long long>(tracer.dropped_spans()));
    return 1;
  }
  std::printf("gate: %llu sampled-out roots recorded nothing, sampled "
              "sessions reconcile\n",
              static_cast<unsigned long long>(tracer.sampled_out()));

  // --- Phase 3: worker-count determinism matrix -------------------------
  // A miniature storm on pools of 1, 2 and 4 workers: virtual elapsed
  // time, the outcome digest and every (instance-normalized) counter
  // delta must be bit-identical. The CI matrix diffs whole BENCH/TRACE
  // files across --workers runs; this is the in-process half.
  {
    auto mini = [](int workers, SimClock* clock) {
      StormConfig cfg;
      cfg.clock = clock;
      cfg.sessions = 240;
      cfg.max_concurrent = 200;
      cfg.objects = 16;
      cfg.writer_objects = 4;
      cfg.epochs = 12;
      cfg.measure_from = 8;
      cfg.advance_us = MillisToMicros(150);
      cfg.idle_deadline_us = SecondsToMicros(2);
      cfg.workers = workers;
      return cfg;
    };
    SimClock base_mclock;
    const StormResult mbase = RunStorm(mini(1, &base_mclock));
    if (!mbase.ok) {
      std::printf("FAIL: 1-worker matrix run did not complete\n");
      return 1;
    }
    total_sim_time += mbase.elapsed;
    for (int workers : {2, 4}) {
      SimClock mclock;
      const StormResult run = RunStorm(mini(workers, &mclock));
      if (!run.ok) {
        std::printf("FAIL: %d-worker matrix run did not complete\n",
                    workers);
        return 1;
      }
      total_sim_time += run.elapsed;
      if (run.elapsed != mbase.elapsed || run.digest != mbase.digest ||
          run.counter_deltas != mbase.counter_deltas) {
        std::printf("FAIL: %d-worker storm diverges from 1-worker storm "
                    "(elapsed %lld vs %lld, digest %016llx vs %016llx)\n",
                    workers, static_cast<long long>(run.elapsed),
                    static_cast<long long>(mbase.elapsed),
                    static_cast<unsigned long long>(run.digest),
                    static_cast<unsigned long long>(mbase.digest));
        for (const auto& [name, delta] : mbase.counter_deltas) {
          const auto it = run.counter_deltas.find(name);
          const int64_t other =
              it != run.counter_deltas.end() ? it->second : 0;
          if (other != delta) {
            std::printf("  %s: 1-worker %lld vs %d-worker %lld\n",
                        name.c_str(), static_cast<long long>(delta),
                        workers, static_cast<long long>(other));
          }
        }
        for (const auto& [name, delta] : run.counter_deltas) {
          if (mbase.counter_deltas.find(name) ==
              mbase.counter_deltas.end()) {
            std::printf("  %s: 1-worker 0 vs %d-worker %lld\n",
                        name.c_str(), workers,
                        static_cast<long long>(delta));
          }
        }
        return 1;
      }
    }
    std::printf("gate: workers {1,2,4} produce bit-identical storms "
                "(digest %016llx, %zu counter deltas)\n",
                static_cast<unsigned long long>(mbase.digest),
                mbase.counter_deltas.size());
  }

  bench::NoteSimTime(total_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
