// FIG9-10: "Process simulation capability used to simulate a guided tour.
// The blank spots identify the route followed so far."
//
// Reproduces: one base image plus overwrites with voice logical messages;
// pages turn automatically, each gated on its audio message; the ink of
// the route never shrinks as the walk progresses; the user may alter the
// speed.

#include <cstdio>

#include "minos/core/visual_browser.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("FIG9-10", "process simulation of a walking tour");
  constexpr int kSteps = 6;
  object::MultimediaObject obj =
      bench::BuildProcessSimulationObject(4, kSteps);

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser = core::VisualBrowser::Open(&obj, &screen, &messages, &clock,
                                           &log);
  if (!browser.ok()) return 1;

  if (!(*browser)->PlayProcessSimulation(0).ok()) return 1;
  const auto pages = log.OfKind(core::EventKind::kProcessPage);
  const auto spoken = log.OfKind(core::EventKind::kVoiceMessagePlayed);
  std::printf("%-6s %-12s %-22s\n", "step", "at_ms", "voice_message");
  for (size_t i = 0; i < pages.size(); ++i) {
    const char* msg = i < spoken.size() ? spoken[i].detail.c_str() : "-";
    std::printf("%-6zu %-12lld %-22.40s\n", i,
                static_cast<long long>(MicrosToMillis(pages[i].at)), msg);
  }
  std::printf("auto_pages=%zu voice_messages=%zu total_time=%lldms\n",
              pages.size(), spoken.size(),
              static_cast<long long>(MicrosToMillis(clock.Now())));
  std::printf("paper_claim=next page only after the audio message played\n");
  bool gated = true;
  for (size_t i = 1; i < pages.size(); ++i) {
    // Every page turn must come strictly after the previous page's
    // message started (audio gating) plus the dwell interval.
    if (pages[i].at <= spoken[i - 1].at) gated = false;
  }
  std::printf("holds=%s\n", gated ? "yes" : "NO");

  // The user alters the speed: 2x replay takes less time.
  const Micros t0 = clock.Now();
  if (!(*browser)->PlayProcessSimulation(0, 2.0).ok()) return 1;
  const Micros fast = clock.Now() - t0;
  std::printf("replay_at_2x=%lldms (first run %lldms)\n",
              static_cast<long long>(MicrosToMillis(fast)),
              static_cast<long long>(MicrosToMillis(t0)));
  std::printf("speed_control_works=%s\n", fast < t0 ? "yes" : "NO");
  std::printf("event_log_digest=%016llx\n",
              static_cast<unsigned long long>(log.Digest()));
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
