#include "scenario_lib.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "minos/image/raster.h"
#include "minos/obs/export.h"
#include "minos/obs/metrics.h"
#include "minos/text/markup.h"

namespace minos::bench {

using image::Bitmap;
using image::GraphicsImage;
using image::GraphicsObject;
using image::Image;
using image::LabelKind;
using image::Point;
using image::Rect;
using image::ShapeKind;
using object::MultimediaObject;
using object::TextAnchor;
using object::VisualPageSpec;

namespace {

/// Aborts loudly if a scenario builder produced an invalid object.
void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "scenario build failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
}

}  // namespace

text::Document OfficeDocument() {
  text::MarkupParser parser;
  auto doc = parser.Parse(R"(.TITLE Regional Office Quarterly Review
.ABSTRACT
This review summarizes the activity of the regional office during the
last quarter, covering staffing, facilities, and the new records system.
.CHAPTER Staffing
.PP
The office added two archivists and one systems operator. Training on
the new *workstation* equipment completed ahead of schedule.
.PP
Staff turnover remained below two percent for the third quarter running.
.CHAPTER Facilities
.SECTION Records Room
The records room received the optical disk archiver and a second
high resolution scanner for incoming paper documents.
.PP
Conversion of the paper backlog continues at roughly four hundred pages
per day with _quality control_ sampling at five percent.
.CHAPTER Outlook
.PP
Next quarter the office will pilot voice annotations on incoming case
files and begin mailing multimedia objects between branches.
)");
  return std::move(doc).value();
}

text::Document LongReport(int paragraphs) {
  std::string markup = ".TITLE Synthetic Long Report\n";
  for (int i = 0; i < paragraphs; ++i) {
    if (i % 8 == 0) {
      markup += ".CHAPTER Part " + std::to_string(i / 8 + 1) + "\n";
    }
    markup += ".PP\n";
    for (int s = 0; s < 5; ++s) {
      markup += "Paragraph " + std::to_string(i) + " sentence " +
                std::to_string(s) +
                " discusses archived multimedia objects and their "
                "presentation. ";
    }
    markup += "\n";
  }
  text::MarkupParser parser;
  auto doc = parser.Parse(markup);
  return std::move(doc).value();
}

Image XrayBitmap(int width, int height) {
  Bitmap bm(width, height);
  // A rib-cage-like pattern: nested ellipse-ish bands plus a bright spot
  // (the finding).
  const int cx = width / 2, cy = height / 2;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const double dx = static_cast<double>(x - cx) / (width / 2.0);
      const double dy = static_cast<double>(y - cy) / (height / 2.0);
      const double r = dx * dx + dy * dy;
      if (r < 1.0) {
        const int band = static_cast<int>(r * 12.0);
        bm.Set(x, y, band % 2 == 0 ? 90 : 40);
      }
    }
  }
  bm.FillRect(Rect{cx + width / 8, cy - height / 8, width / 16,
                   height / 16},
              230);
  return Image::FromBitmap(std::move(bm));
}

Image SubwayMap(int width, int height) {
  GraphicsImage g(width, height);
  // Two subway lines.
  GraphicsObject line1;
  line1.shape = ShapeKind::kPolyline;
  line1.vertices = {{0, height / 3},
                    {width / 3, height / 3},
                    {2 * width / 3, height / 2},
                    {width - 1, height / 2}};
  line1.ink = 180;
  line1.label = {LabelKind::kInvisible, "red line", {width / 3, height / 3}};
  g.Add(line1);
  GraphicsObject line2;
  line2.shape = ShapeKind::kPolyline;
  line2.vertices = {{width / 2, 0},
                    {width / 2, height / 2},
                    {width / 3, height - 1}};
  line2.ink = 180;
  line2.label = {LabelKind::kInvisible, "blue line", {width / 2, height / 4}};
  g.Add(line2);
  // Stations with voice labels.
  const char* stations[] = {"union station", "city hall",
                            "market square", "harbour front"};
  const Point positions[] = {{width / 3, height / 3},
                             {width / 2, height / 2},
                             {2 * width / 3, height / 2},
                             {width / 2, height / 6}};
  for (int i = 0; i < 4; ++i) {
    GraphicsObject s;
    s.shape = ShapeKind::kCircle;
    s.vertices = {positions[i]};
    s.radius = 5;
    s.filled = true;
    s.label = {LabelKind::kVoice, stations[i],
               {positions[i].x + 8, positions[i].y}};
    g.Add(s);
  }
  // Hospitals (text labels) and university sites.
  GraphicsObject hospital;
  hospital.shape = ShapeKind::kPolygon;
  hospital.vertices = {{width / 6, height / 6},
                       {width / 6 + 20, height / 6},
                       {width / 6 + 20, height / 6 + 16},
                       {width / 6, height / 6 + 16}};
  hospital.label = {LabelKind::kText, "general hospital",
                    {width / 6, height / 6 - 6}};
  g.Add(hospital);
  GraphicsObject campus;
  campus.shape = ShapeKind::kPolygon;
  campus.vertices = {{3 * width / 4, height / 5},
                     {3 * width / 4 + 26, height / 5},
                     {3 * width / 4 + 26, height / 5 + 20},
                     {3 * width / 4, height / 5 + 20}};
  campus.label = {LabelKind::kText, "university campus",
                  {3 * width / 4, height / 5 - 6}};
  g.Add(campus);
  return Image::FromGraphics(std::move(g));
}

Image MarkingOverlay(int width, int height, int index) {
  GraphicsImage g(width, height);
  GraphicsObject circle;
  circle.shape = ShapeKind::kCircle;
  circle.vertices = {{width / 4 + index * width / 6, height / 3 +
                      (index % 2) * height / 5}};
  circle.radius = 14 + index * 2;
  circle.ink = 255;
  circle.label = {LabelKind::kText,
                  "finding " + std::to_string(index + 1),
                  {circle.vertices[0].x, circle.vertices[0].y - 20}};
  g.Add(circle);
  return Image::FromGraphics(std::move(g));
}

Image RouteOverwrite(int width, int height, int step) {
  GraphicsImage g(width, height);
  // Blank spots identify the route walked so far (§3, Figures 9-10).
  for (int i = 0; i <= step; ++i) {
    GraphicsObject spot;
    spot.shape = ShapeKind::kCircle;
    spot.vertices = {{width / 8 + i * width / 10,
                      height / 2 + ((i % 3) - 1) * height / 8}};
    spot.radius = 4;
    spot.filled = true;
    spot.ink = 255;
    g.Add(spot);
  }
  return Image::FromGraphics(std::move(g));
}

MultimediaObject BuildVisualPagesObject(storage::ObjectId id) {
  MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 14;
  text::Document doc = OfficeDocument();
  obj.SetTextPart(std::move(doc));
  // Page assembly: one spec per text page, then a mixed page with the
  // map, then the x-ray page.
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t text_pages =
      formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < text_pages; ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  const uint32_t map_index = obj.AddImage(SubwayMap(280, 180)).value();
  const uint32_t xray_index = obj.AddImage(XrayBitmap(240, 200)).value();
  VisualPageSpec map_page;
  map_page.images.push_back({map_index, Rect{20, 16, 280, 180}});
  obj.descriptor().pages.push_back(map_page);
  VisualPageSpec xray_page;
  xray_page.images.push_back({xray_index, Rect{40, 10, 240, 200}});
  obj.descriptor().pages.push_back(xray_page);
  CheckOk(obj.Archive());
  return obj;
}

MultimediaObject BuildVisualMessageObject(storage::ObjectId id) {
  MultimediaObject obj(id);
  // Half-height pages: the lower screen shows the text while the x-ray
  // message stays pinned at the top (Figures 3-4).
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 7;
  text::MarkupParser parser;
  std::string markup = ".TITLE Radiology Note 1042\n.PP\n";
  for (int s = 0; s < 18; ++s) {
    markup += "Observation sentence " + std::to_string(s + 1) +
              " concerning the hairline fracture near the joint and the "
              "surrounding tissue. ";
  }
  markup += "\n.PP\nUnrelated administrative remark closes the note.\n";
  auto doc = parser.Parse(markup);
  obj.SetTextPart(std::move(doc).value());
  const uint32_t xray = obj.AddImage(XrayBitmap(220, 150)).value();

  text::TextFormatter formatter(obj.descriptor().layout);
  auto pages = formatter.Paginate(obj.text_part()).value();
  for (size_t i = 0; i < pages.size(); ++i) {
    VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }

  // The visual logical message: the x-ray, related to the observation
  // text (which spans several pages).
  const std::string& contents = obj.text_part().contents();
  const size_t begin = contents.find("Observation sentence 1");
  const size_t end = contents.find("Unrelated");
  object::VisualLogicalMessage message;
  message.text = "XRAY 1042";
  message.image_index = xray;
  message.text_anchors.push_back(TextAnchor{begin, end});
  obj.descriptor().visual_messages.push_back(message);
  CheckOk(obj.Archive());
  return obj;
}

MultimediaObject BuildTransparencyObject(storage::ObjectId id,
                                         int transparencies) {
  MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".TITLE X-ray With Findings\n.PP\nEach transparency pinpoints one "
      "finding on the radiograph below.\n");
  obj.SetTextPart(std::move(doc).value());

  const uint32_t xray = obj.AddImage(XrayBitmap(260, 190)).value();
  VisualPageSpec base;
  base.text_page = 1;
  base.images.push_back({xray, Rect{30, 90, 260, 190}});
  obj.descriptor().pages.push_back(base);

  object::TransparencySetSpec set;
  set.first_page = 1;
  set.count = static_cast<uint32_t>(transparencies);
  set.method = object::TransparencyDisplay::kStacked;
  for (int i = 0; i < transparencies; ++i) {
    const uint32_t overlay =
        obj.AddImage(MarkingOverlay(260, 190, i)).value();
    VisualPageSpec page;
    page.kind = VisualPageSpec::Kind::kTransparency;
    page.images.push_back({overlay, Rect{30, 90, 260, 190}});
    obj.descriptor().pages.push_back(page);
  }
  obj.descriptor().transparency_sets.push_back(set);
  CheckOk(obj.Archive());
  return obj;
}

RelevantObjectsScenario BuildRelevantObjectsScenario(storage::ObjectId id) {
  RelevantObjectsScenario scenario{MultimediaObject(id),
                                   MultimediaObject(id + 1),
                                   MultimediaObject(id + 2)};
  // The two relevant objects: transparencies superimposed on the map
  // (modeled as independent single-page objects showing map + overlay).
  auto build_overlay = [&](MultimediaObject* obj, int which) {
    GraphicsImage g(280, 180);
    for (int i = 0; i < 3; ++i) {
      GraphicsObject site;
      site.shape = ShapeKind::kPolygon;
      const int x = 40 + i * 80 + which * 20;
      const int y = which == 0 ? 40 : 120;
      site.vertices = {{x, y}, {x + 18, y}, {x + 18, y + 14}, {x, y + 14}};
      site.filled = true;
      site.ink = 200;
      site.label = {LabelKind::kText,
                    which == 0 ? "university site" : "hospital",
                    {x, y - 6}};
      g.Add(site);
    }
    const uint32_t base =
        obj->AddImage(SubwayMap(280, 180)).value();
    const uint32_t overlay =
        obj->AddImage(Image::FromGraphics(std::move(g))).value();
    VisualPageSpec map_page;
    map_page.images.push_back({base, Rect{0, 0, 280, 180}});
    obj->descriptor().pages.push_back(map_page);
    VisualPageSpec overlay_page;
    overlay_page.kind = VisualPageSpec::Kind::kTransparency;
    overlay_page.images.push_back({overlay, Rect{0, 0, 280, 180}});
    obj->descriptor().pages.push_back(overlay_page);
    object::TransparencySetSpec set;
    set.first_page = 1;
    set.count = 1;
    obj->descriptor().transparency_sets.push_back(set);
    CheckOk(obj->Archive());
  };
  build_overlay(&scenario.university, 0);
  build_overlay(&scenario.hospitals, 1);

  // The parent: the subway map with two relevant-object indicators.
  MultimediaObject& parent = scenario.parent;
  text::MarkupParser parser;
  auto doc = parser.Parse(
      ".TITLE City Subway Map\n.PP\nSelect an option to superimpose the "
      "sites of the university or the hospitals of the city.\n");
  parent.SetTextPart(std::move(doc).value());
  const uint32_t map = parent.AddImage(SubwayMap(280, 180)).value();
  VisualPageSpec page;
  page.text_page = 1;
  page.images.push_back({map, Rect{20, 60, 280, 180}});
  parent.descriptor().pages.push_back(page);

  object::RelevantObjectLink uni;
  uni.target = id + 1;
  uni.indicator_label = "university sites";
  uni.parent_image_index = map;
  parent.descriptor().relevant_objects.push_back(uni);
  object::RelevantObjectLink hosp;
  hosp.target = id + 2;
  hosp.indicator_label = "hospitals";
  hosp.parent_image_index = map;
  parent.descriptor().relevant_objects.push_back(hosp);
  CheckOk(parent.Archive());
  return scenario;
}

MultimediaObject BuildProcessSimulationObject(storage::ObjectId id,
                                              int steps) {
  MultimediaObject obj(id);
  const uint32_t base = obj.AddImage(SubwayMap(280, 180)).value();
  VisualPageSpec base_page;
  base_page.images.push_back({base, Rect{0, 0, 280, 180}});
  obj.descriptor().pages.push_back(base_page);

  object::ProcessSimulationSpec sim;
  sim.first_page = 0;
  sim.count = static_cast<uint32_t>(steps) + 1;
  sim.page_interval = MillisToMicros(800);
  sim.page_messages.push_back("we begin at the market square");
  for (int i = 0; i < steps; ++i) {
    const uint32_t overlay =
        obj.AddImage(RouteOverwrite(280, 180, i)).value();
    VisualPageSpec page;
    page.kind = VisualPageSpec::Kind::kOverwrite;
    page.images.push_back({overlay, Rect{0, 0, 280, 180}});
    obj.descriptor().pages.push_back(page);
    sim.page_messages.push_back(
        i % 2 == 0 ? "note the old clock tower on the left"
                   : "the walk continues along the canal");
  }
  obj.descriptor().process_simulations.push_back(sim);
  CheckOk(obj.Archive());
  return obj;
}

namespace {

/// Exit-time snapshot bookkeeping for the bench that called PrintHeader.
struct SnapshotState {
  std::string bench;
  Micros sim_time = 0;
  int workers = 1;
  bool emitted_explicitly = false;
};

SnapshotState& State() {
  static SnapshotState* state = new SnapshotState();
  return *state;
}

std::string SanitizeBenchName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return out;
}

std::string SnapshotPath(const std::string& bench) {
  const std::string base = "BENCH_" + SanitizeBenchName(bench) + ".json";
  const char* dir = std::getenv("MINOS_STATS_DIR");
  return (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" + base
                                          : base;
}

void EmitSnapshotAtExit() {
  SnapshotState& state = State();
  if (state.emitted_explicitly || state.bench.empty()) return;
  obs::SnapshotMeta meta{state.bench, state.sim_time, state.workers};
  Status status = obs::WriteSnapshotJson(obs::MetricsRegistry::Default(),
                                         SnapshotPath(state.bench), meta);
  if (!status.ok()) {
    std::fprintf(stderr, "metrics snapshot failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

void PrintHeader(const std::string& experiment, const std::string& title) {
  std::printf("== %s: %s ==\n", experiment.c_str(), title.c_str());
  SnapshotState& state = State();
  if (state.bench.empty()) {
    state.bench = experiment;
    std::atexit(EmitSnapshotAtExit);
  }
}

void NoteSimTime(Micros sim_time_us) { State().sim_time = sim_time_us; }

int ParseWorkers(int argc, char** argv) {
  int workers = 1;
  if (const char* env = std::getenv("MINOS_WORKERS");
      env != nullptr && *env != '\0') {
    workers = std::max(1, std::atoi(env));
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workers" && i + 1 < argc) {
      workers = std::max(1, std::atoi(argv[i + 1]));
      ++i;
    } else if (arg.rfind("--workers=", 0) == 0) {
      workers = std::max(1, std::atoi(arg.c_str() + 10));
    }
  }
  State().workers = workers;
  return workers;
}

int Workers() { return State().workers; }

Status EmitMetricsSnapshot(const std::string& bench_name,
                           const std::string& path, Micros sim_time_us) {
  State().emitted_explicitly = true;
  obs::SnapshotMeta meta{bench_name, sim_time_us, State().workers};
  return obs::WriteSnapshotJson(obs::MetricsRegistry::Default(), path, meta);
}

Status EmitTraceSnapshot(const std::string& experiment,
                         const obs::Tracer& tracer, Micros measured_us) {
  const std::string base =
      "TRACE_" + SanitizeBenchName(experiment) + ".json";
  const char* dir = std::getenv("MINOS_STATS_DIR");
  const std::string path = (dir != nullptr && *dir != '\0')
                               ? std::string(dir) + "/" + base
                               : base;
  obs::Tracer::TraceMeta meta;
  meta.bench = experiment;
  meta.measured_us = measured_us;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot open " + path);
    out << tracer.ToJson(meta) << "\n";
    if (!out.good()) return Status::Internal("write failed: " + path);
  }
  // Reconcile: every measured microsecond must be owned by exactly one
  // root span, so the roots must sum to the bench's own clock reading.
  Micros roots = 0;
  for (const obs::SpanRecord& span : tracer.OrderedSpans()) {
    if (span.parent_span_id == 0) roots += span.duration_us();
  }
  const Micros tolerance = measured_us / 100;
  const Micros delta = roots > measured_us ? roots - measured_us
                                           : measured_us - roots;
  if (delta > tolerance) {
    return Status::FailedPrecondition(
        "trace does not reconcile: root spans sum to " +
        std::to_string(roots) + "us, bench measured " +
        std::to_string(measured_us) + "us (wrote " + path + ")");
  }
  std::printf("trace: %s (%lld root-us vs %lld measured-us)\n",
              path.c_str(), static_cast<long long>(roots),
              static_cast<long long>(measured_us));
  return Status::OK();
}

}  // namespace minos::bench
