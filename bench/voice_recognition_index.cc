// RECOG-1: insertion-time voice recognition vs manual indexing.
// The paper's design point: recognition happens at insertion time (or
// machine idle time) and yields an utterance->position index served by
// the same access methods as text. The table sweeps recognizer accuracy
// and reports index build cost (simulated CPU), hit coverage, and the
// browse-to-pattern outcome, against the manual-indexing alternative
// (perfect index, but heavy editing effort charged per tagged word).

#include <cctype>
#include <cstdio>

#include "minos/util/string_util.h"
#include "minos/voice/recognizer.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("RECOG-1", "insertion-time recognition index");
  text::Document doc = bench::LongReport(16);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  voice::VoiceTrack track = synth.Synthesize(doc).value();
  const std::vector<std::string> vocabulary = {
      "multimedia", "objects", "presentation", "archived", "paragraph"};

  // Ground truth: spoken vocabulary occurrences (case-folded, trailing
  // punctuation stripped, exactly as the recognizer tokenizes).
  size_t spoken_vocab_words = 0;
  for (const voice::WordAlignment& w : track.words) {
    std::string token = AsciiToLower(w.word);
    while (!token.empty() &&
           !std::isalnum(static_cast<unsigned char>(token.back()))) {
      token.pop_back();
    }
    for (const std::string& v : vocabulary) {
      if (token == v) {
        ++spoken_vocab_words;
        break;
      }
    }
  }

  std::printf("voice_duration=%llds words=%zu vocab_occurrences=%zu\n",
              static_cast<long long>(track.pcm.Duration() / 1000000),
              track.words.size(), spoken_vocab_words);
  std::printf("%-22s %-14s %-12s %-12s %-14s\n", "method", "build_cost_s",
              "postings", "coverage", "false_alarms");

  for (double hit_rate : {1.0, 0.9, 0.75, 0.5}) {
    voice::RecognizerParams params;
    params.hit_rate = hit_rate;
    params.false_alarm_rate = 0.01;
    voice::Recognizer recognizer(vocabulary, params);
    const voice::RecognitionResult result = recognizer.Recognize(track);
    size_t false_alarms = 0;
    for (const voice::RecognizedUtterance& u : result.utterances) {
      if (!u.correct) ++false_alarms;
    }
    const double coverage =
        spoken_vocab_words == 0
            ? 0.0
            : static_cast<double>(result.utterances.size() - false_alarms) /
                  static_cast<double>(spoken_vocab_words);
    char name[64];
    std::snprintf(name, sizeof(name), "recognizer hit=%.2f", hit_rate);
    std::printf("%-22s %-14.1f %-12zu %-12.3f %-14zu\n", name,
                MicrosToSeconds(result.cpu_cost),
                result.utterances.size(), coverage, false_alarms);
  }

  // Manual indexing alternative: perfect coverage but the editor touches
  // every vocabulary occurrence by hand (charge 4 s per tagged word —
  // listen, stop, type).
  const Micros manual_cost =
      SecondsToMicros(4) * static_cast<Micros>(spoken_vocab_words);
  std::printf("%-22s %-14.1f %-12zu %-12.3f %-14d\n", "manual indexing",
              MicrosToSeconds(manual_cost), spoken_vocab_words, 1.0, 0);

  std::printf("paper_claim=recognition at insertion time reduces or "
              "eliminates the need for manual indexing\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
