// FMT-1: object formation, archiving, and mailing (§4). Measures the
// synthesis->descriptor+composition build for growing documents, the
// archive path with offset handling, the dedup savings of archiver
// pointers, and the mail-outside pointer resolution cost.

#include <chrono>
#include <cstdio>

#include "minos/format/archive_mailer.h"
#include "minos/format/object_formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Run() {
  bench::PrintHeader("FMT-1", "object formation, archive, and mail");
  std::printf("%-12s %-10s %-12s %-14s %-14s\n", "paragraphs", "pages",
              "format_ms", "archive_bytes", "decode_ms");

  for (int paragraphs : {8, 32, 128, 512}) {
    format::ObjectWorkspace ws("report-" + std::to_string(paragraphs));
    std::string synthesis = "@LAYOUT 48 14\n";
    {
      // Reuse the LongReport generator through its markup.
      text::Document doc = bench::LongReport(paragraphs);
      synthesis += ".TITLE Synthetic Long Report\n";
      // Reconstruct paragraphs from the document's own components.
      for (const auto& p :
           doc.Components(text::LogicalUnit::kParagraph)) {
        synthesis += ".PP\n";
        synthesis += doc.contents().substr(p.span.begin, p.span.length());
        synthesis += "\n";
      }
    }
    ws.SetSynthesis(synthesis);
    format::ObjectFormatter formatter;
    const double t0 = NowMs();
    auto obj = formatter.Format(ws, static_cast<uint64_t>(paragraphs));
    if (!obj.ok()) {
      std::fprintf(stderr, "format failed: %s\n",
                   obj.status().ToString().c_str());
      return 1;
    }
    const double format_ms = NowMs() - t0;
    if (!obj->Archive().ok()) return 1;
    auto bytes = obj->SerializeArchived();
    if (!bytes.ok()) return 1;
    const double t1 = NowMs();
    auto decoded = object::MultimediaObject::DeserializeArchived(
        obj->id(), *bytes);
    if (!decoded.ok()) return 1;
    const double decode_ms = NowMs() - t1;
    std::printf("%-12d %-10zu %-12.2f %-14zu %-14.2f\n", paragraphs,
                obj->descriptor().pages.size(), format_ms, bytes->size(),
                decode_ms);
  }

  // Dedup and mail-outside on a shared x-ray.
  SimClock clock;
  storage::BlockDevice device("optical", 1 << 15, 512,
                              storage::DeviceCostModel::Instant(), true,
                              &clock);
  storage::BlockCache cache(128);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  format::ArchiveMailer mailer(&archiver, &versions, &clock);

  object::MultimediaObject base(1);
  base.SetTextPart(bench::OfficeDocument()).ok();
  base.AddImage(bench::XrayBitmap(320, 240)).ok();
  object::VisualPageSpec page;
  page.text_page = 1;
  base.descriptor().pages.push_back(page);
  base.Archive().ok();

  const std::string xray_payload = base.images()[0].Serialize();
  auto shared = archiver.Append(xray_payload);
  if (!shared.ok()) return 1;
  archiver.Flush().ok();

  auto full = base.SerializeArchived();
  auto with_refs =
      mailer.SerializeWithArchiverRefs(base, {{"image:0", *shared}});
  if (!full.ok() || !with_refs.ok()) return 1;
  mailer.ArchiveBytes(1, *with_refs).ok();
  auto mailed = mailer.MailOutside(1);
  if (!mailed.ok()) return 1;

  std::printf("\ndedup and mailing (one shared 320x240 x-ray):\n");
  std::printf("self_contained_bytes=%zu\n", full->size());
  std::printf("with_archiver_refs_bytes=%zu (%.1f%% saved per copy)\n",
              with_refs->size(),
              100.0 * (1.0 - static_cast<double>(with_refs->size()) /
                                 static_cast<double>(full->size())));
  std::printf("mailed_outside_bytes=%zu (pointers resolved, self "
              "contained)\n",
              mailed->size());
  const bool intact =
      object::MultimediaObject::DeserializeArchived(1, *mailed).ok();
  std::printf("mailed_object_decodes=%s\n", intact ? "yes" : "NO");
  std::printf("paper_claim=archiver pointers avoid data duplication; "
              "mailing outside extracts and appends the data\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
