// PREFETCH-1: does overlapping link transfer with presentation time pay?
// The same query-browse-present-page-through session runs under three
// transfer disciplines — whole-object fetch at open ("whole"), skeleton
// fetch with synchronous demand paging ("sync"), and skeleton fetch with
// the asynchronous prefetch pipeline ("prefetch") — under a clean and a
// flaky link. The table reports time-to-first-page and page-turn
// latencies; the run fails (exit 1) unless prefetching beats synchronous
// demand paging at the page-turn p99 on the clean link, which is the
// acceptance gate for the pipeline.

#include <cstdio>
#include <string>
#include <vector>

#include "minos/core/presentation_manager.h"
#include "minos/core/visual_browser.h"
#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/object_server.h"
#include "minos/server/prefetch.h"
#include "minos/server/workstation.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

/// A report whose pages carry real transfer weight: formatted text plus
/// a bitmap on every other page.
object::MultimediaObject PagedObject(storage::ObjectId id, int paragraphs) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(bench::LongReport(paragraphs)).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  for (size_t i = 0; i < pages; i += 2) {
    const uint32_t index =
        obj.AddImage(bench::XrayBitmap(96, 72)).value();
    object::PlacedImage placed;
    placed.image_index = index;
    placed.placement = image::Rect{180, 20, 96, 72};
    obj.descriptor().pages[i].images.push_back(placed);
  }
  obj.Archive().ok();
  return obj;
}

struct Config {
  const char* name;
  bool paged;     ///< Skeleton fetch + demand paging.
  bool speculate; ///< Background prefetch around the cursor.
};

struct Profile {
  const char* name;
  server::FaultProfile faults;
};

/// Simulated reading time per page: the window background transfers
/// overlap with ("the time that it takes for a user to browse through a
/// page can be used to fetch other pages").
constexpr Micros kViewTime = MillisToMicros(120);

/// Time the user spends examining one miniature card before moving on or
/// opening the object under the cursor — the window in which its
/// skeleton transfers in the background.
constexpr Micros kCardViewTime = MillisToMicros(1000);

int Run() {
  bench::PrintHeader("prefetch_pipeline",
                     "page-turn latency: sync vs prefetch");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();

  const std::vector<Config> configs = {
      {"whole", false, false},
      {"sync", true, false},
      {"prefetch", true, true},
  };
  const std::vector<Profile> profiles = {
      {"none", server::FaultProfile::None()},
      {"flaky", server::FaultProfile::Flaky()},
  };

  std::printf("%-8s %-9s %-11s %-11s %-11s %-18s\n", "profile", "config",
              "first_pg_ms", "turn_p50_ms", "turn_p99_ms",
              "hits/partial/miss");

  Micros total_sim_time = 0;
  for (const Profile& profile : profiles) {
    for (const Config& config : configs) {
      SimClock clock;
      // The flaky-link prefetch cell runs traced — the "slow query"
      // walkthrough cell, where retry backoff and background lanes
      // show up in the attribution. Bench-level ambient roots bracket
      // exactly the measured clock reads; the workstation's own ws.*
      // spans nest underneath them, so the trace's root durations sum
      // to the measured total and the snapshot gate reconciles.
      const bool traced = std::string(profile.name) == "flaky" &&
                          std::string(config.name) == "prefetch";
      obs::Tracer tracer(&clock);
      Micros traced_us = 0;
      runtime::TaskPool pool(&clock, bench::Workers());
      storage::BlockDevice device("optical", 65536, 512,
                                  storage::DeviceCostModel::OpticalDisk(),
                                  true, &clock);
      storage::BlockCache cache(256);
      storage::Archiver archiver(&device, &cache);
      storage::VersionStore versions;
      server::Link link = server::Link::Ethernet(&clock);
      server::ObjectServer server(&archiver, &versions, &clock, &link);
      server::FaultInjector injector(profile.faults, 0xFE7C, &clock);
      link.SetFaultInjector(&injector);
      for (storage::ObjectId id = 1; id <= 3; ++id) {
        if (!server.Store(PagedObject(id, 10)).ok()) return 1;
      }

      render::Screen screen;
      server::Workstation workstation(&server, &screen, &clock);
      if (config.paged) {
        server::PrefetchOptions options;
        if (!config.speculate) {
          options.pages_ahead = 0;
          options.pages_behind = 0;
          options.miniature_radius = 0;
          options.max_inflight_per_pump = 0;
        }
        workstation.EnablePrefetch(options);
      }
      if (traced) workstation.SetTracer(&tracer);
      workstation.SetTaskPool(&pool);

      const std::string scope = std::string("prefetch_pipeline.") +
                                profile.name + "." + config.name;
      obs::Histogram* open_us = reg.histogram(scope + ".page_open_us");
      obs::Histogram* turn_us = reg.histogram(scope + ".page_turn_us");
      const int64_t hits0 = reg.counter("prefetch.hits")->value();
      const int64_t partial0 = reg.counter("prefetch.partial_hits")->value();
      const int64_t miss0 = reg.counter("prefetch.misses")->value();

      // The user browses the miniature strip, pausing on each card. The
      // cursor steers the pipeline: adjacent miniatures and the skeleton
      // of the object under the cursor transfer while the user looks.
      std::optional<obs::TraceSpan> card_root;
      if (traced) card_root = tracer.StartSpan("bench.card_browse");
      const Micros browse_start = clock.Now();
      auto browser = workstation.Query({"report"});
      if (browser.ok() && !browser->empty()) {
        clock.Advance(kCardViewTime);
        browser->Next().ok();
        clock.Advance(kCardViewTime);
        browser->Previous().ok();
        clock.Advance(kCardViewTime);
      }
      if (card_root.has_value()) {
        traced_us += clock.Now() - browse_start;
        card_root->End();
      }
      for (storage::ObjectId id = 1; id <= 3; ++id) {
        std::optional<obs::TraceSpan> open_root;
        if (traced) open_root = tracer.StartSpan("bench.page_open");
        const Micros open_start = clock.Now();
        const bool opened = workstation.Present(id).ok();
        if (open_root.has_value()) {
          traced_us += clock.Now() - open_start;
          open_root->End();
        }
        if (!opened) continue;
        open_us->Record(static_cast<double>(clock.Now() - open_start));
        core::VisualBrowser* vb =
            workstation.presentation().visual_browser();
        if (vb == nullptr) continue;
        for (;;) {
          clock.Advance(kViewTime);  // The user reads the page.
          std::optional<obs::TraceSpan> turn_root;
          if (traced) turn_root = tracer.StartSpan("bench.page_turn");
          const Micros turn_start = clock.Now();
          const bool turned = vb->NextPage().ok();
          if (turn_root.has_value()) {
            traced_us += clock.Now() - turn_start;
            turn_root->End();
          }
          if (!turned) break;
          turn_us->Record(static_cast<double>(clock.Now() - turn_start));
        }
        // A random seek back to the start: stale entries around the old
        // cursor are cancelled or wasted, never delivered.
        clock.Advance(kViewTime);
        std::optional<obs::TraceSpan> seek_root;
        if (traced) seek_root = tracer.StartSpan("bench.page_seek");
        const Micros seek_start = clock.Now();
        vb->GotoPage(1).ok();
        if (seek_root.has_value()) {
          traced_us += clock.Now() - seek_start;
          seek_root->End();
        }
      }

      const obs::MetricsSnapshot snap = reg.Snapshot();
      const obs::HistogramSummary* t =
          snap.FindHistogram(scope + ".page_turn_us");
      const obs::HistogramSummary* o =
          snap.FindHistogram(scope + ".page_open_us");
      std::printf(
          "%-8s %-9s %-11.1f %-11.1f %-11.1f %lld/%lld/%lld\n",
          profile.name, config.name,
          o != nullptr ? o->p50 / 1000.0 : 0.0,
          t != nullptr ? t->p50 / 1000.0 : 0.0,
          t != nullptr ? t->p99 / 1000.0 : 0.0,
          static_cast<long long>(reg.counter("prefetch.hits")->value() -
                                 hits0),
          static_cast<long long>(
              reg.counter("prefetch.partial_hits")->value() - partial0),
          static_cast<long long>(reg.counter("prefetch.misses")->value() -
                                 miss0));
      if (traced) {
        workstation.SetTracer(nullptr);
        Status trace_gate = bench::EmitTraceSnapshot("prefetch_pipeline",
                                                     tracer, traced_us);
        if (!trace_gate.ok()) {
          std::printf("FAIL: trace snapshot: %s\n",
                      trace_gate.ToString().c_str());
          return 1;
        }
      }
      total_sim_time += clock.Now();
    }
  }

  std::printf("prefetch.wasted=%lld prefetch.cancelled=%lld\n",
              static_cast<long long>(reg.counter("prefetch.wasted")->value()),
              static_cast<long long>(
                  reg.counter("prefetch.cancelled")->value()));
  bench::NoteSimTime(total_sim_time);

  // Acceptance gate: on the clean link, prefetching must strictly beat
  // synchronous demand paging at the page-turn p99.
  const obs::MetricsSnapshot snap = reg.Snapshot();
  const obs::HistogramSummary* sync_turns =
      snap.FindHistogram("prefetch_pipeline.none.sync.page_turn_us");
  const obs::HistogramSummary* prefetch_turns =
      snap.FindHistogram("prefetch_pipeline.none.prefetch.page_turn_us");
  if (sync_turns == nullptr || prefetch_turns == nullptr ||
      !(prefetch_turns->p99 < sync_turns->p99)) {
    std::printf("FAIL: prefetch page-turn p99 (%.1f us) is not below the "
                "synchronous baseline (%.1f us)\n",
                prefetch_turns != nullptr ? prefetch_turns->p99 : -1.0,
                sync_turns != nullptr ? sync_turns->p99 : -1.0);
    return 1;
  }
  std::printf("gate: prefetch p99 %.1f us < sync p99 %.1f us\n",
              prefetch_turns->p99, sync_turns->p99);
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
