// TOUR-1: tour playback over a labeled map. A designer-authored tour is
// played automatically; the table reports each stop's time, attached
// message, and the voice labels the moving view encountered, plus the
// interruption/resume path ("The user may interrupt the tour and move the
// window all round", §2).

#include <cstdio>
#include <map>

#include "minos/core/presentation_manager.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("TOUR-1", "guided tour over a labeled map");
  object::MultimediaObject obj(1);
  const uint32_t map = obj.AddImage(bench::SubwayMap(400, 260)).value();
  object::VisualPageSpec page;
  page.images.push_back({map, image::Rect{}});
  obj.descriptor().pages.push_back(page);
  object::ObjectDescriptor::TourSpec tour;
  tour.image_index = map;
  tour.view_width = 140;
  tour.view_height = 100;
  tour.positions = {{0, 0}, {120, 40}, {200, 80}, {260, 120}, {60, 160}};
  tour.audio_messages = {"we start at the hospital quarter",
                         "the central interchange lies ahead", "",
                         "markets line this stretch",
                         "the tour ends by the waterfront"};
  obj.descriptor().tours.push_back(tour);
  if (!obj.Archive().ok()) return 1;

  std::map<storage::ObjectId, object::MultimediaObject> library;
  library.emplace(obj.id(), obj);
  SimClock clock;
  render::Screen screen;
  core::PresentationManager pm(&screen, &clock);
  pm.SetResolver([&library](storage::ObjectId id)
                     -> StatusOr<object::MultimediaObject> {
    auto it = library.find(id);
    if (it == library.end()) return Status::NotFound("no object");
    return it->second;
  });
  if (!pm.Open(1).ok()) return 1;

  // Interrupt after two stops, then resume to the end.
  auto paused = pm.PlayTour(0, 0, 2);
  if (!paused.ok()) return 1;
  const Micros pause_at = clock.Now();
  auto finished = pm.PlayTour(0, *paused);
  if (!finished.ok()) return 1;

  const auto stops = pm.log().OfKind(core::EventKind::kTourStop);
  const auto labels = pm.log().OfKind(core::EventKind::kLabelPlayed);
  const auto spoken = pm.log().OfKind(core::EventKind::kVoiceMessagePlayed);
  std::printf("%-6s %-10s\n", "stop", "at_ms");
  for (const auto& s : stops) {
    std::printf("%-6lld %-10lld\n", static_cast<long long>(s.value),
                static_cast<long long>(MicrosToMillis(s.at)));
  }
  std::printf("stops_played=%zu (with interruption at %lldms after stop 2)\n",
              stops.size(),
              static_cast<long long>(MicrosToMillis(pause_at)));
  std::printf("tour_messages_played=%zu voice_labels_encountered=%zu\n",
              spoken.size(), labels.size());
  for (const auto& l : labels) {
    std::printf("  label: %s\n", l.detail.c_str());
  }
  std::printf("total_tour_time=%lldms\n",
              static_cast<long long>(MicrosToMillis(clock.Now())));
  std::printf("event_log_digest=%016llx\n",
              static_cast<unsigned long long>(pm.log().Digest()));
  std::printf("paper_claim=a tour with voice messages simulates a guided "
              "tour through sections of the map\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
