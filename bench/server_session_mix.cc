// SRV-2: mixed-session workload at the object server. N workstations
// concurrently issue a realistic op mix — whole-object fetches, miniature
// cards, and view-region reads — against one optical archive. The block
// accesses of every op are replayed through the arm scheduler per policy,
// and the table reports mean response time *by op type*, showing which
// interactions stay interactive under load (the §5 performance concern
// made concrete).

#include <cstdio>
#include <map>

#include "minos/storage/request_scheduler.h"
#include "minos/server/object_server.h"
#include "minos/util/random.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::IoRequest;
using storage::RequestScheduler;
using storage::SchedulingPolicy;

enum class OpType : int { kFetch = 0, kMiniature = 1, kViewRow = 2 };

struct Op {
  OpType type;
  uint64_t first_block;
  uint64_t blocks;
};

int Run() {
  bench::PrintHeader("SRV-2", "mixed sessions through the arm scheduler");
  constexpr uint32_t kBlockSize = 1024;

  // Stage the archive once with instant costs to learn object layouts.
  SimClock stage_clock;
  storage::BlockDevice stage_device("stage", 1 << 16, kBlockSize,
                                    storage::DeviceCostModel::Instant(),
                                    true, &stage_clock);
  storage::BlockCache stage_cache(1024);
  storage::Archiver stage_archiver(&stage_device, &stage_cache);
  storage::VersionStore stage_versions;
  server::ObjectServer stage(&stage_archiver, &stage_versions,
                             &stage_clock, nullptr);

  std::vector<std::pair<uint64_t, uint64_t>> object_extents;  // block, count
  for (uint64_t id = 1; id <= 12; ++id) {
    object::MultimediaObject obj(id);
    obj.SetTextPart(bench::LongReport(6)).ok();
    obj.AddImage(bench::XrayBitmap(512, 384)).ok();
    object::VisualPageSpec page;
    page.text_page = 1;
    page.images.push_back({0, image::Rect{}});
    obj.descriptor().pages.push_back(page);
    obj.Archive().ok();
    const uint64_t before = stage_archiver.size();
    auto addr = stage.Store(obj);
    if (!addr.ok()) return 1;
    (void)before;
    object_extents.emplace_back(addr->offset / kBlockSize,
                                addr->length / kBlockSize + 1);
  }

  // Op generator: each user issues 12 ops over 2 seconds. With more
  // than one shard the ops partition by the object's owning shard
  // (round-robin over the catalog, the router's balanced placement) and
  // each shard's arm serves only its own share.
  auto make_ops = [&](int users, int shards, uint64_t seed) {
    Random rng(seed);
    std::vector<std::vector<IoRequest>> reqs(shards);
    std::map<uint64_t, OpType> op_of;
    uint64_t id = 0;
    for (int u = 0; u < users; ++u) {
      for (int k = 0; k < 12; ++k) {
        const size_t pick = rng.Uniform(object_extents.size());
        const auto& [obj_block, obj_blocks] = object_extents[pick];
        const double dice = rng.NextDouble();
        IoRequest req;
        req.id = id;
        req.arrival_time = static_cast<Micros>(rng.Uniform(2000000));
        if (dice < 0.2) {  // Whole-object fetch.
          req.block = obj_block;
          req.count = obj_blocks;
          op_of[id] = OpType::kFetch;
        } else if (dice < 0.5) {  // Miniature: first ~8 blocks.
          req.block = obj_block;
          req.count = std::min<uint64_t>(8, obj_blocks);
          op_of[id] = OpType::kMiniature;
        } else {  // View row read: 1 block somewhere in the object.
          req.block = obj_block + rng.Uniform(obj_blocks);
          req.count = 1;
          op_of[id] = OpType::kViewRow;
        }
        ++id;
        reqs[pick % shards].push_back(req);
      }
    }
    return std::make_pair(reqs, op_of);
  };

  std::printf("%-8s %-8s %-8s %-16s %-16s %-16s\n", "users", "shards",
              "policy", "fetch_ms", "miniature_ms", "view_row_ms");
  for (int users : {4, 16, 48}) {
    for (int shards : {1, 4}) {
      for (SchedulingPolicy policy :
           {SchedulingPolicy::kFcfs, SchedulingPolicy::kScan}) {
        auto [shard_reqs, op_of] = make_ops(users, shards, 1234);
        double sum[3] = {0, 0, 0};
        int n[3] = {0, 0, 0};
        // Each shard's device and arm are independent — the shards run
        // in parallel in the modeled system, so their replays do not
        // share a clock and response times never queue across shards.
        for (int s = 0; s < shards; ++s) {
          SimClock clock;
          storage::BlockDevice device("optical", 1 << 16, kBlockSize,
                                      storage::DeviceCostModel::OpticalDisk(),
                                      false, &clock);
          RequestScheduler scheduler(&device, policy);
          std::map<uint64_t, Micros> arrival;
          for (const IoRequest& r : shard_reqs[s]) {
            arrival[r.id] = r.arrival_time;
          }
          for (const auto& c : scheduler.Run(shard_reqs[s])) {
            const int t = static_cast<int>(op_of[c.id]);
            sum[t] += static_cast<double>(c.completion_time - arrival[c.id]);
            ++n[t];
          }
        }
        std::printf("%-8d %-8d %-8s %-16.0f %-16.0f %-16.0f\n", users,
                    shards, SchedulingPolicyName(policy),
                    n[0] ? sum[0] / n[0] / 1000 : 0,
                    n[1] ? sum[1] / n[1] / 1000 : 0,
                    n[2] ? sum[2] / n[2] / 1000 : 0);
      }
    }
  }
  std::printf("observation=small interactive ops (view rows, miniatures) "
              "queue behind whole-object fetches; SCAN narrows the gap and "
              "sharding the catalog over 4 arms cuts queueing at high "
              "user counts\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
