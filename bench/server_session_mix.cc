// SRV-2: mixed-session workload at the object server, driven through
// the event-driven SessionManager. N concurrent sessions issue a
// realistic op mix — opens (first-page staging), page turns, ranked
// searches and appends — against one- and four-shard fabrics, and the
// table reports mean response time *by op class*, showing which
// interactions stay interactive under load (the §5 performance concern
// made concrete). One shard serializes every staging miss on a single
// link arm; four shards spread the same sessions by placement, so the
// heavyweight opens get cheaper while prefetch keeps the page turns
// interactive at every scale.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "minos/server/shard_router.h"
#include "minos/session/session_manager.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::ObjectId;

/// One shard's stack: instant device costs, so response times are the
/// link scheduling and session multiplexing this bench is about.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(1024),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

server::ShardPlacement RoundRobin() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    return static_cast<size_t>((id - 1) % shard_count);
  };
}

object::MultimediaObject PagedObject(ObjectId id) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(bench::LongReport(10)).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  const uint32_t index = obj.AddImage(bench::XrayBitmap(512, 384)).value();
  object::PlacedImage placed;
  placed.image_index = index;
  placed.placement = image::Rect{180, 20, 96, 72};
  obj.descriptor().pages[0].images.push_back(placed);
  obj.Archive().ok();
  return obj;
}

constexpr int kReadObjects = 10;  ///< Objects 11..12 take appends only.
constexpr int kObjects = 12;
constexpr int kEpochs = 12;

struct ClassMeans {
  double sum[4] = {0, 0, 0, 0};  ///< open, turn, search, append (us).
  int n[4] = {0, 0, 0, 0};

  double Ms(int c) const { return n[c] != 0 ? sum[c] / n[c] / 1000.0 : 0; }
};

/// Runs `users` mixed sessions over a fresh `shards`-shard fabric and
/// returns mean response time per op class.
ClassMeans RunMix(int users, size_t shards) {
  ClassMeans out;
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < shards; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  runtime::TaskPool pool(&clock, bench::Workers());
  router.SetTaskPool(&pool);
  for (ObjectId id = 1; id <= kObjects; ++id) {
    if (!router.Store(PagedObject(id)).ok()) return out;
  }

  session::SessionOptions options;
  options.streams_per_shard = 64;  // One-shard runs pool every lease.
  session::SessionManager manager(&router, &clock, options);
  manager.SetTaskPool(&pool);
  manager.SetAppendHandler([&router](ObjectId id, const std::string& text) {
    server::ObjectServer::AppendParts parts;
    parts.text = text;
    return router.Append(id, parts).status();
  });

  // Session u: class u%4 — reader (turn 1), skimmer (turn 2), searcher,
  // writer. Every session acts every epoch.
  std::vector<session::SessionId> ids(users);
  const char* profiles[4] = {"reader", "skimmer", "searcher", "writer"};
  for (int u = 0; u < users; ++u) {
    ids[u] = manager.Open(profiles[u % 4]);
  }
  for (int e = 0; e < kEpochs; ++e) {
    std::vector<session::SessionEvent> events;
    for (int u = 0; u < users; ++u) {
      session::SessionEvent ev;
      ev.session = ids[u];
      switch (u % 4) {
        case 0:
        case 1:
          if (e == 0) {
            ev.kind = session::SessionEvent::Kind::kOpen;
            ev.object = static_cast<ObjectId>(1 + u % kReadObjects);
          } else {
            ev.kind = session::SessionEvent::Kind::kPageTurn;
            ev.delta = u % 4 == 0 ? 1 : 2;
          }
          break;
        case 2:
          ev.kind = session::SessionEvent::Kind::kSearch;
          ev.words = {(u + e) % 2 == 0 ? "multimedia" : "presentation"};
          break;
        default:
          ev.kind = session::SessionEvent::Kind::kAppend;
          ev.object = static_cast<ObjectId>(kReadObjects + 1 + u % 2);
          ev.append_text =
              "Session note " + std::to_string(e) + " from user " +
              std::to_string(u) + " about the archived presentation.";
          break;
      }
      events.push_back(std::move(ev));
    }
    for (const session::SessionOutcome& o : manager.PumpEpoch(events)) {
      if (!o.status.ok()) continue;
      int c = -1;
      switch (o.kind) {
        case session::SessionEvent::Kind::kOpen:
          c = 0;
          break;
        case session::SessionEvent::Kind::kPageTurn:
          c = 1;
          break;
        case session::SessionEvent::Kind::kSearch:
          c = 2;
          break;
        case session::SessionEvent::Kind::kAppend:
          c = 3;
          break;
        default:
          break;
      }
      if (c >= 0) {
        out.sum[c] += static_cast<double>(o.latency_us);
        ++out.n[c];
      }
    }
    clock.Advance(MillisToMicros(150));
  }
  return out;
}

int Run() {
  bench::PrintHeader("SRV-2",
                     "mixed sessions through the session manager");
  std::printf("%-8s %-8s %-10s %-10s %-10s %-10s\n", "users", "shards",
              "open_ms", "turn_ms", "search_ms", "append_ms");
  double open_1shard_48 = 0, open_4shard_48 = 0;
  for (int users : {4, 16, 48}) {
    for (size_t shards : {size_t{1}, size_t{4}}) {
      const ClassMeans m = RunMix(users, shards);
      std::printf("%-8d %-8zu %-10.1f %-10.1f %-10.1f %-10.1f\n", users,
                  shards, m.Ms(0), m.Ms(1), m.Ms(2), m.Ms(3));
      if (users == 48 && shards == 1) open_1shard_48 = m.Ms(0);
      if (users == 48 && shards == 4) open_4shard_48 = m.Ms(0);
    }
  }
  if (!(open_4shard_48 < open_1shard_48)) {
    std::printf("FAIL: 4-shard opens at 48 users (%.1fms) are not cheaper "
                "than 1-shard opens (%.1fms)\n",
                open_4shard_48, open_1shard_48);
    return 1;
  }
  std::printf("gate: sharding cuts 48-user open staging %.1fms -> %.1fms\n",
              open_1shard_48, open_4shard_48);
  std::printf("observation=heavyweight opens queue on the staging links "
              "and spread with the catalog across shards; prefetched page "
              "turns stay interactive at every user count while searches "
              "and appends ride the front-end lane\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
