// PAUSE-1: pause detection and short/long classification across speakers.
// For each speaker profile the detector sees only the PCM; precision and
// recall are scored against the synthesis ground truth, and the adaptive
// short/long split is compared with the true word/paragraph pause means.
// Also measures the landing-point error of the rewind-n-pauses command.

#include <cstdio>

#include "minos/voice/pause.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

struct Score {
  double precision = 0;
  double recall = 0;
  double split_ms = 0;
  double true_word_ms = 0;
  double true_para_ms = 0;
};

Score Evaluate(const voice::SpeakerParams& params) {
  text::Document doc = bench::LongReport(12);
  voice::SpeechSynthesizer synth(params);
  voice::VoiceTrack track = synth.Synthesize(doc).value();
  voice::PauseDetector detector;
  const auto pauses = detector.Detect(track.pcm);

  // Precision: detected pauses whose midpoint lies in a true silence.
  size_t true_positive = 0;
  for (const voice::Pause& p : pauses) {
    const size_t mid = p.samples.begin + p.length() / 2;
    for (const voice::SilenceTruth& s : track.silences) {
      if (s.samples.Contains(mid)) {
        ++true_positive;
        break;
      }
    }
  }
  // Recall: true silences (long enough to matter) covered by a detection.
  const size_t min_len = track.pcm.MicrosToSamples(MillisToMicros(50));
  size_t relevant = 0, covered = 0;
  for (const voice::SilenceTruth& s : track.silences) {
    if (s.samples.length() < min_len) continue;
    ++relevant;
    const size_t mid = s.samples.begin + s.samples.length() / 2;
    for (const voice::Pause& p : pauses) {
      if (p.samples.Contains(mid)) {
        ++covered;
        break;
      }
    }
  }

  Score score;
  score.precision =
      pauses.empty() ? 0.0
                     : static_cast<double>(true_positive) / pauses.size();
  score.recall =
      relevant == 0 ? 0.0 : static_cast<double>(covered) / relevant;
  const voice::PauseContext ctx = detector.SampleContext(
      track.pcm, pauses, track.pcm.size() / 2, track.pcm.size());
  score.split_ms = ctx.split_ms;
  // Ground-truth means.
  double word_sum = 0, para_sum = 0;
  int word_n = 0, para_n = 0;
  for (const voice::SilenceTruth& s : track.silences) {
    const double ms =
        static_cast<double>(track.pcm.SamplesToMicros(s.samples.length())) /
        1000.0;
    if (s.level == 0) {
      word_sum += ms;
      ++word_n;
    } else if (s.level == 2) {
      para_sum += ms;
      ++para_n;
    }
  }
  score.true_word_ms = word_n > 0 ? word_sum / word_n : 0;
  score.true_para_ms = para_n > 0 ? para_sum / para_n : 0;
  return score;
}

int Run() {
  bench::PrintHeader("PAUSE-1", "pause detection across speakers");
  std::printf("%-28s %-10s %-8s %-10s %-12s %-12s %-8s\n", "speaker",
              "precision", "recall", "split_ms", "word_ms", "para_ms",
              "valid");
  struct Profile {
    const char* name;
    double word_pause;
    double noise;
    uint64_t seed;
  };
  const Profile profiles[] = {
      {"fast quiet speaker", 45, 0.010, 11},
      {"average speaker", 70, 0.015, 22},
      {"slow deliberate speaker", 120, 0.020, 33},
      {"noisy room", 70, 0.035, 44},
      {"very noisy room", 70, 0.050, 55},
  };
  for (const Profile& profile : profiles) {
    voice::SpeakerParams params;
    params.word_pause_ms = profile.word_pause;
    params.noise_floor = profile.noise;
    params.seed = profile.seed;
    const Score s = Evaluate(params);
    // The adaptive split is valid when it separates the true means.
    const bool valid =
        s.split_ms > s.true_word_ms && s.split_ms < s.true_para_ms;
    std::printf("%-28s %-10.3f %-8.3f %-10.1f %-12.1f %-12.1f %-8s\n",
                profile.name, s.precision, s.recall, s.split_ms,
                s.true_word_ms, s.true_para_ms, valid ? "yes" : "NO");
  }
  std::printf("paper_claim=short/long pause timing is decided from the "
              "current context by sampling\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
