// PAGE-1: presentation-form construction throughput. Google-benchmark
// measurement of text pagination (markup -> pages), audio pagination
// (PCM -> voice pages with pause snapping), pause detection, and page
// rendering to the simulated screen.

#include <benchmark/benchmark.h>

#include "minos/image/miniature.h"
#include "minos/render/screen.h"
#include "minos/text/formatter.h"
#include "minos/voice/audio_pages.h"
#include "minos/voice/pause.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

void BM_TextPagination(benchmark::State& state) {
  const text::Document doc =
      bench::LongReport(static_cast<int>(state.range(0)));
  text::TextFormatter formatter(text::PageLayout{});
  size_t pages = 0;
  for (auto _ : state) {
    auto result = formatter.Paginate(doc);
    pages = result.ok() ? result->size() : 0;
    benchmark::DoNotOptimize(pages);
  }
  state.counters["pages"] = static_cast<double>(pages);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_TextPagination)->Arg(16)->Arg(64)->Arg(256);

struct VoiceFixture {
  voice::VoiceTrack track;
  std::vector<voice::Pause> pauses;
};

const VoiceFixture& Voice() {
  static VoiceFixture* fixture = [] {
    auto* f = new VoiceFixture();
    voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
    f->track = synth.Synthesize(bench::LongReport(24)).value();
    f->pauses = voice::PauseDetector().Detect(f->track.pcm);
    return f;
  }();
  return *fixture;
}

void BM_PauseDetection(benchmark::State& state) {
  const VoiceFixture& fixture = Voice();
  voice::PauseDetector detector;
  for (auto _ : state) {
    auto pauses = detector.Detect(fixture.track.pcm);
    benchmark::DoNotOptimize(pauses.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.track.pcm.size() *
                                               2));
  state.counters["voice_seconds"] =
      MicrosToSeconds(fixture.track.pcm.Duration());
}
BENCHMARK(BM_PauseDetection);

void BM_AudioPagination(benchmark::State& state) {
  const VoiceFixture& fixture = Voice();
  voice::AudioPager pager;
  for (auto _ : state) {
    auto pages = pager.Paginate(fixture.track.pcm, fixture.pauses);
    benchmark::DoNotOptimize(pages.size());
  }
}
BENCHMARK(BM_AudioPagination);

void BM_PauseContextSampling(benchmark::State& state) {
  const VoiceFixture& fixture = Voice();
  voice::PauseDetector detector;
  for (auto _ : state) {
    auto ctx = detector.SampleContext(fixture.track.pcm, fixture.pauses,
                                      fixture.track.pcm.size() / 2,
                                      fixture.track.pcm.size() / 4);
    benchmark::DoNotOptimize(ctx.split_ms);
  }
}
BENCHMARK(BM_PauseContextSampling);

void BM_PageRender(benchmark::State& state) {
  const text::Document doc = bench::LongReport(16);
  text::TextFormatter formatter(text::PageLayout{});
  const auto pages = formatter.Paginate(doc).value();
  render::Screen screen;
  size_t i = 0;
  for (auto _ : state) {
    screen.DrawTextPage(pages[i % pages.size()], screen.PageArea());
    benchmark::DoNotOptimize(screen.framebuffer().pixels().data());
    ++i;
  }
}
BENCHMARK(BM_PageRender);

void BM_MiniatureBuild(benchmark::State& state) {
  const image::Image big = bench::XrayBitmap(1024, 768);
  for (auto _ : state) {
    auto mini = image::Miniature::Build(big, 8);
    benchmark::DoNotOptimize(mini.ok());
  }
}
BENCHMARK(BM_MiniatureBuild);

}  // namespace
}  // namespace minos
