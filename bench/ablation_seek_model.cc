// ABL-3: disk seek-model ablation. The view-retrieval path reads one
// archive range per bitmap row; whether that is cheap depends on the
// track-to-track (near-seek) tier of the device cost model. This
// ablation reruns the VIEW-1 comparison with the near-seek tier disabled
// (every seek pays the base actuator cost) to show why the tier exists
// and how the conclusion changes with and without it.

#include <cstdio>

#include "minos/server/object_server.h"
#include "scenario_lib.h"

namespace minos {
namespace {

Micros MeasureView(bool near_tier, int size, bool whole_image) {
  SimClock clock;
  storage::DeviceCostModel cost = storage::DeviceCostModel::OpticalDisk();
  if (!near_tier) cost.near_seek_threshold = 0;
  storage::BlockDevice device("optical", 1 << 17, 1024, cost, true,
                              &clock);
  storage::BlockCache cache(4096);
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);

  object::MultimediaObject obj(1);
  obj.AddImage(bench::XrayBitmap(size, size * 3 / 4)).ok();
  object::VisualPageSpec page;
  page.images.push_back({0, image::Rect{}});
  obj.descriptor().pages.push_back(page);
  obj.Archive().ok();
  if (!server.Store(obj).ok()) return -1;
  cache.Clear();

  const Micros t0 = clock.Now();
  if (whole_image) {
    server.FetchImage(1, 0).ok();
  } else {
    server.FetchImageRegion(1, 0, image::Rect{size / 2, size / 4, 128, 96})
        .ok();
  }
  return clock.Now() - t0;
}

int Run() {
  bench::PrintHeader("ABL-3", "seek model ablation (near-seek tier)");
  std::printf("%-12s %-16s %-16s %-16s\n", "image", "full_ms",
              "view_ms(tier)", "view_ms(no tier)");
  for (int size : {512, 1024, 2048}) {
    const Micros full = MeasureView(true, size, true);
    const Micros with_tier = MeasureView(true, size, false);
    const Micros without = MeasureView(false, size, false);
    char label[32];
    std::snprintf(label, sizeof(label), "%dx%d", size, size * 3 / 4);
    std::printf("%-12s %-16lld %-16lld %-16lld\n", label,
                static_cast<long long>(MicrosToMillis(full)),
                static_cast<long long>(MicrosToMillis(with_tier)),
                static_cast<long long>(MicrosToMillis(without)));
  }
  std::printf("design_choice=without a track-to-track tier, per-row reads "
              "pay a full actuator seek each and the view advantage "
              "erodes on large images\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
