// SYM-1: the symmetry experiment. The same document is browsed as a
// visual-mode object and as an audio-mode object with the same command
// sequence; the table reports where each command lands in both media and
// the text-offset discrepancy between the landing points.

#include <cstdio>
#include <cstdlib>

#include "minos/core/audio_browser.h"
#include "minos/core/visual_browser.h"
#include "minos/server/object_server.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/storage/request_scheduler.h"
#include "minos/util/random.h"
#include "minos/voice/recognizer.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("SYM-1", "symmetric text/voice browsing");
  text::Document doc = bench::LongReport(24);

  // Visual twin.
  object::MultimediaObject visual(1);
  visual.descriptor().layout.width = 48;
  visual.descriptor().layout.height = 12;
  visual.SetTextPart(doc).ok();
  {
    text::TextFormatter formatter(visual.descriptor().layout);
    const size_t n = formatter.Paginate(visual.text_part()).value().size();
    for (size_t i = 0; i < n; ++i) {
      object::VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      visual.descriptor().pages.push_back(page);
    }
  }
  if (!visual.Archive().ok()) return 1;

  // Audio twin.
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(doc);
  if (!track.ok()) return 1;
  voice::VoiceDocument vdoc(std::move(track).value());
  vdoc.TagFromAlignment(doc, voice::EditingLevel::kFull);
  object::MultimediaObject audio(2);
  audio.descriptor().driving_mode = object::DrivingMode::kAudio;
  audio.SetVoicePart(std::move(vdoc)).ok();
  if (!audio.Archive().ok()) return 1;

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog vlog, alog;
  auto vb = core::VisualBrowser::Open(&visual, &screen, &messages, &clock,
                                      &vlog);
  auto ab = core::AudioBrowser::Open(&audio, &screen, &messages, &clock,
                                     &alog);
  if (!vb.ok() || !ab.ok()) return 1;

  // Recognition index for spoken pattern commands.
  voice::RecognizerParams rparams;
  rparams.hit_rate = 1.0;
  rparams.false_alarm_rate = 0.0;
  voice::Recognizer recognizer({"paragraph", "presentation"}, rparams);
  (*ab)->SetRecognitionIndex(voice::Recognizer::BuildIndex(
      recognizer.Recognize(audio.voice_part().track()).utterances));

  std::printf("text_pages=%d audio_pages=%d\n", (*vb)->page_count(),
              (*ab)->page_count());
  std::printf("%-22s %-12s %-12s %-10s\n", "command", "text_offset",
              "voice_offset", "delta");

  long long max_delta = 0;
  auto report = [&](const char* command) {
    const size_t text_pos = (*vb)->current_text_offset();
    auto voice_text =
        audio.voice_part().TextOffsetForSample((*ab)->position());
    const size_t voice_pos = voice_text.value_or(0);
    const long long delta = std::llabs(static_cast<long long>(text_pos) -
                                       static_cast<long long>(voice_pos));
    max_delta = std::max(max_delta, delta);
    std::printf("%-22s %-12zu %-12zu %-10lld\n", command, text_pos,
                voice_pos, delta);
  };

  // The same command sequence on both media.
  (*vb)->NextUnit(text::LogicalUnit::kChapter).ok();
  (*ab)->NextUnit(text::LogicalUnit::kChapter).ok();
  report("next chapter");
  (*vb)->NextUnit(text::LogicalUnit::kChapter).ok();
  (*ab)->NextUnit(text::LogicalUnit::kChapter).ok();
  report("next chapter");
  (*vb)->NextUnit(text::LogicalUnit::kParagraph).ok();
  (*ab)->NextUnit(text::LogicalUnit::kParagraph).ok();
  report("next paragraph");
  (*vb)->PreviousUnit(text::LogicalUnit::kChapter).ok();
  (*ab)->PreviousUnit(text::LogicalUnit::kChapter).ok();
  report("prev chapter");
  (*vb)->FindPattern("presentation").ok();
  (*ab)->FindSpokenPattern("presentation").ok();
  report("find 'presentation'");

  // The visual page and audio page counts bound the discrepancy: landing
  // points differ at most by a page's worth of characters.
  const size_t chars_per_text_page =
      doc.size() / static_cast<size_t>((*vb)->page_count());
  std::printf("max_delta=%lld chars_per_text_page=%zu\n", max_delta,
              chars_per_text_page);
  std::printf("paper_claim=the same browsing capabilities apply to text "
              "and voice\n");
  std::printf("holds=%s\n",
              max_delta <= static_cast<long long>(2 * chars_per_text_page)
                  ? "yes"
                  : "NO");

  // Storage leg: archive both twins at an object server and fetch them
  // back repeatedly over the link, so the exported snapshot carries the
  // full pipeline — block-cache hits/misses, link bytes/transfers, and
  // arm-scheduling queueing-delay percentiles.
  storage::BlockDevice device("optical", 20000, 1024,
                              storage::DeviceCostModel::OpticalDisk(),
                              false, &clock);
  storage::BlockCache cache(16384);  // Holds both twins: repeat fetches hit.
  storage::Archiver archiver(&device, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);
  if (!server.Store(visual).ok() || !server.Store(audio).ok()) return 1;
  cache.Clear();  // Start cold: round one misses, later rounds hit.
  for (int round = 0; round < 4; ++round) {
    if (!server.Fetch(1).ok() || !server.Fetch(2).ok()) return 1;
  }
  std::printf("cache_hit_rate=%.3f link_bytes=%llu\n", cache.HitRate(),
              static_cast<unsigned long long>(link.bytes_transferred()));

  // Contention pass: 16 users' reads through the SCAN arm scheduler.
  storage::RequestScheduler scheduler(&device,
                                      storage::SchedulingPolicy::kScan);
  Random rng(42);
  std::vector<storage::IoRequest> reqs;
  for (uint64_t id = 0; id < 128; ++id) {
    storage::IoRequest req;
    req.id = id;
    req.block = rng.Uniform(20000 - 8);
    req.count = 4;
    req.arrival_time = static_cast<Micros>(rng.Uniform(1000000));
    reqs.push_back(req);
  }
  scheduler.Run(reqs);

  bench::NoteSimTime(clock.Now());
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
