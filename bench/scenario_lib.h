#ifndef MINOS_BENCH_SCENARIO_LIB_H_
#define MINOS_BENCH_SCENARIO_LIB_H_

// Shared scenario builders for the figure-reproduction benches and the
// performance experiments. Each builder constructs the multimedia object
// a figure of the paper shows, from scratch, through the public API.

#include <string>

#include "minos/image/image.h"
#include "minos/obs/trace.h"
#include "minos/object/multimedia_object.h"
#include "minos/text/document.h"
#include "minos/util/status.h"

namespace minos::bench {

/// A multi-chapter office document with emphasis runs (Figures 1-2 style
/// content).
text::Document OfficeDocument();

/// A long synthetic report with `paragraphs` paragraphs (sweep workloads).
text::Document LongReport(int paragraphs);

/// A simulated chest x-ray bitmap of the given size.
image::Image XrayBitmap(int width, int height);

/// A labeled subway/city map (graphics image) with stations, hospitals
/// and university sites (Figures 7-8 style content).
image::Image SubwayMap(int width, int height);

/// A transparency overlay: a circle marking plus a short caption near it
/// (Figures 5-6 style content). `index` varies the marked position.
image::Image MarkingOverlay(int width, int height, int index);

/// An overwrite layer for the walking-tour simulation (Figures 9-10):
/// blank spots along the walked route so far.
image::Image RouteOverwrite(int width, int height, int step);

/// Builds the Figures 1-2 object: visual pages mixing text, graphics and
/// bitmaps, archived and ready to browse.
object::MultimediaObject BuildVisualPagesObject(storage::ObjectId id);

/// Builds the Figures 3-4 object: a visual-mode object whose x-ray visual
/// logical message pins at the top while three pages of related text
/// cycle below.
object::MultimediaObject BuildVisualMessageObject(storage::ObjectId id);

/// Builds the Figures 5-6 object: transparency set over an x-ray.
object::MultimediaObject BuildTransparencyObject(storage::ObjectId id,
                                                 int transparencies);

/// Builds the Figures 7-8 parent object (subway map with relevant-object
/// indicators) and the two relevant overlay objects (university sites /
/// hospitals). Targets get ids id+1 and id+2.
struct RelevantObjectsScenario {
  object::MultimediaObject parent;
  object::MultimediaObject university;
  object::MultimediaObject hospitals;
};
RelevantObjectsScenario BuildRelevantObjectsScenario(storage::ObjectId id);

/// Builds the Figures 9-10 object: process simulation of a city walking
/// tour using one base image plus overwrites with voice messages.
object::MultimediaObject BuildProcessSimulationObject(storage::ObjectId id,
                                                      int steps);

/// Parses `--workers N` (or `--workers=N`) from the command line and
/// returns the value (default 1; the MINOS_WORKERS environment variable
/// supplies the default when the flag is absent). Call once at the top
/// of main: the value is remembered, read back via Workers(), and
/// stamped into every metrics snapshot's `workers` header field — the
/// one field the determinism matrix allows to differ across runs.
int ParseWorkers(int argc, char** argv);

/// The worker count this run was invoked with (1 until ParseWorkers).
int Workers();

/// Prints a standard bench header line and arms the end-of-run metrics
/// snapshot: at process exit the default registry is exported as
/// `BENCH_<experiment>.json` (non-alphanumerics in the experiment name
/// become '_') into $MINOS_STATS_DIR, or the working directory when the
/// variable is unset.
void PrintHeader(const std::string& experiment, const std::string& title);

/// Stamps the simulated time that the exit-time snapshot will carry in
/// its `sim_time_us` header field. Benches that advance a SimClock call
/// this once at the end of the run.
void NoteSimTime(Micros sim_time_us);

/// Writes a minos.metrics.v1 snapshot of the default registry to `path`
/// right now, instead of (not in addition to) the exit-time export.
Status EmitMetricsSnapshot(const std::string& bench_name,
                           const std::string& path, Micros sim_time_us = 0);

/// Writes `tracer`'s spans as a minos.trace.v1 document to
/// `TRACE_<experiment>.json` next to the metrics snapshot (same
/// $MINOS_STATS_DIR rule, same name sanitization), then verifies that
/// the sum of the trace's root-span durations reconciles with the
/// bench's externally measured sim time within 1% — the bench-side half
/// of the tools/trace_report.py critical-path check. The file is
/// written even when reconciliation fails (FailedPrecondition), so the
/// mismatch can be inspected.
Status EmitTraceSnapshot(const std::string& experiment,
                         const obs::Tracer& tracer, Micros measured_us);

}  // namespace minos::bench

#endif  // MINOS_BENCH_SCENARIO_LIB_H_
