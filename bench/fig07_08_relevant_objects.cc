// FIG7-8: "Relevant objects which are transparencies are superimposed on
// a subway map when the relevant object indicator is selected. In this
// example the relevant object is a map of the hospitals of the city."
//
// Reproduces: the subway map shows two relevant-object indicators
// (university sites / hospitals); selecting one enters the relevant
// object and superimposes its transparency; returning reestablishes the
// parent's browsing mode.

#include <cstdio>
#include <map>

#include "minos/core/presentation_manager.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("FIG7-8", "relevant objects on a subway map");
  bench::RelevantObjectsScenario scenario =
      bench::BuildRelevantObjectsScenario(10);

  // Library resolver over the three archived objects.
  std::map<storage::ObjectId, object::MultimediaObject> library;
  library.emplace(scenario.parent.id(), scenario.parent);
  library.emplace(scenario.university.id(), scenario.university);
  library.emplace(scenario.hospitals.id(), scenario.hospitals);

  SimClock clock;
  render::Screen screen;
  core::PresentationManager pm(&screen, &clock);
  pm.SetResolver([&library](storage::ObjectId id)
                     -> StatusOr<object::MultimediaObject> {
    auto it = library.find(id);
    if (it == library.end()) return Status::NotFound("no such object");
    return it->second;
  });

  if (!pm.Open(10).ok()) return 1;
  const auto indicators = pm.VisibleRelevantIndicators();
  std::printf("indicators=%zu:", indicators.size());
  for (const std::string& label : indicators) {
    std::printf(" [%s]", label.c_str());
  }
  std::printf("\n");
  const uint64_t map_digest = screen.PageSnapshot().Digest();
  std::printf("parent_map_digest=%016llx\n",
              static_cast<unsigned long long>(map_digest));

  // Select each indicator in turn; the overlay page differs per target.
  for (size_t i = 0; i < indicators.size(); ++i) {
    if (!pm.EnterRelevantObject(i).ok()) return 1;
    core::VisualBrowser* child = pm.visual_browser();
    if (child == nullptr) return 1;
    // Page 2 of the relevant object is the transparency over the map.
    if (!child->GotoPage(2).ok()) return 1;
    std::printf("entered [%s]: overlay_digest=%016llx depth=%zu\n",
                indicators[i].c_str(),
                static_cast<unsigned long long>(
                    screen.PageSnapshot().Digest()),
                pm.depth());
    if (!pm.ReturnFromRelevantObject().ok()) return 1;
    std::printf("returned: depth=%zu mode_reestablished=%s\n", pm.depth(),
                pm.visual_browser() != nullptr ? "yes" : "NO");
  }
  std::printf("relevant_entered_events=%zu relevant_returned_events=%zu\n",
              pm.log().OfKind(core::EventKind::kRelevantEntered).size(),
              pm.log().OfKind(core::EventKind::kRelevantReturned).size());
  std::printf("event_log_digest=%016llx\n",
              static_cast<unsigned long long>(pm.log().Digest()));
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
