// SRCH-1: pattern-browsing access methods. Google-benchmark comparison of
// the direct Boyer-Moore-Horspool scan against the prebuilt inverted word
// index across document sizes — the two access methods MINOS pattern
// browsing uses for text (and, through the recognition index, for voice).

#include <benchmark/benchmark.h>

#include "minos/text/search.h"
#include "scenario_lib.h"

namespace minos {
namespace {

const text::Document& DocOfSize(int paragraphs) {
  static std::map<int, text::Document>* docs =
      new std::map<int, text::Document>();
  auto it = docs->find(paragraphs);
  if (it == docs->end()) {
    it = docs->emplace(paragraphs, bench::LongReport(paragraphs)).first;
  }
  return it->second;
}

void BM_BmhScan(benchmark::State& state) {
  const text::Document& doc = DocOfSize(static_cast<int>(state.range(0)));
  size_t hits = 0;
  for (auto _ : state) {
    const auto found = text::FindAll(doc.contents(), "presentation");
    hits += found.size();
    benchmark::DoNotOptimize(found.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
  state.counters["doc_chars"] = static_cast<double>(doc.size());
}
BENCHMARK(BM_BmhScan)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_BmhFindNext(benchmark::State& state) {
  const text::Document& doc = DocOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto hit = text::FindNext(doc.contents(), "presentation",
                              doc.size() / 2);
    benchmark::DoNotOptimize(hit.ok());
  }
}
BENCHMARK(BM_BmhFindNext)->Arg(64)->Arg(1024);

void BM_IndexBuild(benchmark::State& state) {
  const text::Document& doc = DocOfSize(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    text::WordIndex index;
    index.Build(doc);
    benchmark::DoNotOptimize(index.vocabulary_size());
  }
}
BENCHMARK(BM_IndexBuild)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_IndexLookup(benchmark::State& state) {
  const text::Document& doc = DocOfSize(static_cast<int>(state.range(0)));
  text::WordIndex index;
  index.Build(doc);
  size_t from = 0;
  for (auto _ : state) {
    auto hit = index.NextOccurrence("presentation", from);
    from = hit.ok() ? *hit + 1 : 0;
    benchmark::DoNotOptimize(from);
  }
}
BENCHMARK(BM_IndexLookup)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace minos
