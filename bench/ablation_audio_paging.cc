// ABL-1: audio-page boundary snapping ablation. The paper wants audio
// pages of "approximately constant time length"; our design snaps page
// boundaries to nearby detected pauses. This ablation quantifies the
// choice: with snapping off, how many page boundaries cut through a
// spoken word (so resume-from-page-start starts mid-word)? With snapping
// on, how far do page durations drift from the nominal length?

#include <cstdio>

#include "minos/voice/audio_pages.h"
#include "minos/voice/pause.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("ABL-1", "audio page snapping ablation");
  text::Document doc = bench::LongReport(20);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  voice::VoiceTrack track = synth.Synthesize(doc).value();
  voice::PauseDetector detector;
  const auto pauses = detector.Detect(track.pcm);

  std::printf("%-14s %-8s %-18s %-20s\n", "snap_tol", "pages",
              "mid_word_bounds", "max_drift_vs_nominal");
  for (double tolerance : {0.0, 0.05, 0.10, 0.15, 0.25}) {
    voice::AudioPagerParams params;
    params.page_duration = SecondsToMicros(12);
    params.snap_tolerance = tolerance;
    voice::AudioPager pager(params);
    const auto pages = pager.Paginate(track.pcm, pauses);

    int mid_word = 0;
    for (size_t i = 0; i + 1 < pages.size(); ++i) {
      const size_t boundary = pages[i].samples.end;
      for (const voice::WordAlignment& w : track.words) {
        if (boundary > w.samples.begin && boundary < w.samples.end) {
          ++mid_word;
          break;
        }
      }
    }
    double max_drift = 0.0;
    const double nominal = MicrosToSeconds(params.page_duration);
    for (size_t i = 0; i + 1 < pages.size(); ++i) {
      const double dur = MicrosToSeconds(
          track.pcm.SamplesToMicros(pages[i].samples.length()));
      max_drift = std::max(max_drift,
                           std::abs(dur - nominal) / nominal);
    }
    char tol[16];
    std::snprintf(tol, sizeof(tol), "%.2f", tolerance);
    std::printf("%-14s %-8zu %-18d %-20.2f\n", tol, pages.size(),
                mid_word, max_drift);
  }
  std::printf("design_choice=snapping trades a bounded duration drift for "
              "boundaries that respect word edges\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
