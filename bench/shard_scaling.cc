// SHARD-1: does the sharded archive actually scale, and does it bend
// instead of breaking? Phase one runs the same content-query workload
// against 1..4 object-server shards behind the ShardRouter and reports
// scatter/gather throughput — the gate requires strictly more queries
// per second at every step up in shard count. Phase two kills one shard
// of a four-shard fabric mid-run (drop-everything fault injector, so its
// circuit breaker trips) and requires the surviving shards to keep
// serving complete query results with bounded latency, the prefetch
// pipeline to keep staging pages over the failover route, and the dead
// shard to rejoin after its breaker cooldown.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "minos/core/visual_browser.h"
#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::ObjectId;

/// One shard's full stack: its own archive device, cache, version store
/// and link, so per-shard faults and breakers stay independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::OpticalDisk(),
               true, clock),
        // Generous per-shard cache: the bench measures routing and link
        // behaviour, not cache-thrash seek storms.
        cache(1024),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

/// Round-robin placement: perfect balance for the dense id range the
/// bench stores, so per-shard gather shares shrink exactly as 1/n.
server::ShardPlacement RoundRobin() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    return static_cast<size_t>((id - 1) % shard_count);
  };
}

/// A report whose pages carry real transfer weight (the prefetch bench's
/// object shape): formatted text plus a bitmap on every other page.
object::MultimediaObject PagedObject(ObjectId id, int paragraphs) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(bench::LongReport(paragraphs)).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  for (size_t i = 0; i < pages; i += 2) {
    const uint32_t index = obj.AddImage(bench::XrayBitmap(96, 72)).value();
    object::PlacedImage placed;
    placed.image_index = index;
    placed.placement = image::Rect{180, 20, 96, 72};
    obj.descriptor().pages[i].images.push_back(placed);
  }
  obj.Archive().ok();
  return obj;
}

/// A light text-only object for the throughput sweep.
object::MultimediaObject TextObject(ObjectId id) {
  object::MultimediaObject obj(id);
  obj.SetTextPart(bench::LongReport(2)).ok();
  object::VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  obj.Archive().ok();
  return obj;
}

constexpr int kObjects = 24;
constexpr int kQueries = 12;

/// FNV-1a fold of one 64-bit value into a running digest.
uint64_t Mix(uint64_t digest, uint64_t value) {
  return (digest ^ value) * 0x100000001b3ULL;
}

uint64_t BitsOf(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// One determinism-matrix run: a fresh four-shard fabric driven by a
/// pool of `workers` threads, running a fixed scatter + ranked workload.
/// Every field must be bit-identical across worker counts.
struct MatrixRun {
  Micros elapsed = 0;     ///< Virtual time the workload consumed.
  size_t cards = 0;       ///< Total cards gathered.
  uint64_t digest = 0;    ///< FNV fold of every id/byte_size/score.
  std::map<std::string, int64_t> counter_deltas;  ///< Registry deltas.
};

/// Counter values keyed by instance-normalized name: component metrics
/// carry a per-instance suffix ("link14.transfers"), and each matrix run
/// builds fresh instances, so digits are stripped ("link.transfers") and
/// same-family instances summed. The CI matrix diffs raw names — whole
/// runs allocate identical instance sequences — this normalization is
/// only for comparing topologies built back-to-back in one process.
std::map<std::string, int64_t> CounterValues() {
  std::map<std::string, int64_t> values;
  for (const auto& [name, value] :
       obs::MetricsRegistry::Default().Snapshot().counters) {
    std::string normalized;
    for (const char c : name) {
      if (c < '0' || c > '9') normalized += c;
    }
    values[normalized] += value;
  }
  return values;
}

MatrixRun RunMatrixWorkload(int workers) {
  MatrixRun out;
  const std::map<std::string, int64_t> before = CounterValues();
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  runtime::TaskPool pool(&clock, workers);
  router.SetTaskPool(&pool);
  for (ObjectId id = 1; id <= kObjects; ++id) {
    if (!router.Store(TextObject(id)).ok()) std::abort();
  }
  for (int q = 0; q < 4; ++q) {
    auto got = router.GatherCards({"report"});
    if (!got.ok()) std::abort();
    out.cards += got->size();
    for (const server::MiniatureCard& card : *got) {
      out.digest = Mix(out.digest, card.id);
      out.digest = Mix(out.digest, card.byte_size);
      out.digest = Mix(out.digest, BitsOf(card.score));
    }
    const std::vector<query::ScoredHit> hits =
        router.QueryRanked({"report"}, 8);
    for (const query::ScoredHit& hit : hits) {
      out.digest = Mix(out.digest, hit.id);
      out.digest = Mix(out.digest, BitsOf(hit.score));
    }
  }
  out.elapsed = clock.Now();
  for (const auto& [name, value] : CounterValues()) {
    const auto it = before.find(name);
    const int64_t delta = value - (it != before.end() ? it->second : 0);
    if (delta != 0) out.counter_deltas[name] = delta;
  }
  return out;
}

/// Wall-clock seconds one scatter workload takes with `workers` threads:
/// a fresh fabric of paged (image-bearing) objects, so each per-shard
/// card task carries real decode/render CPU. Virtual elapsed time is
/// returned too — it must not vary with the worker count.
double TimeScatterWall(int workers, Micros* virtual_elapsed) {
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  runtime::TaskPool pool(&clock, workers);
  router.SetTaskPool(&pool);
  constexpr int kHeavyObjects = 16;
  for (ObjectId id = 1; id <= kHeavyObjects; ++id) {
    if (!router.Store(PagedObject(id, 8)).ok()) std::abort();
  }
  router.GatherCards({"report"}).ok();  // Warm the block caches.
  const Micros virtual_start = clock.Now();
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr int kRounds = 12;
  for (int q = 0; q < kRounds; ++q) {
    auto got = router.GatherCards({"report"});
    if (!got.ok() || got->size() != kHeavyObjects) std::abort();
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  *virtual_elapsed = clock.Now() - virtual_start;
  return wall.count();
}

int Run() {
  bench::PrintHeader("shard_scaling",
                     "scatter/gather throughput vs shard count");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  Micros total_sim_time = 0;

  // --- Phase 1: throughput sweep over shard counts ----------------------
  std::printf("%-8s %-12s %-12s %-10s\n", "shards", "query_ms", "qps",
              "cards");
  std::vector<double> qps_by_n;
  for (size_t n = 1; n <= 4; ++n) {
    SimClock clock;
    std::vector<std::unique_ptr<ShardStack>> stacks;
    std::vector<server::ObjectServer*> servers;
    for (size_t i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<ShardStack>(&clock));
      servers.push_back(&stacks.back()->server);
    }
    server::ShardRouter router(servers, &clock, RoundRobin(),
                               server::ShardRouterOptions{});
    runtime::TaskPool pool(&clock, bench::Workers());
    router.SetTaskPool(&pool);
    for (ObjectId id = 1; id <= kObjects; ++id) {
      if (!router.Store(TextObject(id)).ok()) return 1;
    }

    const Micros sweep_start = clock.Now();
    size_t cards = 0;
    obs::Histogram* query_us = reg.histogram(
        "shard_scaling.shards_" + std::to_string(n) + ".query_us");
    for (int q = 0; q < kQueries; ++q) {
      const Micros start = clock.Now();
      auto got = router.GatherCards({"report"});
      if (!got.ok() || got->size() != kObjects) {
        std::printf("FAIL: %zu-shard query returned %zu cards\n", n,
                    got.ok() ? got->size() : 0);
        return 1;
      }
      cards = got->size();
      query_us->Record(static_cast<double>(clock.Now() - start));
    }
    const Micros elapsed = clock.Now() - sweep_start;
    const double qps =
        kQueries / (static_cast<double>(elapsed) / 1000000.0);
    reg.gauge("shard_scaling.shards_" + std::to_string(n) + ".qps")
        ->Set(qps);
    qps_by_n.push_back(qps);
    std::printf("%-8zu %-12.1f %-12.2f %-10zu\n", n,
                static_cast<double>(elapsed) / kQueries / 1000.0, qps,
                cards);
    total_sim_time += clock.Now();
  }
  for (size_t n = 1; n < qps_by_n.size(); ++n) {
    if (!(qps_by_n[n] > qps_by_n[n - 1])) {
      std::printf("FAIL: throughput is not monotonic: %zu shards %.2f qps "
                  "<= %zu shards %.2f qps\n",
                  n + 1, qps_by_n[n], n, qps_by_n[n - 1]);
      return 1;
    }
  }
  std::printf("gate: throughput scales monotonically 1->4 shards\n");

  // --- Phase 2: single-shard loss on a four-shard fabric ----------------
  // Paged objects give the prefetch pipeline pages to stage while one
  // shard of the fabric is dark.
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  runtime::TaskPool pool(&clock, bench::Workers());
  router.SetTaskPool(&pool);
  constexpr int kPagedObjects = 8;
  for (ObjectId id = 1; id <= kPagedObjects; ++id) {
    if (!router.Store(PagedObject(id, 10)).ok()) return 1;
  }

  // Every measured loss-phase query runs traced: a root span brackets
  // exactly the measured clock reads, so the trace's root durations sum
  // to the measured total and the TRACE snapshot gate reconciles.
  obs::Tracer tracer(&clock);
  router.SetTracer(&tracer);
  Micros traced_us = 0;

  auto run_queries = [&](int count) -> double {
    Micros sum = 0;
    for (int q = 0; q < count; ++q) {
      obs::TraceSpan root = tracer.StartSpan("bench.scatter_query");
      const Micros start = clock.Now();
      auto got = router.GatherCards({"report"}, 96, root.context());
      if (!got.ok() || got->size() != kPagedObjects) {
        return -1.0;
      }
      sum += clock.Now() - start;
      root.End();
    }
    traced_us += sum;
    return static_cast<double>(sum) / count;
  };

  const double healthy_ms = run_queries(6) / 1000.0;
  if (healthy_ms < 0) {
    std::printf("FAIL: healthy 4-shard query lost cards\n");
    return 1;
  }

  // Kill shard 0: every transfer drops, so its breaker trips open after
  // three consecutive failures and stays open for a long cooldown.
  server::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_us = SecondsToMicros(30);
  stacks[0]->link.ConfigureBreaker(breaker);
  server::FaultProfile dead;
  dead.drop_rate = 1.0;
  server::FaultInjector injector(dead, 0x5AD, &clock);
  stacks[0]->link.SetFaultInjector(&injector);

  const int64_t failovers_before =
      reg.counter("router.failovers_total")->value();
  const double tripping_ms = run_queries(1) / 1000.0;  // Trips the breaker.
  const double loss_ms = run_queries(5) / 1000.0;      // Steady-state loss.
  if (tripping_ms < 0 || loss_ms < 0) {
    std::printf("FAIL: query lost cards during single-shard loss\n");
    return 1;
  }
  const int64_t failovers =
      reg.counter("router.failovers_total")->value() - failovers_before;
  std::printf("loss: healthy=%.1fms trip=%.1fms steady=%.1fms "
              "failovers=%lld live=%zu\n",
              healthy_ms, tripping_ms, loss_ms,
              static_cast<long long>(failovers), router.live_count());
  if (router.live_count() != 3 || failovers <= 0) {
    std::printf("FAIL: shard loss not visible in the routing table "
                "(live=%zu failovers=%lld)\n",
                router.live_count(), static_cast<long long>(failovers));
    return 1;
  }
  if (!(loss_ms < 3.0 * healthy_ms)) {
    std::printf("FAIL: steady-state loss latency %.1fms is not bounded "
                "(healthy %.1fms)\n",
                loss_ms, healthy_ms);
    return 1;
  }
  std::printf("gate: one dead shard keeps serving, steady latency "
              "%.1fms < 3x healthy %.1fms\n",
              loss_ms, healthy_ms);

  // Browse an object whose primary is the dead shard: the prefetch
  // pipeline must keep staging pages over the failover route.
  auto prefetch_lookups = [&reg]() -> int64_t {
    return reg.counter("prefetch.hits")->value() +
           reg.counter("prefetch.partial_hits")->value() +
           reg.counter("prefetch.misses")->value();
  };
  const int64_t prefetch_before = prefetch_lookups();
  render::Screen screen;
  server::Workstation workstation(&router, &screen, &clock);
  workstation.EnablePrefetch(server::PrefetchOptions{});
  workstation.SetTaskPool(&pool);
  if (!workstation.Present(1).ok()) {  // Primary of id 1 is dead shard 0.
    std::printf("FAIL: presenting a dead-primary object did not fail "
                "over to its replica\n");
    return 1;
  }
  core::VisualBrowser* vb = workstation.presentation().visual_browser();
  if (vb == nullptr) return 1;
  for (int i = 0; i < 4; ++i) {
    clock.Advance(MillisToMicros(120));  // The user reads the page.
    if (!vb->NextPage().ok()) break;
  }
  const int64_t prefetch_ops = prefetch_lookups() - prefetch_before;
  if (prefetch_ops <= 0) {
    std::printf("FAIL: prefetch pipeline idle during shard loss\n");
    return 1;
  }
  std::printf("gate: prefetch stayed live across failover "
              "(%lld page lookups)\n",
              static_cast<long long>(prefetch_ops));

  // Heal: faults stop, the cooldown elapses, and the next routed read
  // probes the half-open breaker back closed.
  stacks[0]->link.SetFaultInjector(nullptr);
  clock.Advance(breaker.cooldown_us + MillisToMicros(1));
  if (run_queries(1) < 0) {
    std::printf("FAIL: query lost cards during heal probe\n");
    return 1;
  }
  if (!router.IsLive(0) || router.live_count() != 4) {
    std::printf("FAIL: cooled-down shard did not rejoin (live=%zu)\n",
                router.live_count());
    return 1;
  }
  std::printf("gate: dead shard healed after cooldown, live=%zu\n",
              router.live_count());

  router.SetTracer(nullptr);
  Status trace_gate =
      bench::EmitTraceSnapshot("shard_scaling", tracer, traced_us);
  if (!trace_gate.ok()) {
    std::printf("FAIL: trace snapshot: %s\n",
                trace_gate.ToString().c_str());
    return 1;
  }

  total_sim_time += clock.Now();

  // --- Phase 3: worker-count determinism matrix -------------------------
  // The same seed and workload on pools of 1, 2 and 4 workers must
  // produce bit-identical results: virtual elapsed time, gathered card
  // digests, ranked ids/scores, and every registry counter delta. This
  // is the in-process half of the CI determinism-matrix gate (the other
  // half diffs whole BENCH_*.json files across --workers runs).
  {
    const MatrixRun base = RunMatrixWorkload(1);
    total_sim_time += base.elapsed;
    for (int workers : {2, 4}) {
      const MatrixRun run = RunMatrixWorkload(workers);
      total_sim_time += run.elapsed;
      if (run.elapsed != base.elapsed || run.cards != base.cards ||
          run.digest != base.digest ||
          run.counter_deltas != base.counter_deltas) {
        std::printf("FAIL: %d-worker run diverges from 1-worker run "
                    "(elapsed %lld vs %lld, cards %zu vs %zu, digest "
                    "%016llx vs %016llx, %zu vs %zu counter deltas)\n",
                    workers, static_cast<long long>(run.elapsed),
                    static_cast<long long>(base.elapsed), run.cards,
                    base.cards,
                    static_cast<unsigned long long>(run.digest),
                    static_cast<unsigned long long>(base.digest),
                    run.counter_deltas.size(),
                    base.counter_deltas.size());
        for (const auto& [name, delta] : base.counter_deltas) {
          const auto it = run.counter_deltas.find(name);
          const int64_t other =
              it != run.counter_deltas.end() ? it->second : 0;
          if (other != delta) {
            std::printf("  %s: 1-worker %lld vs %d-worker %lld\n",
                        name.c_str(), static_cast<long long>(delta),
                        workers, static_cast<long long>(other));
          }
        }
        for (const auto& [name, delta] : run.counter_deltas) {
          if (base.counter_deltas.find(name) ==
              base.counter_deltas.end()) {
            std::printf("  %s: 1-worker 0 vs %d-worker %lld\n",
                        name.c_str(), workers,
                        static_cast<long long>(delta));
          }
        }
        return 1;
      }
    }
    std::printf("gate: workers {1,2,4} produce bit-identical results "
                "(digest %016llx, %zu counter deltas)\n",
                static_cast<unsigned long long>(base.digest),
                base.counter_deltas.size());
  }

  // --- Phase 4: wall-clock speedup curve --------------------------------
  // Real threads must buy real throughput. Wall time is inherently
  // schedule-dependent, so it stays on stdout (never in the registry),
  // and the >=1.8x gate only arms on machines with at least four
  // hardware cores — elsewhere the curve is reported but advisory.
  {
    double wall[3] = {0, 0, 0};
    Micros virtual_us[3] = {0, 0, 0};
    const int counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      double best = -1.0;
      for (int rep = 0; rep < 3; ++rep) {
        Micros virt = 0;
        const double seconds = TimeScatterWall(counts[i], &virt);
        if (best < 0 || seconds < best) best = seconds;
        virtual_us[i] = virt;
      }
      wall[i] = best;
      total_sim_time += virtual_us[i];
    }
    const double speedup2 = wall[0] / wall[1];
    const double speedup4 = wall[0] / wall[2];
    std::printf("speedup: workers 1=%.1fms 2=%.1fms (%.2fx) 4=%.1fms "
                "(%.2fx)\n",
                wall[0] * 1000.0, wall[1] * 1000.0, speedup2,
                wall[2] * 1000.0, speedup4);
    if (virtual_us[1] != virtual_us[0] || virtual_us[2] != virtual_us[0]) {
      std::printf("FAIL: virtual elapsed time varies with worker count "
                  "(%lld/%lld/%lld us)\n",
                  static_cast<long long>(virtual_us[0]),
                  static_cast<long long>(virtual_us[1]),
                  static_cast<long long>(virtual_us[2]));
      return 1;
    }
    if (std::thread::hardware_concurrency() >= 4) {
      if (!(speedup4 >= 1.8) || !(speedup2 >= 1.0)) {
        std::printf("FAIL: speedup curve not monotonic >=1.8x at 4 "
                    "workers (2w %.2fx, 4w %.2fx)\n",
                    speedup2, speedup4);
        return 1;
      }
      std::printf("gate: 4-worker scatter is %.2fx the 1-worker wall "
                  "time\n", speedup4);
    } else {
      std::printf("gate: speedup advisory only (%u hardware threads "
                  "< 4)\n", std::thread::hardware_concurrency());
    }
  }

  bench::NoteSimTime(total_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
