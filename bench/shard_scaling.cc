// SHARD-1: does the sharded archive actually scale, and does it bend
// instead of breaking? Phase one runs the same content-query workload
// against 1..4 object-server shards behind the ShardRouter and reports
// scatter/gather throughput — the gate requires strictly more queries
// per second at every step up in shard count. Phase two kills one shard
// of a four-shard fabric mid-run (drop-everything fault injector, so its
// circuit breaker trips) and requires the surviving shards to keep
// serving complete query results with bounded latency, the prefetch
// pipeline to keep staging pages over the failover route, and the dead
// shard to rejoin after its breaker cooldown.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "minos/core/visual_browser.h"
#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/formatter.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::ObjectId;

/// One shard's full stack: its own archive device, cache, version store
/// and link, so per-shard faults and breakers stay independent.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::OpticalDisk(),
               true, clock),
        // Generous per-shard cache: the bench measures routing and link
        // behaviour, not cache-thrash seek storms.
        cache(1024),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

/// Round-robin placement: perfect balance for the dense id range the
/// bench stores, so per-shard gather shares shrink exactly as 1/n.
server::ShardPlacement RoundRobin() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    return static_cast<size_t>((id - 1) % shard_count);
  };
}

/// A report whose pages carry real transfer weight (the prefetch bench's
/// object shape): formatted text plus a bitmap on every other page.
object::MultimediaObject PagedObject(ObjectId id, int paragraphs) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(bench::LongReport(paragraphs)).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t pages = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < pages; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  for (size_t i = 0; i < pages; i += 2) {
    const uint32_t index = obj.AddImage(bench::XrayBitmap(96, 72)).value();
    object::PlacedImage placed;
    placed.image_index = index;
    placed.placement = image::Rect{180, 20, 96, 72};
    obj.descriptor().pages[i].images.push_back(placed);
  }
  obj.Archive().ok();
  return obj;
}

/// A light text-only object for the throughput sweep.
object::MultimediaObject TextObject(ObjectId id) {
  object::MultimediaObject obj(id);
  obj.SetTextPart(bench::LongReport(2)).ok();
  object::VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  obj.Archive().ok();
  return obj;
}

constexpr int kObjects = 24;
constexpr int kQueries = 12;

int Run() {
  bench::PrintHeader("shard_scaling",
                     "scatter/gather throughput vs shard count");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  Micros total_sim_time = 0;

  // --- Phase 1: throughput sweep over shard counts ----------------------
  std::printf("%-8s %-12s %-12s %-10s\n", "shards", "query_ms", "qps",
              "cards");
  std::vector<double> qps_by_n;
  for (size_t n = 1; n <= 4; ++n) {
    SimClock clock;
    std::vector<std::unique_ptr<ShardStack>> stacks;
    std::vector<server::ObjectServer*> servers;
    for (size_t i = 0; i < n; ++i) {
      stacks.push_back(std::make_unique<ShardStack>(&clock));
      servers.push_back(&stacks.back()->server);
    }
    server::ShardRouter router(servers, &clock, RoundRobin(),
                               server::ShardRouterOptions{});
    for (ObjectId id = 1; id <= kObjects; ++id) {
      if (!router.Store(TextObject(id)).ok()) return 1;
    }

    const Micros sweep_start = clock.Now();
    size_t cards = 0;
    obs::Histogram* query_us = reg.histogram(
        "shard_scaling.shards_" + std::to_string(n) + ".query_us");
    for (int q = 0; q < kQueries; ++q) {
      const Micros start = clock.Now();
      auto got = router.GatherCards({"report"});
      if (!got.ok() || got->size() != kObjects) {
        std::printf("FAIL: %zu-shard query returned %zu cards\n", n,
                    got.ok() ? got->size() : 0);
        return 1;
      }
      cards = got->size();
      query_us->Record(static_cast<double>(clock.Now() - start));
    }
    const Micros elapsed = clock.Now() - sweep_start;
    const double qps =
        kQueries / (static_cast<double>(elapsed) / 1000000.0);
    reg.gauge("shard_scaling.shards_" + std::to_string(n) + ".qps")
        ->Set(qps);
    qps_by_n.push_back(qps);
    std::printf("%-8zu %-12.1f %-12.2f %-10zu\n", n,
                static_cast<double>(elapsed) / kQueries / 1000.0, qps,
                cards);
    total_sim_time += clock.Now();
  }
  for (size_t n = 1; n < qps_by_n.size(); ++n) {
    if (!(qps_by_n[n] > qps_by_n[n - 1])) {
      std::printf("FAIL: throughput is not monotonic: %zu shards %.2f qps "
                  "<= %zu shards %.2f qps\n",
                  n + 1, qps_by_n[n], n, qps_by_n[n - 1]);
      return 1;
    }
  }
  std::printf("gate: throughput scales monotonically 1->4 shards\n");

  // --- Phase 2: single-shard loss on a four-shard fabric ----------------
  // Paged objects give the prefetch pipeline pages to stage while one
  // shard of the fabric is dark.
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < 4; ++i) {
    stacks.push_back(std::make_unique<ShardStack>(&clock));
    servers.push_back(&stacks.back()->server);
  }
  server::ShardRouter router(servers, &clock, RoundRobin(),
                             server::ShardRouterOptions{});
  constexpr int kPagedObjects = 8;
  for (ObjectId id = 1; id <= kPagedObjects; ++id) {
    if (!router.Store(PagedObject(id, 10)).ok()) return 1;
  }

  // Every measured loss-phase query runs traced: a root span brackets
  // exactly the measured clock reads, so the trace's root durations sum
  // to the measured total and the TRACE snapshot gate reconciles.
  obs::Tracer tracer(&clock);
  router.SetTracer(&tracer);
  Micros traced_us = 0;

  auto run_queries = [&](int count) -> double {
    Micros sum = 0;
    for (int q = 0; q < count; ++q) {
      obs::TraceSpan root = tracer.StartSpan("bench.scatter_query");
      const Micros start = clock.Now();
      auto got = router.GatherCards({"report"}, 96, root.context());
      if (!got.ok() || got->size() != kPagedObjects) {
        return -1.0;
      }
      sum += clock.Now() - start;
      root.End();
    }
    traced_us += sum;
    return static_cast<double>(sum) / count;
  };

  const double healthy_ms = run_queries(6) / 1000.0;
  if (healthy_ms < 0) {
    std::printf("FAIL: healthy 4-shard query lost cards\n");
    return 1;
  }

  // Kill shard 0: every transfer drops, so its breaker trips open after
  // three consecutive failures and stays open for a long cooldown.
  server::CircuitBreaker::Options breaker;
  breaker.failure_threshold = 3;
  breaker.cooldown_us = SecondsToMicros(30);
  stacks[0]->link.ConfigureBreaker(breaker);
  server::FaultProfile dead;
  dead.drop_rate = 1.0;
  server::FaultInjector injector(dead, 0x5AD, &clock);
  stacks[0]->link.SetFaultInjector(&injector);

  const int64_t failovers_before =
      reg.counter("router.failovers_total")->value();
  const double tripping_ms = run_queries(1) / 1000.0;  // Trips the breaker.
  const double loss_ms = run_queries(5) / 1000.0;      // Steady-state loss.
  if (tripping_ms < 0 || loss_ms < 0) {
    std::printf("FAIL: query lost cards during single-shard loss\n");
    return 1;
  }
  const int64_t failovers =
      reg.counter("router.failovers_total")->value() - failovers_before;
  std::printf("loss: healthy=%.1fms trip=%.1fms steady=%.1fms "
              "failovers=%lld live=%zu\n",
              healthy_ms, tripping_ms, loss_ms,
              static_cast<long long>(failovers), router.live_count());
  if (router.live_count() != 3 || failovers <= 0) {
    std::printf("FAIL: shard loss not visible in the routing table "
                "(live=%zu failovers=%lld)\n",
                router.live_count(), static_cast<long long>(failovers));
    return 1;
  }
  if (!(loss_ms < 3.0 * healthy_ms)) {
    std::printf("FAIL: steady-state loss latency %.1fms is not bounded "
                "(healthy %.1fms)\n",
                loss_ms, healthy_ms);
    return 1;
  }
  std::printf("gate: one dead shard keeps serving, steady latency "
              "%.1fms < 3x healthy %.1fms\n",
              loss_ms, healthy_ms);

  // Browse an object whose primary is the dead shard: the prefetch
  // pipeline must keep staging pages over the failover route.
  auto prefetch_lookups = [&reg]() -> int64_t {
    return reg.counter("prefetch.hits")->value() +
           reg.counter("prefetch.partial_hits")->value() +
           reg.counter("prefetch.misses")->value();
  };
  const int64_t prefetch_before = prefetch_lookups();
  render::Screen screen;
  server::Workstation workstation(&router, &screen, &clock);
  workstation.EnablePrefetch(server::PrefetchOptions{});
  if (!workstation.Present(1).ok()) {  // Primary of id 1 is dead shard 0.
    std::printf("FAIL: presenting a dead-primary object did not fail "
                "over to its replica\n");
    return 1;
  }
  core::VisualBrowser* vb = workstation.presentation().visual_browser();
  if (vb == nullptr) return 1;
  for (int i = 0; i < 4; ++i) {
    clock.Advance(MillisToMicros(120));  // The user reads the page.
    if (!vb->NextPage().ok()) break;
  }
  const int64_t prefetch_ops = prefetch_lookups() - prefetch_before;
  if (prefetch_ops <= 0) {
    std::printf("FAIL: prefetch pipeline idle during shard loss\n");
    return 1;
  }
  std::printf("gate: prefetch stayed live across failover "
              "(%lld page lookups)\n",
              static_cast<long long>(prefetch_ops));

  // Heal: faults stop, the cooldown elapses, and the next routed read
  // probes the half-open breaker back closed.
  stacks[0]->link.SetFaultInjector(nullptr);
  clock.Advance(breaker.cooldown_us + MillisToMicros(1));
  if (run_queries(1) < 0) {
    std::printf("FAIL: query lost cards during heal probe\n");
    return 1;
  }
  if (!router.IsLive(0) || router.live_count() != 4) {
    std::printf("FAIL: cooled-down shard did not rejoin (live=%zu)\n",
                router.live_count());
    return 1;
  }
  std::printf("gate: dead shard healed after cooldown, live=%zu\n",
              router.live_count());

  router.SetTracer(nullptr);
  Status trace_gate =
      bench::EmitTraceSnapshot("shard_scaling", tracer, traced_us);
  if (!trace_gate.ok()) {
    std::printf("FAIL: trace snapshot: %s\n",
                trace_gate.ToString().c_str());
    return 1;
  }

  total_sim_time += clock.Now();
  bench::NoteSimTime(total_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main() { return minos::Run(); }
