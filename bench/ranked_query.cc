// RANK-1: is ranked retrieval worth its scoring cost, and is the
// scatter merge exact? The corpus spreads the genuinely relevant
// documents (heavy term frequency) across the id space while many
// low-relevance documents mention the query term once near the front of
// the id range — the shape where the unranked id-order strip shows the
// user mostly noise. Three gates:
//
//   1. Quality: precision@10 of the ranked strip strictly beats the
//      id-order strip against the planted ground truth.
//   2. Cost: the ranked 4-shard top-10 gather (scoring + scatter card
//      fetch) stays within 1.5x the unranked id-order path fetching the
//      same ten cards.
//   3. Symmetry: a 1-shard and a 4-shard archive of the same corpus
//      return identical ids and identical scores.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "minos/obs/metrics.h"
#include "minos/query/scored_index.h"
#include "minos/runtime/task_pool.h"
#include "minos/server/shard_router.h"
#include "minos/text/markup.h"
#include "minos/util/random.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::ObjectId;

struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512,
               storage::DeviceCostModel::OpticalDisk(), true, clock),
        cache(1024),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

/// Round-robin placement: perfect balance for the dense id range the
/// bench stores.
server::ShardPlacement RoundRobin() {
  return [](ObjectId id, size_t shard_count) -> size_t {
    return static_cast<size_t>((id - 1) % shard_count);
  };
}

constexpr int kObjects = 40;
constexpr size_t kTopK = 10;

bool Relevant(ObjectId id) { return id % 4 == 0; }  // 4, 8, ..., 40.

object::MultimediaObject CorpusObject(ObjectId id) {
  object::MultimediaObject obj(id);
  std::string body;
  if (Relevant(id)) {
    // The documents actually about fractures: heavy term mass.
    body = "fracture fracture fracture fracture fracture treatment "
           "protocol for the orthopedic ward";
  } else {
    // Passing mentions drowned in filler — early ids crowd the
    // id-order strip without deserving it.
    body = "administrative memo which notes a fracture case among many "
           "unrelated scheduling budget staffing and inventory matters "
           "for the quarter";
  }
  text::MarkupParser parser;
  auto doc = parser.Parse(".PP\n" + body + "\n");
  if (!doc.ok()) std::abort();
  if (!obj.SetTextPart(std::move(doc).value()).ok()) std::abort();
  object::VisualPageSpec page;
  page.text_page = 1;
  obj.descriptor().pages.push_back(page);
  if (!obj.Archive().ok()) std::abort();
  return obj;
}

struct Topology {
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::unique_ptr<server::ShardRouter> router;
  std::unique_ptr<runtime::TaskPool> pool;
};

std::unique_ptr<Topology> BuildTopology(size_t shards, int workers) {
  auto topo = std::make_unique<Topology>();
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < shards; ++i) {
    topo->stacks.push_back(std::make_unique<ShardStack>(&topo->clock));
    servers.push_back(&topo->stacks.back()->server);
  }
  server::ShardRouterOptions options;
  options.replication = 2;
  topo->router = std::make_unique<server::ShardRouter>(
      servers, &topo->clock, RoundRobin(), options);
  topo->pool = std::make_unique<runtime::TaskPool>(&topo->clock, workers);
  topo->router->SetTaskPool(topo->pool.get());
  for (ObjectId id = 1; id <= kObjects; ++id) {
    if (!topo->router->Store(CorpusObject(id)).ok()) std::abort();
  }
  return topo;
}

double Precision(const std::vector<ObjectId>& ids) {
  size_t hits = 0;
  for (ObjectId id : ids) {
    if (Relevant(id)) ++hits;
  }
  return ids.empty() ? 0.0
                     : static_cast<double>(hits) /
                           static_cast<double>(ids.size());
}

int Run() {
  bench::PrintHeader("ranked_query",
                     "ranked top-k scatter/gather vs id-order browsing");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const std::vector<std::string> query{"fracture"};

  std::unique_ptr<Topology> four = BuildTopology(4, bench::Workers());
  server::ShardRouter& router = *four->router;
  SimClock& clock = four->clock;

  // --- Gate 1: precision@10, ranked vs id order ------------------------
  const std::vector<query::ScoredHit> ranked =
      router.QueryRanked(query, kTopK);
  std::vector<ObjectId> ranked_ids;
  for (const query::ScoredHit& hit : ranked) ranked_ids.push_back(hit.id);
  std::vector<ObjectId> id_order = router.QueryAll(query);
  if (id_order.size() > kTopK) id_order.resize(kTopK);

  const double p_ranked = Precision(ranked_ids);
  const double p_id = Precision(id_order);
  reg.gauge("ranked_query.precision_ranked")->Set(p_ranked);
  reg.gauge("ranked_query.precision_id_order")->Set(p_id);
  std::printf("precision@%zu: ranked=%.2f id_order=%.2f\n", kTopK,
              p_ranked, p_id);
  if (!(p_ranked > p_id)) {
    std::printf("FAIL: ranked precision %.2f does not beat id order "
                "%.2f\n",
                p_ranked, p_id);
    return 1;
  }
  std::printf("gate: ranked strip is more relevant than the id-order "
              "strip\n");

  // --- Gate 2: top-10 card latency, ranked vs id order -----------------
  // Both paths deliver exactly kTopK miniature cards; the ranked one
  // pays scoring and the scatter merge on top.
  constexpr int kRounds = 8;
  Micros unranked_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    const Micros start = clock.Now();
    const std::vector<ObjectId> matches = router.QueryAll(query);
    size_t fetched = 0;
    for (ObjectId id : matches) {
      if (fetched == kTopK) break;
      if (!router.FetchMiniature(id).ok()) return 1;
      ++fetched;
    }
    if (fetched != kTopK) return 1;
    unranked_total += clock.Now() - start;
  }
  // The ranked rounds run traced: each round roots one span that
  // brackets exactly the measured clock reads, and the router threads
  // its context through the scatter, so the TRACE json reconciles with
  // ranked_total by construction.
  obs::Tracer tracer(&clock);
  router.SetTracer(&tracer);
  Micros ranked_total = 0;
  for (int round = 0; round < kRounds; ++round) {
    obs::TraceSpan root = tracer.StartSpan("bench.ranked_gather");
    const Micros start = clock.Now();
    auto cards = router.GatherCardsRanked(query, kTopK, 96, root.context());
    if (!cards.ok() || cards->size() != kTopK) {
      std::printf("FAIL: ranked gather returned %zu cards\n",
                  cards.ok() ? cards->size() : 0);
      return 1;
    }
    ranked_total += clock.Now() - start;
    root.End();
  }
  router.SetTracer(nullptr);
  Status trace_gate =
      bench::EmitTraceSnapshot("ranked_query", tracer, ranked_total);
  if (!trace_gate.ok()) {
    std::printf("FAIL: %s\n", trace_gate.ToString().c_str());
    return 1;
  }
  const double unranked_ms =
      static_cast<double>(unranked_total) / kRounds / 1000.0;
  const double ranked_ms =
      static_cast<double>(ranked_total) / kRounds / 1000.0;
  const double ratio = ranked_ms / unranked_ms;
  reg.gauge("ranked_query.unranked_ms")->Set(unranked_ms);
  reg.gauge("ranked_query.ranked_ms")->Set(ranked_ms);
  reg.gauge("ranked_query.latency_ratio")->Set(ratio);
  std::printf("top-%zu cards: id_order=%.2fms ranked=%.2fms "
              "ratio=%.2f\n",
              kTopK, unranked_ms, ranked_ms, ratio);
  if (!(ratio <= 1.5)) {
    std::printf("FAIL: ranked latency ratio %.2f exceeds 1.5x\n", ratio);
    return 1;
  }
  std::printf("gate: ranked top-%zu stays within 1.5x of id-order\n",
              kTopK);

  // --- Gate 3: 1-shard vs 4-shard identity -----------------------------
  std::unique_ptr<Topology> one = BuildTopology(1, bench::Workers());
  const std::vector<query::ScoredHit> single =
      one->router->QueryRanked(query, kTopK);
  if (single.size() != ranked.size()) {
    std::printf("FAIL: 1-shard returned %zu hits, 4-shard %zu\n",
                single.size(), ranked.size());
    return 1;
  }
  for (size_t i = 0; i < single.size(); ++i) {
    if (single[i].id != ranked[i].id ||
        single[i].score != ranked[i].score) {
      std::printf("FAIL: rank %zu diverges: 1-shard (%llu, %.6f) vs "
                  "4-shard (%llu, %.6f)\n",
                  i, static_cast<unsigned long long>(single[i].id),
                  single[i].score,
                  static_cast<unsigned long long>(ranked[i].id),
                  ranked[i].score);
      return 1;
    }
  }
  std::printf("gate: 1-shard and 4-shard ranked results are "
              "identical\n");
  Micros total_sim_time = four->clock.Now() + one->clock.Now();

  // --- Gate 4: worker-count determinism --------------------------------
  // Fresh 4-shard topologies driven by pools of 1, 2 and 4 workers must
  // return bit-identical ranked ids and scores, burn identical virtual
  // time, and move every registry counter by the same delta. This is
  // the in-process half of the CI determinism-matrix gate.
  {
    // Instance-normalized counter values: component metrics carry a
    // per-instance suffix ("link14.transfers") and each matrix run
    // builds fresh instances, so digits are stripped and same-family
    // instances summed before comparing.
    auto counter_values = [&reg]() {
      std::map<std::string, int64_t> values;
      for (const auto& [name, value] : reg.Snapshot().counters) {
        std::string normalized;
        for (const char c : name) {
          if (c < '0' || c > '9') normalized += c;
        }
        values[normalized] += value;
      }
      return values;
    };
    struct MatrixRun {
      Micros elapsed = 0;
      std::vector<query::ScoredHit> hits;
      std::map<std::string, int64_t> counter_deltas;
    };
    auto run_matrix = [&](int workers) -> MatrixRun {
      MatrixRun out;
      const std::map<std::string, int64_t> before = counter_values();
      std::unique_ptr<Topology> topo = BuildTopology(4, workers);
      for (int round = 0; round < 4; ++round) {
        out.hits = topo->router->QueryRanked(query, kTopK);
        auto cards = topo->router->GatherCardsRanked(query, kTopK);
        if (!cards.ok() || cards->size() != kTopK) std::abort();
      }
      out.elapsed = topo->clock.Now();
      for (const auto& [name, value] : counter_values()) {
        const auto it = before.find(name);
        const int64_t delta =
            value - (it != before.end() ? it->second : 0);
        if (delta != 0) out.counter_deltas[name] = delta;
      }
      return out;
    };
    const MatrixRun base = run_matrix(1);
    total_sim_time += base.elapsed;
    for (int workers : {2, 4}) {
      const MatrixRun run = run_matrix(workers);
      total_sim_time += run.elapsed;
      bool hits_equal = run.hits.size() == base.hits.size();
      for (size_t i = 0; hits_equal && i < run.hits.size(); ++i) {
        hits_equal = run.hits[i].id == base.hits[i].id &&
                     run.hits[i].score == base.hits[i].score;
      }
      if (!hits_equal || run.elapsed != base.elapsed ||
          run.counter_deltas != base.counter_deltas) {
        std::printf("FAIL: %d-worker run diverges from 1-worker run "
                    "(hits_equal=%d elapsed %lld vs %lld, %zu vs %zu "
                    "counter deltas)\n",
                    workers, hits_equal ? 1 : 0,
                    static_cast<long long>(run.elapsed),
                    static_cast<long long>(base.elapsed),
                    run.counter_deltas.size(),
                    base.counter_deltas.size());
        return 1;
      }
    }
    std::printf("gate: workers {1,2,4} return identical top-%zu "
                "ids/scores and counter deltas\n", kTopK);
  }

  // --- Gate 5: wall-clock speedup curve --------------------------------
  // Wall time is schedule-dependent, so the curve stays on stdout and
  // the >=1.8x gate only arms with four or more hardware cores.
  {
    auto time_ranked_wall = [&](int workers, Micros* virt) -> double {
      std::unique_ptr<Topology> topo = BuildTopology(4, workers);
      topo->router->GatherCardsRanked(query, kTopK).ok();  // Warm caches.
      const Micros virtual_start = topo->clock.Now();
      const auto wall_start = std::chrono::steady_clock::now();
      constexpr int kSpeedupRounds = 24;
      for (int round = 0; round < kSpeedupRounds; ++round) {
        auto cards = topo->router->GatherCardsRanked(query, kTopK);
        if (!cards.ok() || cards->size() != kTopK) std::abort();
      }
      const std::chrono::duration<double> wall =
          std::chrono::steady_clock::now() - wall_start;
      *virt = topo->clock.Now() - virtual_start;
      return wall.count();
    };
    double wall[3] = {0, 0, 0};
    Micros virtual_us[3] = {0, 0, 0};
    const int counts[3] = {1, 2, 4};
    for (int i = 0; i < 3; ++i) {
      double best = -1.0;
      for (int rep = 0; rep < 3; ++rep) {
        Micros virt = 0;
        const double seconds = time_ranked_wall(counts[i], &virt);
        if (best < 0 || seconds < best) best = seconds;
        virtual_us[i] = virt;
      }
      wall[i] = best;
      total_sim_time += virtual_us[i];
    }
    const double speedup2 = wall[0] / wall[1];
    const double speedup4 = wall[0] / wall[2];
    std::printf("speedup: workers 1=%.1fms 2=%.1fms (%.2fx) 4=%.1fms "
                "(%.2fx)\n",
                wall[0] * 1000.0, wall[1] * 1000.0, speedup2,
                wall[2] * 1000.0, speedup4);
    if (virtual_us[1] != virtual_us[0] || virtual_us[2] != virtual_us[0]) {
      std::printf("FAIL: virtual elapsed time varies with worker count "
                  "(%lld/%lld/%lld us)\n",
                  static_cast<long long>(virtual_us[0]),
                  static_cast<long long>(virtual_us[1]),
                  static_cast<long long>(virtual_us[2]));
      return 1;
    }
    if (std::thread::hardware_concurrency() >= 4) {
      if (!(speedup4 >= 1.8) || !(speedup2 >= 1.0)) {
        std::printf("FAIL: speedup curve not monotonic >=1.8x at 4 "
                    "workers (2w %.2fx, 4w %.2fx)\n",
                    speedup2, speedup4);
        return 1;
      }
      std::printf("gate: 4-worker ranked gather is %.2fx the 1-worker "
                  "wall time\n", speedup4);
    } else {
      std::printf("gate: speedup advisory only (%u hardware threads "
                  "< 4)\n", std::thread::hardware_concurrency());
    }
  }

  // --- Gate 6: catalog scale — pruned top-k is sublinear ---------------
  // 10k- and 100k-object catalogs built through the incremental Append
  // path (the same seed stream, so the small catalog is a prefix of the
  // large one). Two gates: the pruned scorer visits under half the
  // postings exhaustive scoring charges at 100k, and its per-query
  // scoring cost grows sublinearly in catalog size.
  {
    auto build_catalog = [](size_t docs, query::ScoredIndex* index) {
      Random rng(1986);
      constexpr size_t kVocab = 800;
      for (ObjectId id = 1; id <= docs; ++id) {
        query::AppendedContent content;
        const size_t words = 6 + rng.Uniform(18);
        for (size_t w = 0; w < words; ++w) {
          // Squared-uniform skew: low word indexes are ubiquitous, the
          // tail is rare — the shape that gives idf and the max-score
          // bounds their spread.
          const size_t pick =
              (rng.Uniform(kVocab) * rng.Uniform(kVocab)) / kVocab;
          content.text += "w" + std::to_string(pick) + " ";
        }
        index->Append(id, content, 0.0);
      }
    };
    const query::QueryEngine pruned_engine(
        {}, query::ScoringStrategy::kMaxScore);
    const query::QueryEngine exhaustive_engine(
        {}, query::ScoringStrategy::kExhaustive);
    // A common head term plus two selective tail terms: the selective
    // evidence saturates the heap and the head list stops generating.
    const std::vector<std::string> scale_query{"w2", "w431", "w797"};
    struct ScalePoint {
      size_t docs;
      Micros cost = 0;
      size_t scanned = 0;
      size_t exhaustive_scanned = 0;
    };
    ScalePoint points[2] = {{10000}, {100000}};
    for (ScalePoint& point : points) {
      query::ScoredIndex index;
      build_catalog(point.docs, &index);
      const query::RankedQuery exact = exhaustive_engine.TopK(
          index, index, scale_query, kTopK, query::QueryMode::kDisjunctive);
      const query::RankedQuery fast = pruned_engine.TopK(
          index, index, scale_query, kTopK, query::QueryMode::kDisjunctive);
      if (fast.hits.size() != exact.hits.size()) {
        std::printf("FAIL: %zu-doc pruned top-%zu returned %zu hits, "
                    "exhaustive %zu\n",
                    point.docs, kTopK, fast.hits.size(),
                    exact.hits.size());
        return 1;
      }
      for (size_t i = 0; i < fast.hits.size(); ++i) {
        if (fast.hits[i].id != exact.hits[i].id ||
            fast.hits[i].score != exact.hits[i].score) {
          std::printf("FAIL: %zu-doc rank %zu diverges: pruned "
                      "(%llu, %.9f) vs exhaustive (%llu, %.9f)\n",
                      point.docs, i,
                      static_cast<unsigned long long>(fast.hits[i].id),
                      fast.hits[i].score,
                      static_cast<unsigned long long>(exact.hits[i].id),
                      exact.hits[i].score);
          return 1;
        }
      }
      point.scanned = fast.postings_scanned;
      point.exhaustive_scanned = exact.postings_scanned;
      point.cost =
          query::ScoringCost(fast.terms_scored, fast.postings_scanned);
      std::printf("scale %6zu docs: scanned=%zu skipped=%zu "
                  "exhaustive=%zu cost=%lldus\n",
                  point.docs, fast.postings_scanned,
                  fast.postings_skipped, exact.postings_scanned,
                  static_cast<long long>(point.cost));
    }
    const double visit_fraction =
        static_cast<double>(points[1].scanned) /
        static_cast<double>(points[1].exhaustive_scanned);
    const double catalog_growth = static_cast<double>(points[1].docs) /
                                  static_cast<double>(points[0].docs);
    const double cost_growth = (static_cast<double>(points[1].cost) /
                                static_cast<double>(points[0].cost)) /
                               catalog_growth;
    reg.gauge("ranked_query.scale_scanned_small")
        ->Set(static_cast<double>(points[0].scanned));
    reg.gauge("ranked_query.scale_scanned_large")
        ->Set(static_cast<double>(points[1].scanned));
    reg.gauge("ranked_query.scale_exhaustive_scanned_large")
        ->Set(static_cast<double>(points[1].exhaustive_scanned));
    reg.gauge("ranked_query.scale_pruned_visit_fraction")
        ->Set(visit_fraction);
    reg.gauge("ranked_query.scale_cost_growth")->Set(cost_growth);
    std::printf("catalog_scale: visit_fraction=%.3f cost_growth=%.3f "
                "(1.0 = linear in catalog size)\n",
                visit_fraction, cost_growth);
    if (!(visit_fraction < 0.5)) {
      std::printf("FAIL: pruned scan visits %.0f%% of exhaustive at "
                  "100k docs (need < 50%%)\n", visit_fraction * 100.0);
      return 1;
    }
    if (!(cost_growth < 1.0)) {
      std::printf("FAIL: per-query scoring cost grew %.2fx relative to "
                  "catalog size (need sublinear)\n", cost_growth);
      return 1;
    }
    std::printf("gate: 100k-object top-%zu visits %.0f%% of exhaustive "
                "postings and scales sublinearly\n",
                kTopK, visit_fraction * 100.0);
  }

  // --- Gate 7: Append reaches ranked results via the delta path --------
  // An append on the live 4-shard topology must surface in ranked
  // results through the router's stats *delta* sync: the full-re-add
  // counter (the Store-time rebuild path) stays flat.
  {
    const int64_t full_before =
        reg.counter("router.stats_full_adds_total")->value();
    const int64_t delta_before =
        reg.counter("router.stats_delta_applies_total")->value();
    server::ObjectServer::AppendParts parts;
    parts.text = "avulsion avulsion avulsion consult";
    if (!router.Append(4, parts).ok()) {
      std::printf("FAIL: router Append refused\n");
      return 1;
    }
    const std::vector<query::ScoredHit> appended = router.QueryRanked(
        {"avulsion"}, kTopK, query::QueryMode::kDisjunctive);
    const int64_t full_adds =
        reg.counter("router.stats_full_adds_total")->value() - full_before;
    const int64_t delta_applies =
        reg.counter("router.stats_delta_applies_total")->value() -
        delta_before;
    reg.gauge("ranked_query.append_stats_full_adds")
        ->Set(static_cast<double>(full_adds));
    reg.gauge("ranked_query.append_stats_delta_applies")
        ->Set(static_cast<double>(delta_applies));
    if (appended.size() != 1 || appended[0].id != 4) {
      std::printf("FAIL: appended term did not surface in ranked "
                  "results (%zu hits)\n", appended.size());
      return 1;
    }
    if (full_adds != 0 || delta_applies != 1) {
      std::printf("FAIL: append took the rebuild path (full_adds=%lld, "
                  "delta_applies=%lld; want 0 and 1)\n",
                  static_cast<long long>(full_adds),
                  static_cast<long long>(delta_applies));
      return 1;
    }
    std::printf("gate: Append surfaces in ranked results via one stats "
                "delta, zero rebuilds\n");
  }

  bench::NoteSimTime(total_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
