// FIG1-2: "Visual pages with text, graphics and bitmaps in MINOS."
// Regenerates the Figures 1-2 scenario: an office document whose visual
// pages mix formatted text, a graphics map, and a bitmap x-ray, browsed
// through the menu options on the right of the screen. Reports the page
// digests (deterministic) and the ink distribution per page.

#include <cstdio>

#include "minos/core/visual_browser.h"
#include "minos/render/export.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("FIG1-2", "visual pages with text, graphics, bitmaps");
  object::MultimediaObject obj = bench::BuildVisualPagesObject(1);

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser = core::VisualBrowser::Open(&obj, &screen, &messages, &clock,
                                           &log);
  if (!browser.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 browser.status().ToString().c_str());
    return 1;
  }

  std::printf("pages=%d menu_options=%zu\n", (*browser)->page_count(),
              (*browser)->MenuOptions().size());
  std::printf("%-6s %-18s %-10s\n", "page", "digest", "ink_pixels");
  for (int p = 1; p <= (*browser)->page_count(); ++p) {
    if (!(*browser)->GotoPage(p).ok()) return 1;
    const image::Bitmap snap = screen.PageSnapshot();
    uint64_t ink = 0;
    for (uint8_t v : snap.pixels()) {
      if (v > 0) ++ink;
    }
    std::printf("%-6d %016llx %-10llu\n", p,
                static_cast<unsigned long long>(snap.Digest()),
                static_cast<unsigned long long>(ink));
  }
  // Exercise the full §2 visual command set once.
  (*browser)->GotoPage(1).ok();
  (*browser)->AdvancePages(3).ok();
  (*browser)->AdvancePages(-2).ok();
  (*browser)->NextUnit(text::LogicalUnit::kChapter).ok();
  (*browser)->FindPattern("optical").ok();
  std::printf("event_log_digest=%016llx events=%zu\n",
              static_cast<unsigned long long>(log.Digest()), log.size());
  render::WritePgm(screen.framebuffer(), "fig01_02_last_page.pgm").ok();
  std::printf("wrote fig01_02_last_page.pgm\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
