// SRV-1: queueing delays at the object server (§5: "Performance may be
// crucial due to queueing delays that may be experienced when several
// users try to access data from the same device"). Sweeps concurrent
// users x arm-scheduling policy x device type and reports mean queueing
// delay and mean response time per request batch; then shows the effect
// of the block cache on a hot working set.

#include <cstdio>

#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/storage/request_scheduler.h"
#include "minos/util/random.h"
#include "scenario_lib.h"

namespace minos {
namespace {

using storage::BlockDevice;
using storage::DeviceCostModel;
using storage::IoRequest;
using storage::QueueingStats;
using storage::RequestScheduler;
using storage::SchedulingPolicy;

std::vector<IoRequest> MakeWorkload(int users, uint64_t blocks,
                                    uint64_t seed) {
  // Each user issues 8 object reads (4 consecutive blocks each) over a
  // one-second window at random archive positions.
  Random rng(seed);
  std::vector<IoRequest> reqs;
  uint64_t id = 0;
  for (int u = 0; u < users; ++u) {
    for (int r = 0; r < 8; ++r) {
      IoRequest req;
      req.id = id++;
      req.block = rng.Uniform(blocks - 8);
      req.count = 4;
      req.arrival_time = static_cast<Micros>(rng.Uniform(1000000));
      reqs.push_back(req);
    }
  }
  return reqs;
}

int Run() {
  bench::PrintHeader("SRV-1", "server queueing delays");
  constexpr uint64_t kBlocks = 20000;
  std::printf("%-10s %-8s %-8s %-18s %-18s\n", "device", "users", "policy",
              "mean_queue_ms", "mean_response_ms");
  for (const char* device_name : {"optical", "magnetic"}) {
    const DeviceCostModel cost = std::string(device_name) == "optical"
                                     ? DeviceCostModel::OpticalDisk()
                                     : DeviceCostModel::MagneticDisk();
    for (int users : {1, 4, 16, 64}) {
      for (SchedulingPolicy policy :
           {SchedulingPolicy::kFcfs, SchedulingPolicy::kSstf,
            SchedulingPolicy::kScan}) {
        SimClock clock;
        BlockDevice device(device_name, kBlocks, 1024, cost, false,
                           &clock);
        RequestScheduler scheduler(&device, policy);
        const std::vector<IoRequest> reqs =
            MakeWorkload(users, kBlocks, 42);
        const auto done = scheduler.Run(reqs);
        const QueueingStats stats =
            RequestScheduler::Summarize(reqs, done);
        std::printf("%-10s %-8d %-8s %-18.1f %-18.1f\n", device_name,
                    users, SchedulingPolicyName(policy),
                    stats.mean_queueing_delay_us / 1000.0,
                    stats.mean_response_time_us / 1000.0);
      }
    }
  }

  // Cache effect: a hot working set read repeatedly through the archiver.
  std::printf("\ncache effect (optical device, 64KB hot set, 200 reads):\n");
  std::printf("%-16s %-12s %-14s\n", "cache_blocks", "hit_rate",
              "total_time_ms");
  for (size_t cache_blocks : {size_t{0}, size_t{16}, size_t{64},
                              size_t{256}}) {
    SimClock clock;
    BlockDevice device("optical", 4096, 1024,
                       DeviceCostModel::OpticalDisk(), true, &clock);
    storage::BlockCache cache(cache_blocks);
    storage::Archiver archiver(&device, &cache);
    // Write a 64 KB hot object.
    std::string payload(64 * 1024, 'x');
    auto addr = archiver.Append(payload);
    if (!addr.ok()) return 1;
    archiver.Flush().ok();
    cache.Clear();  // Start cold.
    const Micros t0 = clock.Now();
    Random rng(7);
    std::string out;
    for (int i = 0; i < 200; ++i) {
      const uint64_t offset = rng.Uniform(63) * 1024;
      archiver.ReadRange(addr->offset + offset, 1024, &out).ok();
    }
    std::printf("%-16zu %-12.3f %-14lld\n", cache_blocks, cache.HitRate(),
                static_cast<long long>(MicrosToMillis(clock.Now() - t0)));
  }
  std::printf("paper_claim=scheduling and caching materially reduce "
              "queueing delays on the shared optical device\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
