// ABL-2: pause-detector parameter ablation. Sweeps the analysis frame
// length and the energy threshold and scores precision/recall against
// the synthesis ground truth, showing the operating region the default
// parameters sit in and where detection degrades.

#include <cstdio>

#include "minos/voice/pause.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

struct PR {
  double precision;
  double recall;
  size_t detections;
};

PR Score(const voice::VoiceTrack& track,
         const voice::PauseDetectorParams& params) {
  voice::PauseDetector detector(params);
  const auto pauses = detector.Detect(track.pcm);
  size_t tp = 0;
  for (const voice::Pause& p : pauses) {
    const size_t mid = p.samples.begin + p.length() / 2;
    for (const voice::SilenceTruth& s : track.silences) {
      if (s.samples.Contains(mid)) {
        ++tp;
        break;
      }
    }
  }
  const size_t min_len = track.pcm.MicrosToSamples(MillisToMicros(50));
  size_t relevant = 0, covered = 0;
  for (const voice::SilenceTruth& s : track.silences) {
    if (s.samples.length() < min_len) continue;
    ++relevant;
    const size_t mid = s.samples.begin + s.samples.length() / 2;
    for (const voice::Pause& p : pauses) {
      if (p.samples.Contains(mid)) {
        ++covered;
        break;
      }
    }
  }
  PR pr;
  pr.precision =
      pauses.empty() ? 1.0 : static_cast<double>(tp) / pauses.size();
  pr.recall =
      relevant == 0 ? 1.0 : static_cast<double>(covered) / relevant;
  pr.detections = pauses.size();
  return pr;
}

int Run() {
  bench::PrintHeader("ABL-2", "pause detector parameter ablation");
  // A moderately noisy speaker stresses the threshold choice.
  voice::SpeakerParams speaker;
  speaker.noise_floor = 0.03;
  voice::SpeechSynthesizer synth(speaker);
  const voice::VoiceTrack track =
      synth.Synthesize(bench::LongReport(10)).value();

  std::printf("frame length sweep (threshold=0.05):\n");
  std::printf("%-10s %-12s %-10s %-10s\n", "frame_ms", "detections",
              "precision", "recall");
  for (double frame : {2.0, 5.0, 10.0, 25.0, 60.0}) {
    voice::PauseDetectorParams params;
    params.frame_ms = frame;
    const PR pr = Score(track, params);
    std::printf("%-10.0f %-12zu %-10.3f %-10.3f\n", frame, pr.detections,
                pr.precision, pr.recall);
  }

  std::printf("\nenergy threshold sweep (frame=10ms):\n");
  std::printf("%-10s %-12s %-10s %-10s\n", "threshold", "detections",
              "precision", "recall");
  for (double threshold : {0.01, 0.03, 0.05, 0.10, 0.25}) {
    voice::PauseDetectorParams params;
    params.energy_threshold = threshold;
    const PR pr = Score(track, params);
    std::printf("%-10.2f %-12zu %-10.3f %-10.3f\n", threshold,
                pr.detections, pr.precision, pr.recall);
  }
  std::printf("design_choice=default frame 10ms / threshold 0.05 sits in "
              "the high-precision high-recall plateau\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
