// FIG3-4: "A visual logical message (image) on a visual mode object. By
// pressing a mouse button various parts of the text associated with the
// image are displayed in the same page with the image. The image is only
// stored once."
//
// Reproduces: the x-ray pins at the top of the screen while the related
// text pages cycle below; several pages are needed; leaving the related
// text removes the message. Verifies single storage of the image.

#include <cstdio>

#include "minos/core/visual_browser.h"
#include "scenario_lib.h"

namespace minos {
namespace {

int Run() {
  bench::PrintHeader("FIG3-4", "visual logical message pinned over text");
  object::MultimediaObject obj = bench::BuildVisualMessageObject(2);

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser = core::VisualBrowser::Open(&obj, &screen, &messages, &clock,
                                           &log);
  if (!browser.ok()) return 1;

  // Walk every page; record on which pages the x-ray stays pinned.
  int pinned_pages = 0;
  std::printf("%-6s %-8s %-18s\n", "page", "pinned", "page_digest");
  for (int p = 1; p <= (*browser)->page_count(); ++p) {
    if (!(*browser)->GotoPage(p).ok()) return 1;
    const size_t shown =
        log.OfKind(core::EventKind::kVisualMessageShown).size();
    const size_t hidden =
        log.OfKind(core::EventKind::kVisualMessageHidden).size();
    const bool pinned = shown > hidden;
    if (pinned) ++pinned_pages;
    std::printf("%-6d %-8s %016llx\n", p, pinned ? "yes" : "no",
                static_cast<unsigned long long>(
                    screen.PageSnapshot().Digest()));
  }
  std::printf("pages_with_pinned_message=%d of %d\n", pinned_pages,
              (*browser)->page_count());
  std::printf("paper_claim=the related text needs several pages under the "
              "pinned image\n");
  std::printf("holds=%s\n",
              (pinned_pages >= 3 && pinned_pages < (*browser)->page_count())
                  ? "yes"
                  : "NO");
  // The image is stored once in the object image part.
  std::printf("images_stored=%zu (x-ray stored once)\n",
              obj.images().size());
  std::printf("event_log_digest=%016llx\n",
              static_cast<unsigned long long>(log.Digest()));
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
