// FIG5-6: "Application of the transparency capability of MINOS in a
// medical information system... Transparencies may be superimposed on the
// top of a bitmap as the user presses the next page button. Each
// transparency contains some graphics information (circle) to identify a
// section on the x-ray, and some text information related to it."
//
// Reproduces: stacked display accumulates ink page by page; the separate
// method shows one transparency at a time; the user may select an
// arbitrary subset to superimpose.

#include <cstdio>

#include "minos/core/visual_browser.h"
#include "scenario_lib.h"

namespace minos {
namespace {

uint64_t Ink(const render::Screen& screen) {
  const image::Bitmap snap = screen.PageSnapshot();
  uint64_t ink = 0;
  for (uint8_t v : snap.pixels()) {
    if (v > 0) ++ink;
  }
  return ink;
}

int Run() {
  bench::PrintHeader("FIG5-6", "transparencies over an x-ray");
  constexpr int kTransparencies = 3;
  object::MultimediaObject obj =
      bench::BuildTransparencyObject(3, kTransparencies);

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser = core::VisualBrowser::Open(&obj, &screen, &messages, &clock,
                                           &log);
  if (!browser.ok()) return 1;

  // Stacked display: ink accumulates as the user presses "next page".
  std::printf("stacked display (authored method):\n");
  std::printf("%-6s %-10s %-18s\n", "page", "ink", "digest");
  uint64_t prev_ink = 0;
  bool monotone = true;
  for (int p = 1; p <= (*browser)->page_count(); ++p) {
    if (!(*browser)->GotoPage(p).ok()) return 1;
    const uint64_t ink = Ink(screen);
    if (p >= 2 && ink < prev_ink) monotone = false;
    std::printf("%-6d %-10llu %016llx\n", p,
                static_cast<unsigned long long>(ink),
                static_cast<unsigned long long>(
                    screen.PageSnapshot().Digest()));
    prev_ink = ink;
  }
  std::printf("paper_claim=stacked transparencies accumulate markings\n");
  std::printf("holds=%s\n", monotone ? "yes" : "NO");

  // User-selected superimposition: only transparencies 0 and 2.
  if (!(*browser)->ShowSelectedTransparencies(0, {0, 2}).ok()) return 1;
  std::printf("selected {1,3} superimposed: ink=%llu digest=%016llx\n",
              static_cast<unsigned long long>(Ink(screen)),
              static_cast<unsigned long long>(
                  screen.PageSnapshot().Digest()));
  std::printf("transparency_shown_events=%zu\n",
              log.OfKind(core::EventKind::kTransparencyShown).size());
  std::printf("event_log_digest=%016llx\n",
              static_cast<unsigned long long>(log.Digest()));
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
