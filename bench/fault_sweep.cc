// FAULT-1: page latency and recovery effort as the fault rate rises. The
// same query-select-present-browse session runs under increasingly hostile
// link conditions; the table reports what the user experienced (sessions
// completed, time to first page) and what the recovery machinery spent to
// deliver it (faults absorbed, retries, breaker transitions). A final
// dead-link phase drives the circuit breaker through its open/half-open
// cycle so the exported snapshot carries every fault metric family.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "minos/core/presentation_manager.h"
#include "minos/obs/metrics.h"
#include "minos/server/object_server.h"
#include "minos/server/repair.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/markup.h"
#include "minos/util/coding.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

object::MultimediaObject TextObject(storage::ObjectId id,
                                    const text::Document& doc) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(doc).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t n = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < n; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  obj.Archive().ok();
  return obj;
}

object::MultimediaObject AudioObject(storage::ObjectId id,
                                     const text::Document& doc) {
  object::MultimediaObject obj(id);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(doc);
  if (track.ok()) {
    obj.SetVoicePart(voice::VoiceDocument(std::move(track).value())).ok();
  }
  obj.SetTextPart(doc).ok();
  obj.descriptor().driving_mode = object::DrivingMode::kAudio;
  obj.Archive().ok();
  return obj;
}

struct SweepPoint {
  const char* label;
  server::FaultProfile profile;
};

/// One shard's full server stack for the self-healing phases: its own
/// device, cache, archiver, versions and link, so breakers and faults
/// stay per shard.
struct ShardStack {
  explicit ShardStack(SimClock* clock)
      : device("shard", 65536, 512, storage::DeviceCostModel::Instant(),
               true, clock),
        cache(256),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link) {}

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
};

struct RepairTopology {
  SimClock clock;
  std::vector<std::unique_ptr<ShardStack>> stacks;
  std::unique_ptr<server::ShardRouter> router;
  std::unique_ptr<server::RepairManager> repair;
};

std::unique_ptr<RepairTopology> BuildRepairTopology(size_t shards,
                                                    uint64_t seed) {
  auto topo = std::make_unique<RepairTopology>();
  std::vector<server::ObjectServer*> servers;
  for (size_t i = 0; i < shards; ++i) {
    topo->stacks.push_back(std::make_unique<ShardStack>(&topo->clock));
    servers.push_back(&topo->stacks.back()->server);
  }
  server::ShardRouterOptions options;
  options.replication = 2;
  topo->router = std::make_unique<server::ShardRouter>(
      servers, &topo->clock, server::RangePlacement(10), options);
  server::RepairOptions repair_options;
  repair_options.seed = seed;
  topo->repair = std::make_unique<server::RepairManager>(
      topo->router.get(), &topo->clock, repair_options);
  return topo;
}

/// Drives fetches of `id` into the (dead) link until `shard`'s breaker
/// opens. Returns false if it never does.
bool DriveBreakerOpen(RepairTopology* topo, size_t shard,
                      storage::ObjectId id) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    if (topo->stacks[shard]->link.breaker().state() ==
        server::CircuitBreaker::State::kOpen) {
      return true;
    }
    topo->router->Fetch(id).ok();
  }
  return topo->stacks[shard]->link.breaker().state() ==
         server::CircuitBreaker::State::kOpen;
}

struct CycleOutcome {
  server::RepairReport report;
  Micros mttr_us = 0;
  Micros clock_us = 0;
  uint64_t degraded_stores = 0;
  uint32_t digest_crc = 0;  ///< Folded over every digest wire doc.
  bool ok = false;
};

/// The measured degrade → repair cycle: a 4-shard archive loses one
/// shard to a dead link mid-run, keeps accepting stores (durably, but
/// under-replicated), heals, and anti-entropy restores full redundancy.
/// MTTR is the span from the heal edge to the sync that converges.
CycleOutcome RunDegradeRepairCycle(uint64_t seed,
                                   const text::Document& doc) {
  CycleOutcome out;
  std::unique_ptr<RepairTopology> topo = BuildRepairTopology(4, seed);
  std::string digest_accum;
  topo->repair->SetDigestTap(
      [&digest_accum](size_t, std::string* wire) { digest_accum += *wire; });

  // Fully replicated base corpus, one object per shard's range.
  for (storage::ObjectId id : {5, 15, 25, 35}) {
    if (!topo->router->Store(TextObject(id, doc)).ok()) return out;
  }

  // Kill shard 2's link; foreground fetches open its breaker.
  server::FaultProfile dead;
  dead.drop_rate = 1.0;
  server::FaultInjector chaos(dead, seed ^ 0xD00DULL, &topo->clock);
  topo->stacks[2]->link.SetFaultInjector(&chaos);
  server::CircuitBreaker::Options bo;
  bo.failure_threshold = 4;
  topo->stacks[2]->link.ConfigureBreaker(bo);
  if (!DriveBreakerOpen(topo.get(), 2, 25)) return out;

  // The dark window: ids whose chains touch shard 2 land degraded.
  const int64_t degraded_before =
      obs::MetricsRegistry::Default()
          .counter("router.degraded_stores_total")
          ->value();
  for (storage::ObjectId id : {16, 17, 20, 21, 22, 23}) {
    if (!topo->router->Store(TextObject(id, doc)).ok()) return out;
  }
  out.degraded_stores =
      static_cast<uint64_t>(obs::MetricsRegistry::Default()
                                .counter("router.degraded_stores_total")
                                ->value() -
                            degraded_before);

  // Heal: the link recovers, the cooldown passes, repair converges.
  topo->stacks[2]->link.SetFaultInjector(nullptr);
  topo->clock.Advance(topo->stacks[2]->link.breaker().options().cooldown_us +
                      1);
  const Micros heal_at = topo->clock.Now();
  std::optional<server::RepairReport> report = topo->repair->SyncIfPending();
  if (!report.has_value()) return out;
  out.report = *report;
  out.mttr_us = topo->clock.Now() - heal_at;
  out.clock_us = topo->clock.Now();
  out.digest_crc = Crc32(digest_accum);
  out.ok = true;
  return out;
}

int Run() {
  bench::PrintHeader("fault_sweep", "page latency under injected faults");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  text::MarkupParser parser;
  auto report = parser.Parse(
      ".TITLE Field Report\n.CHAPTER Findings\n.PP\nThe hospital reviewed "
      "the radiographs on Thursday and found a hairline fracture.\n"
      ".CHAPTER Plan\n.PP\nA short arm cast for three weeks, then a follow "
      "up radiograph at the hospital.\n");
  if (!report.ok()) return 1;

  std::vector<SweepPoint> sweep;
  sweep.push_back({"none", server::FaultProfile::None()});
  {
    server::FaultProfile p;
    p.drop_rate = 0.05;
    sweep.push_back({"drop5", p});
  }
  sweep.push_back({"flaky", server::FaultProfile::Flaky()});
  sweep.push_back({"storm", server::FaultProfile::Storm()});

  std::printf("%-8s %-10s %-9s %-9s %-12s %-12s\n", "profile", "sessions",
              "faults", "retries", "first_pg_ms", "p99_open_ms");

  Micros last_sim_time = 0;
  for (const SweepPoint& point : sweep) {
    SimClock clock;
    storage::BlockDevice device("optical", 65536, 512,
                                storage::DeviceCostModel::OpticalDisk(),
                                true, &clock);
    storage::BlockCache cache(256);
    storage::Archiver archiver(&device, &cache);
    storage::VersionStore versions;
    server::Link link = server::Link::Ethernet(&clock);
    server::ObjectServer server(&archiver, &versions, &clock, &link);
    server::FaultInjector injector(point.profile, 0xFA17, &clock);
    link.SetFaultInjector(&injector);
    if (!server.Store(TextObject(1, *report)).ok()) return 1;
    if (!server.Store(AudioObject(2, *report)).ok()) return 1;

    render::Screen screen;
    server::Workstation workstation(&server, &screen, &clock);
    obs::Histogram* open_us = reg.histogram("fault_sweep.page_open_us");
    const int64_t retries_before =
        reg.counter("retry.retries_total")->value();

    int completed = 0;
    double first_page_ms = 0;
    const int kSessions = 12;
    for (int session = 0; session < kSessions; ++session) {
      auto browser = workstation.Query({"hospital"});
      if (!browser.ok()) continue;
      bool ok = true;
      for (storage::ObjectId id = 1; id <= 2 && ok; ++id) {
        const Micros before = clock.Now();
        ok = workstation.Present(id).ok();
        if (!ok) break;
        const Micros open_time = clock.Now() - before;
        open_us->Record(static_cast<double>(open_time));
        if (completed == 0 && id == 1) {
          first_page_ms =
              static_cast<double>(MicrosToMillis(open_time));
        }
        if (core::VisualBrowser* vb =
                workstation.presentation().visual_browser()) {
          while (vb->NextPage().ok()) {
          }
        }
      }
      if (ok) ++completed;
    }

    const obs::MetricsSnapshot snap = reg.Snapshot();
    const obs::HistogramSummary* h =
        snap.FindHistogram("fault_sweep.page_open_us");
    std::printf("%-8s %2d/%-7d %-9llu %-9lld %-12.1f %-12.1f\n", point.label,
                completed, kSessions,
                static_cast<unsigned long long>(injector.faults_injected()),
                static_cast<long long>(
                    reg.counter("retry.retries_total")->value() -
                    retries_before),
                first_page_ms, h != nullptr ? h->p99 / 1000.0 : 0.0);
    last_sim_time = clock.Now();
  }

  // Dead-link phase: every transfer drops until the breaker opens, then
  // the link heals and the half-open probe closes it again.
  {
    SimClock clock;
    storage::BlockDevice device("optical", 65536, 512,
                                storage::DeviceCostModel::Instant(), true,
                                &clock);
    storage::BlockCache cache(256);
    storage::Archiver archiver(&device, &cache);
    storage::VersionStore versions;
    server::Link link = server::Link::Ethernet(&clock);
    server::ObjectServer server(&archiver, &versions, &clock, &link);
    server::FaultProfile dead;
    dead.drop_rate = 1.0;
    server::FaultInjector injector(dead, 0xDEAD, &clock);
    link.SetFaultInjector(&injector);
    server::CircuitBreaker::Options options;
    options.failure_threshold = 4;
    link.ConfigureBreaker(options);
    if (!server.Store(TextObject(1, *report)).ok()) return 1;

    server.Fetch(1).ok();  // Trips the breaker.
    server.Fetch(1).ok();  // Fails fast while open.
    const bool opened =
        link.breaker().state() == server::CircuitBreaker::State::kOpen;
    injector.set_profile(server::FaultProfile::None());  // The link heals.
    clock.Advance(options.cooldown_us);
    const bool recovered = server.Fetch(1).ok();
    std::printf("breaker: opened=%s recovered_after_cooldown=%s\n",
                opened ? "yes" : "NO", recovered ? "yes" : "NO");
    last_sim_time += clock.Now();
  }

  // MTTR sweep: mean time to recovery, measured as the span from the
  // breaker opening to the first successful fetch once the link heals,
  // across breaker configurations. The cooldown dominates the figure:
  // a short cooldown probes (and recovers) sooner, a long one keeps
  // failing fast on a link that is already healthy again.
  {
    struct BreakerConfig {
      int threshold;
      Micros cooldown;
    };
    const std::vector<BreakerConfig> configs = {
        {2, MillisToMicros(50)},
        {4, MillisToMicros(250)},
        {6, MillisToMicros(1000)},
    };
    obs::Histogram* mttr_us = reg.histogram("fault_sweep.mttr_us");
    std::printf("%-10s %-12s %-10s\n", "threshold", "cooldown_ms",
                "mttr_ms");
    for (const BreakerConfig& config : configs) {
      SimClock clock;
      storage::BlockDevice device("optical", 65536, 512,
                                  storage::DeviceCostModel::Instant(),
                                  true, &clock);
      storage::BlockCache cache(256);
      storage::Archiver archiver(&device, &cache);
      storage::VersionStore versions;
      server::Link link = server::Link::Ethernet(&clock);
      server::ObjectServer server(&archiver, &versions, &clock, &link);
      server::FaultProfile dead;
      dead.drop_rate = 1.0;
      server::FaultInjector injector(dead, 0xD1E, &clock);
      link.SetFaultInjector(&injector);
      server::CircuitBreaker::Options options;
      options.failure_threshold = config.threshold;
      options.cooldown_us = config.cooldown;
      link.ConfigureBreaker(options);
      if (!server.Store(TextObject(1, *report)).ok()) return 1;

      // Drive fetches into the dead link until the breaker opens.
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (link.breaker().state() ==
            server::CircuitBreaker::State::kOpen) {
          break;
        }
        server.Fetch(1).ok();
      }
      if (link.breaker().state() != server::CircuitBreaker::State::kOpen) {
        std::printf("FAIL: breaker never opened at threshold %d\n",
                    config.threshold);
        return 1;
      }
      const Micros opened_at = clock.Now();
      injector.set_profile(server::FaultProfile::None());  // Heals now.
      // Poll like a session would: failed-fast attempts cost nothing,
      // so recovery lands on the first probe past the cooldown.
      Micros recovered_at = 0;
      for (int poll = 0; poll < 4096; ++poll) {
        if (server.Fetch(1).ok()) {
          recovered_at = clock.Now();
          break;
        }
        clock.Advance(MillisToMicros(5));
      }
      if (recovered_at == 0) {
        std::printf("FAIL: no recovery after heal (cooldown %lld us)\n",
                    static_cast<long long>(config.cooldown));
        return 1;
      }
      const Micros mttr = recovered_at - opened_at;
      mttr_us->Record(static_cast<double>(mttr));
      std::printf("%-10d %-12.0f %-10.1f\n", config.threshold,
                  static_cast<double>(config.cooldown) / 1000.0,
                  static_cast<double>(mttr) / 1000.0);
      last_sim_time += clock.Now();
    }
  }

  // --- Self-healing storage tier: degrade → repair, measured -----------
  // A 4-shard archive loses a shard, keeps serving (degraded), heals,
  // and anti-entropy restores full redundancy. Gates: the cycle must
  // converge (under_replicated == 0), must actually ship repairs, and
  // must be deterministic — the same seed twice yields the identical
  // repair schedule down to the digest bytes and the clock.
  {
    obs::Histogram* mttr_us = reg.histogram("fault_sweep.mttr_us");
    obs::Histogram* partial_mttr_us =
        reg.histogram("fault_sweep.partial_mttr_us");
    std::printf("%-12s %-9s %-9s %-9s %-8s\n", "repair", "mttr_ms",
                "repaired", "bytes", "under");

    const CycleOutcome cycle = RunDegradeRepairCycle(0x5EEDF00D, *report);
    if (!cycle.ok) {
      std::printf("FAIL: degrade-repair cycle did not complete\n");
      return 1;
    }
    mttr_us->Record(static_cast<double>(cycle.mttr_us));
    std::printf("%-12s %-9.1f %-9llu %-9llu %-8llu\n", "cycle4",
                static_cast<double>(cycle.mttr_us) / 1000.0,
                static_cast<unsigned long long>(
                    cycle.report.replicas_repaired),
                static_cast<unsigned long long>(cycle.report.bytes_shipped),
                static_cast<unsigned long long>(
                    cycle.report.under_replicated));
    if (cycle.report.under_replicated != 0 ||
        cycle.report.replicas_repaired == 0 ||
        cycle.report.bytes_shipped == 0 || cycle.degraded_stores == 0) {
      std::printf("FAIL: cycle did not converge to full redundancy\n");
      return 1;
    }
    last_sim_time += cycle.clock_us;

    // Partial heal: two shards dark, one heals early. Repair restores
    // what it can reach and carries the rest as visible debt until the
    // second heal.
    {
      std::unique_ptr<RepairTopology> topo =
          BuildRepairTopology(4, 0x5EEDF00D);
      for (storage::ObjectId id : {5, 15, 25, 35}) {
        if (!topo->router->Store(TextObject(id, *report)).ok()) return 1;
      }
      server::FaultProfile dead;
      dead.drop_rate = 1.0;
      server::FaultInjector chaos1(dead, 0xA11, &topo->clock);
      server::FaultInjector chaos2(dead, 0xB22, &topo->clock);
      topo->stacks[1]->link.SetFaultInjector(&chaos1);
      topo->stacks[2]->link.SetFaultInjector(&chaos2);
      server::CircuitBreaker::Options fast;
      fast.failure_threshold = 4;
      server::CircuitBreaker::Options slow = fast;
      slow.cooldown_us = MillisToMicros(5000);  // Heals much later.
      topo->stacks[1]->link.ConfigureBreaker(fast);
      topo->stacks[2]->link.ConfigureBreaker(slow);
      if (!DriveBreakerOpen(topo.get(), 1, 15) ||
          !DriveBreakerOpen(topo.get(), 2, 25)) {
        std::printf("FAIL: partial-heal breakers never opened\n");
        return 1;
      }
      // Stores with one live chain member each: durable, degraded.
      for (storage::ObjectId id : {6, 7, 8, 9}) {  // Chains (0,1).
        if (!topo->router->Store(TextObject(id, *report)).ok()) return 1;
      }
      for (storage::ObjectId id : {20, 21, 22, 23}) {  // Chains (2,3).
        if (!topo->router->Store(TextObject(id, *report)).ok()) return 1;
      }
      topo->stacks[1]->link.SetFaultInjector(nullptr);
      topo->stacks[2]->link.SetFaultInjector(nullptr);
      topo->clock.Advance(fast.cooldown_us + 1);  // Shard 1 heals alone.
      const Micros heal1_at = topo->clock.Now();
      std::optional<server::RepairReport> partial =
          topo->repair->SyncIfPending();
      if (!partial.has_value()) {
        std::printf("FAIL: partial heal triggered no sync\n");
        return 1;
      }
      const Micros partial_mttr = topo->clock.Now() - heal1_at;
      partial_mttr_us->Record(static_cast<double>(partial_mttr));
      std::printf("%-12s %-9.1f %-9llu %-9llu %-8llu\n", "partial",
                  static_cast<double>(partial_mttr) / 1000.0,
                  static_cast<unsigned long long>(
                      partial->replicas_repaired),
                  static_cast<unsigned long long>(partial->bytes_shipped),
                  static_cast<unsigned long long>(
                      partial->under_replicated));
      // Shard 1's debt is repaired; shard 2's is visible but not
      // pending — its heal, not another sync, is what it waits for.
      if (partial->replicas_repaired == 0 ||
          partial->under_replicated == 0 || partial->pending != 0) {
        std::printf("FAIL: partial heal did not behave as partial\n");
        return 1;
      }
      topo->clock.Advance(slow.cooldown_us + 1);  // Shard 2 heals.
      std::optional<server::RepairReport> full =
          topo->repair->SyncIfPending();
      if (!full.has_value() || full->under_replicated != 0 ||
          full->replicas_repaired == 0) {
        std::printf("FAIL: second heal did not converge\n");
        return 1;
      }
      last_sim_time += topo->clock.Now();
    }

    // Determinism: the same seed replays the identical repair schedule.
    const CycleOutcome replay = RunDegradeRepairCycle(0x5EEDF00D, *report);
    const bool deterministic =
        replay.ok && replay.report.digests_exchanged ==
                         cycle.report.digests_exchanged &&
        replay.report.replicas_repaired == cycle.report.replicas_repaired &&
        replay.report.bytes_shipped == cycle.report.bytes_shipped &&
        replay.report.objects_checked == cycle.report.objects_checked &&
        replay.mttr_us == cycle.mttr_us &&
        replay.clock_us == cycle.clock_us &&
        replay.digest_crc == cycle.digest_crc;
    std::printf("repair determinism (same seed, 4 shards): %s\n",
                deterministic ? "identical" : "DIVERGED");
    if (!deterministic) return 1;
    last_sim_time += replay.clock_us;

    // Single shard: the cycle degenerates to a clean no-op — nothing
    // to repair, nothing under-replicated, still deterministic.
    {
      std::unique_ptr<RepairTopology> solo = BuildRepairTopology(1, 0x1);
      for (storage::ObjectId id : {1, 2, 3, 4}) {
        if (!solo->router->Store(TextObject(id, *report)).ok()) return 1;
      }
      const server::RepairReport noop = solo->repair->Sync();
      std::printf("%-12s %-9.1f %-9llu %-9llu %-8llu\n", "noop1", 0.0,
                  static_cast<unsigned long long>(noop.replicas_repaired),
                  static_cast<unsigned long long>(noop.bytes_shipped),
                  static_cast<unsigned long long>(noop.under_replicated));
      if (noop.replicas_repaired != 0 || noop.under_replicated != 0 ||
          noop.objects_checked != 4) {
        std::printf("FAIL: single-shard sync was not a no-op\n");
        return 1;
      }
      last_sim_time += solo->clock.Now();
    }
  }

  std::printf(
      "faults_injected_total=%lld retries_total=%lld retry_exhausted=%lld\n",
      static_cast<long long>(reg.counter("faults.injected_total")->value()),
      static_cast<long long>(reg.counter("retry.retries_total")->value()),
      static_cast<long long>(reg.counter("retry.exhausted_total")->value()));
  bench::NoteSimTime(last_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
