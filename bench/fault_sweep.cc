// FAULT-1: page latency and recovery effort as the fault rate rises. The
// same query-select-present-browse session runs under increasingly hostile
// link conditions; the table reports what the user experienced (sessions
// completed, time to first page) and what the recovery machinery spent to
// deliver it (faults absorbed, retries, breaker transitions). A final
// dead-link phase drives the circuit breaker through its open/half-open
// cycle so the exported snapshot carries every fault metric family.

#include <cstdio>
#include <string>
#include <vector>

#include "minos/core/presentation_manager.h"
#include "minos/obs/metrics.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"
#include "minos/storage/archiver.h"
#include "minos/storage/block_cache.h"
#include "minos/text/markup.h"
#include "minos/voice/synthesizer.h"
#include "scenario_lib.h"

namespace minos {
namespace {

object::MultimediaObject TextObject(storage::ObjectId id,
                                    const text::Document& doc) {
  object::MultimediaObject obj(id);
  obj.descriptor().layout.width = 48;
  obj.descriptor().layout.height = 12;
  obj.SetTextPart(doc).ok();
  text::TextFormatter formatter(obj.descriptor().layout);
  const size_t n = formatter.Paginate(obj.text_part()).value().size();
  for (size_t i = 0; i < n; ++i) {
    object::VisualPageSpec page;
    page.text_page = static_cast<uint32_t>(i + 1);
    obj.descriptor().pages.push_back(page);
  }
  obj.Archive().ok();
  return obj;
}

object::MultimediaObject AudioObject(storage::ObjectId id,
                                     const text::Document& doc) {
  object::MultimediaObject obj(id);
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(doc);
  if (track.ok()) {
    obj.SetVoicePart(voice::VoiceDocument(std::move(track).value())).ok();
  }
  obj.SetTextPart(doc).ok();
  obj.descriptor().driving_mode = object::DrivingMode::kAudio;
  obj.Archive().ok();
  return obj;
}

struct SweepPoint {
  const char* label;
  server::FaultProfile profile;
};

int Run() {
  bench::PrintHeader("fault_sweep", "page latency under injected faults");
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  text::MarkupParser parser;
  auto report = parser.Parse(
      ".TITLE Field Report\n.CHAPTER Findings\n.PP\nThe hospital reviewed "
      "the radiographs on Thursday and found a hairline fracture.\n"
      ".CHAPTER Plan\n.PP\nA short arm cast for three weeks, then a follow "
      "up radiograph at the hospital.\n");
  if (!report.ok()) return 1;

  std::vector<SweepPoint> sweep;
  sweep.push_back({"none", server::FaultProfile::None()});
  {
    server::FaultProfile p;
    p.drop_rate = 0.05;
    sweep.push_back({"drop5", p});
  }
  sweep.push_back({"flaky", server::FaultProfile::Flaky()});
  sweep.push_back({"storm", server::FaultProfile::Storm()});

  std::printf("%-8s %-10s %-9s %-9s %-12s %-12s\n", "profile", "sessions",
              "faults", "retries", "first_pg_ms", "p99_open_ms");

  Micros last_sim_time = 0;
  for (const SweepPoint& point : sweep) {
    SimClock clock;
    storage::BlockDevice device("optical", 65536, 512,
                                storage::DeviceCostModel::OpticalDisk(),
                                true, &clock);
    storage::BlockCache cache(256);
    storage::Archiver archiver(&device, &cache);
    storage::VersionStore versions;
    server::Link link = server::Link::Ethernet(&clock);
    server::ObjectServer server(&archiver, &versions, &clock, &link);
    server::FaultInjector injector(point.profile, 0xFA17, &clock);
    link.SetFaultInjector(&injector);
    if (!server.Store(TextObject(1, *report)).ok()) return 1;
    if (!server.Store(AudioObject(2, *report)).ok()) return 1;

    render::Screen screen;
    server::Workstation workstation(&server, &screen, &clock);
    obs::Histogram* open_us = reg.histogram("fault_sweep.page_open_us");
    const int64_t retries_before =
        reg.counter("retry.retries_total")->value();

    int completed = 0;
    double first_page_ms = 0;
    const int kSessions = 12;
    for (int session = 0; session < kSessions; ++session) {
      auto browser = workstation.Query({"hospital"});
      if (!browser.ok()) continue;
      bool ok = true;
      for (storage::ObjectId id = 1; id <= 2 && ok; ++id) {
        const Micros before = clock.Now();
        ok = workstation.Present(id).ok();
        if (!ok) break;
        const Micros open_time = clock.Now() - before;
        open_us->Record(static_cast<double>(open_time));
        if (completed == 0 && id == 1) {
          first_page_ms =
              static_cast<double>(MicrosToMillis(open_time));
        }
        if (core::VisualBrowser* vb =
                workstation.presentation().visual_browser()) {
          while (vb->NextPage().ok()) {
          }
        }
      }
      if (ok) ++completed;
    }

    const obs::MetricsSnapshot snap = reg.Snapshot();
    const obs::HistogramSummary* h =
        snap.FindHistogram("fault_sweep.page_open_us");
    std::printf("%-8s %2d/%-7d %-9llu %-9lld %-12.1f %-12.1f\n", point.label,
                completed, kSessions,
                static_cast<unsigned long long>(injector.faults_injected()),
                static_cast<long long>(
                    reg.counter("retry.retries_total")->value() -
                    retries_before),
                first_page_ms, h != nullptr ? h->p99 / 1000.0 : 0.0);
    last_sim_time = clock.Now();
  }

  // Dead-link phase: every transfer drops until the breaker opens, then
  // the link heals and the half-open probe closes it again.
  {
    SimClock clock;
    storage::BlockDevice device("optical", 65536, 512,
                                storage::DeviceCostModel::Instant(), true,
                                &clock);
    storage::BlockCache cache(256);
    storage::Archiver archiver(&device, &cache);
    storage::VersionStore versions;
    server::Link link = server::Link::Ethernet(&clock);
    server::ObjectServer server(&archiver, &versions, &clock, &link);
    server::FaultProfile dead;
    dead.drop_rate = 1.0;
    server::FaultInjector injector(dead, 0xDEAD, &clock);
    link.SetFaultInjector(&injector);
    server::CircuitBreaker::Options options;
    options.failure_threshold = 4;
    link.ConfigureBreaker(options);
    if (!server.Store(TextObject(1, *report)).ok()) return 1;

    server.Fetch(1).ok();  // Trips the breaker.
    server.Fetch(1).ok();  // Fails fast while open.
    const bool opened =
        link.breaker().state() == server::CircuitBreaker::State::kOpen;
    injector.set_profile(server::FaultProfile::None());  // The link heals.
    clock.Advance(options.cooldown_us);
    const bool recovered = server.Fetch(1).ok();
    std::printf("breaker: opened=%s recovered_after_cooldown=%s\n",
                opened ? "yes" : "NO", recovered ? "yes" : "NO");
    last_sim_time += clock.Now();
  }

  // MTTR sweep: mean time to recovery, measured as the span from the
  // breaker opening to the first successful fetch once the link heals,
  // across breaker configurations. The cooldown dominates the figure:
  // a short cooldown probes (and recovers) sooner, a long one keeps
  // failing fast on a link that is already healthy again.
  {
    struct BreakerConfig {
      int threshold;
      Micros cooldown;
    };
    const std::vector<BreakerConfig> configs = {
        {2, MillisToMicros(50)},
        {4, MillisToMicros(250)},
        {6, MillisToMicros(1000)},
    };
    obs::Histogram* mttr_us = reg.histogram("fault_sweep.mttr_us");
    std::printf("%-10s %-12s %-10s\n", "threshold", "cooldown_ms",
                "mttr_ms");
    for (const BreakerConfig& config : configs) {
      SimClock clock;
      storage::BlockDevice device("optical", 65536, 512,
                                  storage::DeviceCostModel::Instant(),
                                  true, &clock);
      storage::BlockCache cache(256);
      storage::Archiver archiver(&device, &cache);
      storage::VersionStore versions;
      server::Link link = server::Link::Ethernet(&clock);
      server::ObjectServer server(&archiver, &versions, &clock, &link);
      server::FaultProfile dead;
      dead.drop_rate = 1.0;
      server::FaultInjector injector(dead, 0xD1E, &clock);
      link.SetFaultInjector(&injector);
      server::CircuitBreaker::Options options;
      options.failure_threshold = config.threshold;
      options.cooldown_us = config.cooldown;
      link.ConfigureBreaker(options);
      if (!server.Store(TextObject(1, *report)).ok()) return 1;

      // Drive fetches into the dead link until the breaker opens.
      for (int attempt = 0; attempt < 8; ++attempt) {
        if (link.breaker().state() ==
            server::CircuitBreaker::State::kOpen) {
          break;
        }
        server.Fetch(1).ok();
      }
      if (link.breaker().state() != server::CircuitBreaker::State::kOpen) {
        std::printf("FAIL: breaker never opened at threshold %d\n",
                    config.threshold);
        return 1;
      }
      const Micros opened_at = clock.Now();
      injector.set_profile(server::FaultProfile::None());  // Heals now.
      // Poll like a session would: failed-fast attempts cost nothing,
      // so recovery lands on the first probe past the cooldown.
      Micros recovered_at = 0;
      for (int poll = 0; poll < 4096; ++poll) {
        if (server.Fetch(1).ok()) {
          recovered_at = clock.Now();
          break;
        }
        clock.Advance(MillisToMicros(5));
      }
      if (recovered_at == 0) {
        std::printf("FAIL: no recovery after heal (cooldown %lld us)\n",
                    static_cast<long long>(config.cooldown));
        return 1;
      }
      const Micros mttr = recovered_at - opened_at;
      mttr_us->Record(static_cast<double>(mttr));
      std::printf("%-10d %-12.0f %-10.1f\n", config.threshold,
                  static_cast<double>(config.cooldown) / 1000.0,
                  static_cast<double>(mttr) / 1000.0);
      last_sim_time += clock.Now();
    }
  }

  std::printf(
      "faults_injected_total=%lld retries_total=%lld retry_exhausted=%lld\n",
      static_cast<long long>(reg.counter("faults.injected_total")->value()),
      static_cast<long long>(reg.counter("retry.retries_total")->value()),
      static_cast<long long>(reg.counter("retry.exhausted_total")->value()));
  bench::NoteSimTime(last_sim_time);
  return 0;
}

}  // namespace
}  // namespace minos

int main() { return minos::Run(); }
