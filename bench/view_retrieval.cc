// VIEW-1: views and miniatures vs whole-image retrieval.
// For several image sizes, compares (a) fetching the whole image, (b)
// fetching only a view region, and (c) transferring a miniature first and
// then one view region — in bytes over the link and in simulated time on
// a cold optical-disk server. This is the §2 argument: "When a view is
// defined on the representation image the system has to transfer only the
// data of the view ... and not the whole image".

#include <cstdio>

#include "minos/image/miniature.h"
#include "minos/server/object_server.h"
#include "scenario_lib.h"

namespace minos {
namespace {

struct Sample {
  uint64_t bytes;
  Micros time;
};

int Run() {
  bench::PrintHeader("VIEW-1", "view retrieval vs whole image");
  std::printf("%-12s %-22s %-22s %-22s %-10s\n", "image", "full(KB,ms)",
              "view(KB,ms)", "mini+view(KB,ms)", "speedup");

  for (int size : {256, 512, 1024, 2048}) {
    // A fresh cold server per size.
    SimClock clock;
    storage::BlockDevice device(
        "optical", 1 << 17, 1024,
        storage::DeviceCostModel::OpticalDisk(), true, &clock);
    // The server's block buffer: each measurement starts cold (cleared),
    // but consecutive row reads within one operation hit the buffer.
    storage::BlockCache cache(4096);
    storage::Archiver archiver(&device, &cache);
    storage::VersionStore versions;
    server::Link link = server::Link::Ethernet(&clock);
    server::ObjectServer server(&archiver, &versions, &clock, &link);

    object::MultimediaObject obj(1);
    obj.AddImage(bench::XrayBitmap(size, size * 3 / 4)).ok();
    object::VisualPageSpec page;
    page.images.push_back({0, image::Rect{}});
    obj.descriptor().pages.push_back(page);
    obj.Archive().ok();
    if (!server.Store(obj).ok()) return 1;

    const image::Rect view{size / 2, size / 4, 128, 96};
    auto measure = [&](auto&& op) {
      cache.Clear();  // Every operation starts with a cold buffer.
      link.ResetStats();
      const Micros t0 = clock.Now();
      op();
      return Sample{link.bytes_transferred(), clock.Now() - t0};
    };

    const Sample full =
        measure([&] { server.FetchImage(1, 0).ok(); });
    const Sample region =
        measure([&] { server.FetchImageRegion(1, 0, view).ok(); });
    const Sample mini_then_view = measure([&] {
      // The miniature is built from the image and shipped, then the user
      // defines the view on it and fetches only that region.
      auto mini = image::Miniature::Build(obj.images()[0], 8);
      if (mini.ok()) link.Transfer(mini->ByteSize()).ok();
      server.FetchImageRegion(1, 0, view).ok();
    });

    const double speedup = region.time > 0
                               ? static_cast<double>(full.time) /
                                     static_cast<double>(region.time)
                               : 0.0;
    char label[32], c_full[64], c_view[64], c_mini[64];
    std::snprintf(label, sizeof(label), "%dx%d", size, size * 3 / 4);
    std::snprintf(c_full, sizeof(c_full), "%llu, %lld",
                  static_cast<unsigned long long>(full.bytes / 1024),
                  static_cast<long long>(MicrosToMillis(full.time)));
    std::snprintf(c_view, sizeof(c_view), "%llu, %lld",
                  static_cast<unsigned long long>(region.bytes / 1024),
                  static_cast<long long>(MicrosToMillis(region.time)));
    std::snprintf(c_mini, sizeof(c_mini), "%llu, %lld",
                  static_cast<unsigned long long>(
                      mini_then_view.bytes / 1024),
                  static_cast<long long>(
                      MicrosToMillis(mini_then_view.time)));
    std::printf("%-12s %-22s %-22s %-22s %-10.1f\n", label, c_full, c_view,
                c_mini, speedup);
  }
  std::printf("paper_claim=view and miniature retrieval beat whole-image "
              "transfer, increasingly so for larger images\n");
  return 0;
}

}  // namespace
}  // namespace minos

int main(int argc, char** argv) {
  minos::bench::ParseWorkers(argc, argv);
  return minos::Run();
}
