// City guide (§3 of the paper): a tourist information system. A large
// labeled city map is browsed through views; labels answer "what is
// this?" both ways (pattern -> highlight, click -> play/display); a
// designer-authored tour plays automatically with voice messages; and a
// process simulation walks the visitor through the old town with
// overwrites marking the route.
//
//   ./build/examples/city_guide

#include <cstdio>
#include <map>

#include "minos/core/presentation_manager.h"
#include "minos/image/miniature.h"
#include "minos/render/export.h"

using namespace minos;  // Example code only.

namespace {

image::Image CityMap(int width, int height) {
  image::GraphicsImage g(width, height);
  // The river.
  image::GraphicsObject river;
  river.shape = image::ShapeKind::kPolyline;
  river.vertices = {{0, height * 3 / 4},
                    {width / 3, height * 2 / 3},
                    {2 * width / 3, height * 3 / 4},
                    {width - 1, height * 2 / 3}};
  river.ink = 120;
  river.label = {
      image::LabelKind::kText, "river", {width / 2, height * 3 / 4}};
  g.Add(river);
  // Sights with voice labels.
  struct Sight {
    const char* name;
    int x, y;
  };
  const Sight sights[] = {
      {"old clock tower", width / 4, height / 3},
      {"market square", width / 2, height / 2},
      {"city museum", 2 * width / 3, height / 4},
      {"cathedral", width / 5, height / 2},
      {"harbour crane", 4 * width / 5, height * 2 / 3},
  };
  for (const Sight& s : sights) {
    image::GraphicsObject o;
    o.shape = image::ShapeKind::kCircle;
    o.vertices = {{s.x, s.y}};
    o.radius = 6;
    o.filled = true;
    o.label = {image::LabelKind::kVoice, s.name, {s.x + 10, s.y - 4}};
    g.Add(o);
  }
  // Hotels with text labels.
  for (int i = 0; i < 3; ++i) {
    image::GraphicsObject hotel;
    hotel.shape = image::ShapeKind::kPolygon;
    const int x = width / 6 + i * width / 3, y = height / 6;
    hotel.vertices = {{x, y}, {x + 14, y}, {x + 14, y + 10}, {x, y + 10}};
    hotel.label = {image::LabelKind::kText,
                   "hotel " + std::to_string(i + 1), {x, y - 8}};
    g.Add(hotel);
  }
  return image::Image::FromGraphics(std::move(g));
}

image::Image WalkOverwrite(int width, int height, int step) {
  image::GraphicsImage g(width, height);
  for (int i = 0; i <= step; ++i) {
    image::GraphicsObject footprint;
    footprint.shape = image::ShapeKind::kCircle;
    footprint.vertices = {{width / 5 + i * width / 12,
                           height / 2 - (i % 2) * height / 14}};
    footprint.radius = 3;
    footprint.filled = true;
    g.Add(footprint);
  }
  return image::Image::FromGraphics(std::move(g));
}

}  // namespace

int main() {
  constexpr int kWidth = 360, kHeight = 240;
  object::MultimediaObject guide(7);
  const uint32_t map = guide.AddImage(CityMap(kWidth, kHeight)).value();
  object::VisualPageSpec map_page;
  map_page.images.push_back({map, image::Rect{0, 0, kWidth, kHeight}});
  guide.descriptor().pages.push_back(map_page);

  // The guided tour.
  object::ObjectDescriptor::TourSpec tour;
  tour.image_index = map;
  tour.view_width = 130;
  tour.view_height = 90;
  tour.positions = {{20, 40}, {110, 70}, {180, 100}, {230, 40}};
  tour.audio_messages = {"welcome to the old town",
                         "the market square dates from the middle ages",
                         "", "the museum closes at six"};
  guide.descriptor().tours.push_back(tour);

  // The walking-tour process simulation: base map + route overwrites.
  object::ProcessSimulationSpec walk;
  walk.first_page = 0;
  walk.count = 5;
  walk.page_interval = MillisToMicros(700);
  walk.page_messages = {"we begin at the cathedral",
                        "cross the market square",
                        "the clock tower appears on the left",
                        "follow the river bank",
                        "the walk ends at the harbour"};
  for (int step = 0; step < 4; ++step) {
    const uint32_t overlay =
        guide.AddImage(WalkOverwrite(kWidth, kHeight, step)).value();
    object::VisualPageSpec page;
    page.kind = object::VisualPageSpec::Kind::kOverwrite;
    page.images.push_back({overlay, image::Rect{0, 0, kWidth, kHeight}});
    guide.descriptor().pages.push_back(page);
  }
  guide.descriptor().process_simulations.push_back(walk);
  if (Status s = guide.Archive(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  std::map<storage::ObjectId, object::MultimediaObject> library;
  library.emplace(guide.id(), guide);
  SimClock clock;
  render::Screen screen;
  core::PresentationManager pm(&screen, &clock);
  pm.SetResolver([&library](storage::ObjectId id)
                     -> StatusOr<object::MultimediaObject> {
    auto it = library.find(id);
    if (it == library.end()) return Status::NotFound("no object");
    return it->second;
  });
  if (!pm.Open(7).ok()) return 1;

  // 1. Label facilities.
  auto hotels = pm.HighlightLabelPattern(map, "hotel");
  std::printf("highlighted %zu objects matching 'hotel'\n", hotels->size());
  auto clicked = pm.SelectObjectAt(map, kWidth / 2, kHeight / 2);
  if (clicked.ok()) {
    std::printf("clicked the dot at the center: voice label '%s' played\n",
                clicked->c_str());
  }

  // 2. A view over the map: move it, grow it, labels play as it moves.
  auto view = pm.CreateView(map, image::Rect{0, 0, 120, 90});
  view->set_voice_option(true);
  auto encountered = view->Move(kWidth / 2 - 60, kHeight / 2 - 45);
  std::printf("moved the view to the center; %zu voice labels "
              "encountered on the way\n",
              encountered.size());
  view->Retrieve();
  std::printf("view transferred %llu bytes (the whole map would cost "
              "%llu)\n",
              static_cast<unsigned long long>(view->bytes_transferred()),
              static_cast<unsigned long long>(
                  guide.images()[map].ByteSize()));

  // 3. The guided tour, with an interruption after stop 2.
  auto paused = pm.PlayTour(0, 0, 2);
  std::printf("tour interrupted after stop %zu at %llds\n", *paused,
              static_cast<long long>(clock.Now() / 1000000));
  pm.PlayTour(0, *paused).ok();
  std::printf("tour finished: %zu stops, %zu voice messages, %zu labels "
              "played\n",
              pm.log().OfKind(core::EventKind::kTourStop).size(),
              pm.log().OfKind(core::EventKind::kVoiceMessagePlayed).size(),
              pm.log().OfKind(core::EventKind::kLabelPlayed).size());

  // 4. The walking-tour process simulation.
  core::VisualBrowser* browser = pm.visual_browser();
  browser->PlayProcessSimulation(0).ok();
  std::printf("process simulation played %zu auto pages\n",
              pm.log().OfKind(core::EventKind::kProcessPage).size());
  std::printf("\n--- final screen (route overwrites on the map) ---\n%s\n",
              render::ToAscii(screen.PageSnapshot(), 90).c_str());

  // 5. A miniature of the map (what the query interface would show).
  auto mini = image::Miniature::Build(guide.images()[map], 4);
  std::printf("map miniature: %dx%d, %llu bytes\n",
              mini->raster().width(), mini->raster().height(),
              static_cast<unsigned long long>(mini->ByteSize()));
  return 0;
}
