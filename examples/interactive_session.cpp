// Interactive session: a command-driven MINOS workstation. Commands come
// from stdin (one per line), mirroring the menu options the presentation
// manager shows, so the example can be scripted or driven by hand:
//
//   echo "query hospital
//   select
//   menu
//   next
//   find fracture
//   indicators
//   enter 0
//   return
//   quit" | ./build/examples/interactive_session
//
// The archive behind the session is sharded: two ObjectServer stacks
// (each with its own optical platter, cache and link) sit behind a
// ShardRouter, so `chaos` can darken one shard while the session keeps
// browsing off the replica, and `topology` shows the routing table.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "minos/format/object_formatter.h"
#include "minos/obs/export.h"
#include "minos/obs/metrics.h"
#include "minos/obs/trace.h"
#include "minos/render/export.h"
#include "minos/util/string_util.h"
#include "minos/server/repair.h"
#include "minos/server/shard_router.h"
#include "minos/server/workstation.h"

using namespace minos;  // Example code only.

namespace {

/// One shard of the session's archive fabric: its own platter, cache,
/// version store, link and fault injector, so chaos and breaker state
/// stay per-shard.
struct Shard {
  Shard(SimClock* clock, uint64_t seed)
      : device("optical", 1 << 14, 512,
               storage::DeviceCostModel::OpticalDisk(), true, clock),
        cache(256),
        archiver(&device, &cache),
        link(server::Link::Ethernet(clock)),
        server(&archiver, &versions, clock, &link),
        injector(server::FaultProfile::None(), seed, clock) {
    link.SetFaultInjector(&injector);
  }

  storage::BlockDevice device;
  storage::BlockCache cache;
  storage::Archiver archiver;
  storage::VersionStore versions;
  server::Link link;
  server::ObjectServer server;
  server::FaultInjector injector;
};

/// Populates the archive with a few objects worth browsing.
void Populate(server::ShardRouter* router) {
  format::ObjectFormatter formatter;
  {
    format::ObjectWorkspace ws("radiology-note");
    ws.SetSynthesis(R"(@MODE visual
@LAYOUT 46 12
.TITLE Radiology Note
.CHAPTER Findings
.PP
The radiograph shows a hairline fracture near the wrist joint. The
hospital will review the images on Thursday.
.CHAPTER Plan
.PP
A short arm cast for three weeks, then a follow up radiograph.
)");
    auto obj = formatter.Format(ws, 1);
    obj->SetAttribute("department", "radiology").ok();
    // Link to the admissions memo as a relevant object.
    object::RelevantObjectLink link;
    link.target = 2;
    link.indicator_label = "admissions memo";
    link.parent_text_anchor = object::TextAnchor{0, 40};
    obj->descriptor().relevant_objects.push_back(link);
    obj->Archive().ok();
    router->Store(*obj).ok();
  }
  {
    format::ObjectWorkspace ws("admissions-memo");
    ws.SetSynthesis(R"(.TITLE Admissions Memo
.PP
The hospital admitted the patient on Monday evening after the fall.
)");
    auto obj = formatter.Format(ws, 2);
    obj->Archive().ok();
    router->Store(*obj).ok();
  }
}

/// Prints the span tree of the most recent trace the tracer holds,
/// children indented under parents, each line carrying the span's
/// share of its root's duration — the "where did that request's time
/// go" view, inline in the session.
void PrintLastTrace(const obs::Tracer& tracer) {
  const std::vector<obs::SpanRecord> spans = tracer.OrderedSpans();
  uint64_t last_trace = 0;
  for (const obs::SpanRecord& s : spans) {
    last_trace = std::max(last_trace, s.trace_id);
  }
  if (last_trace == 0) {
    std::printf("! no traced requests yet (trace on, then browse)\n");
    return;
  }
  std::vector<const obs::SpanRecord*> members;
  Micros root_us = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.trace_id != last_trace) continue;
    members.push_back(&s);
    if (s.parent_span_id == 0) root_us += s.duration_us();
  }
  std::function<void(uint64_t, int)> print_subtree =
      [&](uint64_t parent, int indent) {
        for (const obs::SpanRecord* s : members) {
          if (s->parent_span_id != parent) continue;
          const double share =
              root_us > 0
                  ? 100.0 * static_cast<double>(s->duration_us()) /
                        static_cast<double>(root_us)
                  : 0.0;
          std::printf("%*s%s %lld us (%.1f%%)", indent * 2, "",
                      s->name.c_str(),
                      static_cast<long long>(s->duration_us()), share);
          for (const auto& [key, value] : s->tags) {
            std::printf(" %s=%s", key.c_str(), value.c_str());
          }
          std::printf("\n");
          print_subtree(s->span_id, indent + 1);
        }
      };
  std::printf("trace %llu (%zu spans, %lld us):\n",
              static_cast<unsigned long long>(last_trace), members.size(),
              static_cast<long long>(root_us));
  print_subtree(0, 1);
}

const char* BreakerName(server::CircuitBreaker::State s) {
  switch (s) {
    case server::CircuitBreaker::State::kClosed: return "closed";
    case server::CircuitBreaker::State::kOpen: return "open";
    case server::CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

}  // namespace

int main() {
  SimClock clock;
  std::vector<std::unique_ptr<Shard>> shards;
  shards.push_back(std::make_unique<Shard>(&clock, 0xC4A05));
  shards.push_back(std::make_unique<Shard>(&clock, 0xC4A06));
  std::vector<server::ObjectServer*> servers;
  for (auto& shard : shards) servers.push_back(&shard->server);
  // Replication 2 over 2 shards: every descriptor lives on both
  // platters, so one dark shard degrades latency, not availability.
  server::ShardRouter router(servers, &clock);
  // Anti-entropy repair over the same fabric: `chaos storm 1` can
  // darken a shard mid-session, `repair status` shows the replica debt
  // once it heals, `repair run` converges it.
  server::RepairManager repair_manager(&router, &clock,
                                       server::RepairOptions{});
  Populate(&router);

  render::Screen screen;
  // Session request tracer: `trace on` installs it across the fabric
  // (workstation, router, shards, links), `trace dump` prints the last
  // request's span tree. Declared before the workstation so it outlives
  // the prefetch drain in the workstation destructor.
  obs::Tracer session_tracer(&clock);
  server::Workstation workstation(&router, &screen, &clock);
  core::PresentationManager& pm = workstation.presentation();
  std::unique_ptr<server::MiniatureBrowser> miniatures;

  auto report = [](const Status& s) {
    if (!s.ok()) std::printf("! %s\n", s.ToString().c_str());
  };
  auto browser = [&]() -> core::VisualBrowser* {
    core::VisualBrowser* b = pm.visual_browser();
    if (b == nullptr) std::printf("! no visual object open\n");
    return b;
  };

  std::printf("MINOS interactive session (2-shard archive). Commands: "
              "query <word>, next miniature, select, open <id>, menu, "
              "next, prev, goto <n>, chapter, find <pattern>, indicators, "
              "enter <i>, return, screen, stats [path], "
              "trace [on|off|dump|json], topology, "
              "chaos [off|flaky|storm] [shard], "
              "repair [status|run], quit\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "query") {
      std::string word;
      in >> word;
      auto result = workstation.Query({word});
      if (!result.ok()) {
        report(result.status());
        continue;
      }
      miniatures = std::make_unique<server::MiniatureBrowser>(
          std::move(result).value());
      std::printf("%zu qualifying objects (miniatures ready)\n",
                  miniatures->size());
    } else if (cmd == "select") {
      if (!miniatures) {
        std::printf("! run a query first\n");
        continue;
      }
      auto id = miniatures->Select();
      if (!id.ok()) {
        report(id.status());
        continue;
      }
      report(workstation.Present(*id));
      std::printf("opened object %llu\n",
                  static_cast<unsigned long long>(*id));
    } else if (cmd == "open") {
      uint64_t id = 0;
      in >> id;
      report(workstation.Present(id));
    } else if (cmd == "menu") {
      if (core::VisualBrowser* b = browser()) {
        for (const std::string& option : b->MenuOptions()) {
          std::printf("[%s] ", option.c_str());
        }
        std::printf("\n");
      }
    } else if (cmd == "next") {
      if (core::VisualBrowser* b = browser()) report(b->NextPage());
    } else if (cmd == "prev") {
      if (core::VisualBrowser* b = browser()) report(b->PreviousPage());
    } else if (cmd == "goto") {
      int n = 0;
      in >> n;
      if (core::VisualBrowser* b = browser()) report(b->GotoPage(n));
    } else if (cmd == "chapter") {
      if (core::VisualBrowser* b = browser()) {
        report(b->NextUnit(text::LogicalUnit::kChapter));
      }
    } else if (cmd == "find") {
      std::string pattern;
      std::getline(in, pattern);
      if (core::VisualBrowser* b = browser()) {
        report(b->FindPattern(
            std::string(TrimWhitespace(pattern))));
      }
    } else if (cmd == "indicators") {
      for (const std::string& label : pm.VisibleRelevantIndicators()) {
        std::printf("-> %s\n", label.c_str());
      }
    } else if (cmd == "enter") {
      size_t i = 0;
      in >> i;
      report(pm.EnterRelevantObject(i));
      std::printf("depth=%zu\n", pm.depth());
    } else if (cmd == "return") {
      report(pm.ReturnFromRelevantObject());
      std::printf("depth=%zu\n", pm.depth());
    } else if (cmd == "screen") {
      std::printf("%s\n", render::ToAscii(screen.framebuffer(), 96).c_str());
    } else if (cmd == "stats") {
      // Session statistics so far: print the key families inline, or
      // export the whole registry as a minos.metrics.v1 snapshot when a
      // path is given ("stats session.json").
      std::string path;
      in >> path;
      obs::SnapshotMeta meta{"interactive_session", clock.Now()};
      if (!path.empty()) {
        report(obs::WriteSnapshotJson(obs::MetricsRegistry::Default(),
                                      path, meta));
        std::printf("wrote %s\n", path.c_str());
      } else {
        const obs::MetricsSnapshot snap =
            obs::MetricsRegistry::Default().Snapshot();
        for (size_t i = 0; i < shards.size(); ++i) {
          std::printf("shard %zu: cache %llu hits / %llu misses, link "
                      "%llu bytes in %llu transfers\n",
                      i,
                      static_cast<unsigned long long>(shards[i]->cache.hits()),
                      static_cast<unsigned long long>(
                          shards[i]->cache.misses()),
                      static_cast<unsigned long long>(
                          shards[i]->link.bytes_transferred()),
                      static_cast<unsigned long long>(
                          shards[i]->link.transfer_count()));
        }
        std::printf("router: %lld scatter queries, %lld failovers\n",
                    static_cast<long long>(
                        snap.CounterValue("router.scatter_queries")),
                    static_cast<long long>(
                        snap.CounterValue("router.failovers_total")));
        std::printf("navigation: %lld opens, %lld enters, depth=%.0f\n",
                    static_cast<long long>(
                        snap.CounterValue("presentation.opens")),
                    static_cast<long long>(
                        snap.CounterValue("presentation.enters")),
                    snap.GaugeValue("presentation.depth"));
        if (const obs::HistogramSummary* h =
                snap.FindHistogram("browser.visual.page_turn_us")) {
          std::printf("page turns: %lld (p50=%.0fus p99=%.0fus)\n",
                      static_cast<long long>(h->count), h->p50, h->p99);
        }
      }
    } else if (cmd == "trace") {
      // Request tracing controls. `on` threads the session tracer
      // through the whole fabric, so every subsequent browse action
      // records a span tree; `dump` prints the newest tree with each
      // span's share of the request; `json` emits the raw snapshot
      // (the presentation manager's own tracer when tracing is off).
      std::string sub;
      in >> sub;
      if (sub == "on") {
        workstation.SetTracer(&session_tracer);
        std::printf("tracing on (%zu spans held)\n",
                    session_tracer.OrderedSpans().size());
      } else if (sub == "off") {
        workstation.SetTracer(nullptr);
        std::printf("tracing off\n");
      } else if (sub == "dump" || sub.empty()) {
        PrintLastTrace(session_tracer);
      } else if (sub == "json") {
        std::printf("%s\n", session_tracer.OrderedSpans().empty()
                                ? pm.tracer().ToJson().c_str()
                                : session_tracer.ToJson().c_str());
      } else {
        std::printf("! trace subcommands: on, off, dump, json\n");
      }
    } else if (cmd == "topology") {
      // The routing table as the router sees it right now.
      for (size_t i = 0; i < shards.size(); ++i) {
        std::printf("shard %zu: %s (breaker %s, %llu faults injected, "
                    "%zu objects)\n",
                    i, router.IsLive(i) ? "live" : "lost",
                    BreakerName(shards[i]->link.breaker().state()),
                    static_cast<unsigned long long>(
                        shards[i]->injector.faults_injected()),
                    shards[i]->server.object_count());
      }
      std::printf("live %zu/%zu\n", router.live_count(),
                  router.shard_count());
    } else if (cmd == "chaos") {
      // Toggle fault profiles live, per shard or fleet-wide; retries,
      // failover and degradation absorb what the injectors throw.
      std::string profile;
      in >> profile;
      server::FaultProfile p;
      if (profile == "off") {
        p = server::FaultProfile::None();
      } else if (profile == "flaky") {
        p = server::FaultProfile::Flaky();
      } else if (profile == "storm") {
        p = server::FaultProfile::Storm();
      } else {
        std::printf("! chaos profiles: off, flaky, storm "
                    "(optionally followed by a shard index)\n");
        continue;
      }
      size_t target = shards.size();  // Fleet-wide by default.
      if (in >> target && target >= shards.size()) {
        std::printf("! no shard %zu (have %zu)\n", target, shards.size());
        continue;
      }
      uint64_t injected = 0;
      for (size_t i = 0; i < shards.size(); ++i) {
        if (target < shards.size() && i != target) continue;
        shards[i]->injector.set_profile(p);
        injected += shards[i]->injector.faults_injected();
      }
      std::printf("chaos %s on %s: drop=%.0f%% timeout=%.0f%% "
                  "corrupt=%.0f%% latency=%.0f%% (%llu faults injected "
                  "so far)\n",
                  profile.c_str(),
                  target < shards.size()
                      ? ("shard " + std::to_string(target)).c_str()
                      : "all shards",
                  p.drop_rate * 100, p.timeout_rate * 100,
                  p.corrupt_rate * 100, p.latency_rate * 100,
                  static_cast<unsigned long long>(injected));
    } else if (cmd == "repair") {
      // Anti-entropy controls: `status` shows the replica debt and
      // whether a sync is pending (a healed breaker or a degraded
      // store arms one), `run` exchanges catalog digests and
      // re-replicates whatever the live shards are missing.
      std::string sub;
      in >> sub;
      if (sub == "status" || sub.empty()) {
        const std::set<storage::ObjectId>& under =
            router.under_replicated();
        std::printf("repair: %s, %zu object(s) under-replicated",
                    repair_manager.sync_pending() ? "sync pending"
                                                  : "idle",
                    under.size());
        if (!under.empty()) {
          std::printf(" (ids:");
          for (storage::ObjectId id : under) {
            std::printf(" %llu", static_cast<unsigned long long>(id));
          }
          std::printf(")");
        }
        std::printf("\n");
      } else if (sub == "run") {
        const server::RepairReport r = repair_manager.Sync();
        std::printf("repair sync: %llu digest(s) exchanged (%llu "
                    "rejected), %llu object(s) checked, %llu replica(s) "
                    "repaired, %llu byte(s) shipped, %llu failure(s); "
                    "%llu still under-replicated, %llu pending\n",
                    static_cast<unsigned long long>(r.digests_exchanged),
                    static_cast<unsigned long long>(r.digests_rejected),
                    static_cast<unsigned long long>(r.objects_checked),
                    static_cast<unsigned long long>(r.replicas_repaired),
                    static_cast<unsigned long long>(r.bytes_shipped),
                    static_cast<unsigned long long>(r.repair_failures),
                    static_cast<unsigned long long>(r.under_replicated),
                    static_cast<unsigned long long>(r.pending));
      } else {
        std::printf("! repair subcommands: status, run\n");
      }
    } else {
      std::printf("! unknown command '%s'\n", cmd.c_str());
    }
    if (core::VisualBrowser* b = pm.visual_browser()) {
      std::printf("(page %d/%d, t=%lldms%s)\n", b->current_page(),
                  b->page_count(),
                  static_cast<long long>(MicrosToMillis(clock.Now())),
                  pm.current_degraded() ? ", degraded" : "");
    }
  }
  uint64_t total_bytes = 0;
  for (auto& shard : shards) total_bytes += shard->link.bytes_transferred();
  std::printf("session over: %zu presentation events, %llu bytes over "
              "%zu shard links\n",
              pm.log().size(),
              static_cast<unsigned long long>(total_bytes), shards.size());
  return 0;
}
