// Quickstart: author a small multimedia object from a synthesis file,
// archive it, store it at the object server, query it back by content,
// and browse its pages on the simulated workstation screen.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "minos/format/object_formatter.h"
#include "minos/render/export.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"

using namespace minos;  // Example code only; library code never does this.

int main() {
  // --- 1. An editing-state workspace with a synthesis file (§4). -------
  format::ObjectWorkspace workspace("quickstart-memo");
  workspace.SetSynthesis(R"(@MODE visual
@LAYOUT 48 14
.TITLE Welcome to MINOS
.CHAPTER Introduction
.PP
This memo was formatted by the declarative object formatter from a
synthesis file. Tags describe the *logical structure*; the formatter
decides the layout.
.CHAPTER Browsing
.PP
Use next page, previous page, or jump straight to a chapter. Pattern
browsing finds the next page containing a given pattern.
)");

  // --- 2. Format into a multimedia object and archive it. --------------
  format::ObjectFormatter formatter;
  auto object = formatter.Format(workspace, /*id=*/1);
  if (!object.ok()) {
    std::fprintf(stderr, "format: %s\n", object.status().ToString().c_str());
    return 1;
  }
  object->SetAttribute("author", "quickstart example").ok();
  if (Status s = object->Archive(); !s.ok()) {
    std::fprintf(stderr, "archive: %s\n", s.ToString().c_str());
    return 1;
  }

  // --- 3. A simulated optical-disk object server (§5). ------------------
  SimClock clock;
  storage::BlockDevice optical("optical", 1 << 14, 512,
                               storage::DeviceCostModel::OpticalDisk(),
                               /*write_once=*/true, &clock);
  storage::BlockCache cache(256);
  storage::Archiver archiver(&optical, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);
  if (!server.Store(*object).ok()) return 1;
  std::printf("archived object 1 (%llu blocks on the optical disk)\n",
              static_cast<unsigned long long>(optical.blocks_used()));

  // --- 4. Query by content and present. ---------------------------------
  render::Screen screen;
  server::Workstation workstation(&server, &screen, &clock);
  auto cards = workstation.Query({"pattern"});
  if (!cards.ok() || cards->empty()) {
    std::fprintf(stderr, "query found nothing\n");
    return 1;
  }
  auto id = cards->Select();
  if (!workstation.Present(*id).ok()) return 1;

  core::VisualBrowser* browser =
      workstation.presentation().visual_browser();
  std::printf("object %llu open: %d pages\n",
              static_cast<unsigned long long>(*id),
              browser->page_count());
  std::printf("menu: ");
  for (const std::string& option : browser->MenuOptions()) {
    std::printf("[%s] ", option.c_str());
  }
  std::printf("\n\n");

  // --- 5. Browse: next chapter, then find a pattern. --------------------
  browser->NextUnit(text::LogicalUnit::kChapter).ok();
  browser->FindPattern("Pattern browsing").ok();
  std::printf("--- the screen after 'find pattern' "
              "(page %d/%d) ---\n%s\n",
              browser->current_page(), browser->page_count(),
              render::ToAscii(screen.framebuffer(), 96).c_str());
  render::WritePgm(screen.framebuffer(), "quickstart_screen.pgm").ok();
  std::printf("wrote quickstart_screen.pgm (simulated workstation "
              "screen)\n");
  return 0;
}
