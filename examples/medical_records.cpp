// Medical records (§3 of the paper): a doctor files observations about an
// x-ray as an *audio-mode* object — "Doctors are notoriously bad typers!"
// The x-ray is attached as a visual logical message to the section of the
// speech that discusses it, so it appears on screen exactly while that
// section plays, and whenever browsing branches into it. The symmetric
// visual-mode twin pins the x-ray while the related text pages below.
//
//   ./build/examples/medical_records

#include <cstdio>

#include "minos/core/audio_browser.h"
#include "minos/core/visual_browser.h"
#include "minos/text/markup.h"
#include "minos/voice/recognizer.h"
#include "minos/voice/synthesizer.h"

using namespace minos;  // Example code only.

namespace {

image::Image MakeXray() {
  image::Bitmap bm(200, 140);
  // Bone shaft with a hairline crack.
  bm.FillRect(image::Rect{20, 60, 160, 22}, 120);
  for (int i = 0; i < 12; ++i) bm.Set(120 + i / 3, 60 + i, 20);
  return image::Image::FromBitmap(std::move(bm));
}

constexpr char kDictation[] =
    ".CHAPTER History\n.PP\n"
    "The patient fell from a bicycle onto the right hand two days ago. "
    "Swelling developed overnight around the wrist.\n"
    ".CHAPTER Radiology\n.PP\n"
    "The radiograph shows a hairline fracture of the distal radius. "
    "There is no displacement and the joint surface is intact.\n"
    ".CHAPTER Plan\n.PP\n"
    "Immobilize in a short arm cast for three weeks. Repeat the "
    "radiograph after cast removal to confirm healing.\n";

}  // namespace

int main() {
  // The dictation, synthesized into digitized voice with ground-truth
  // alignment (our substitute for the voice digitizer hardware).
  text::MarkupParser parser;
  auto dictation = parser.Parse(kDictation);
  if (!dictation.ok()) return 1;
  voice::SpeechSynthesizer synth{voice::SpeakerParams{}};
  auto track = synth.Synthesize(*dictation);
  if (!track.ok()) return 1;

  // Sample span of the Radiology chapter (the section about the x-ray).
  voice::VoiceDocument vdoc(std::move(track).value());
  vdoc.TagFromAlignment(*dictation, voice::EditingLevel::kChapters);
  const auto& chapters = vdoc.Components(text::LogicalUnit::kChapter);
  const voice::SampleSpan radiology = chapters[1].span;

  // --- The audio-mode object -------------------------------------------
  object::MultimediaObject record(1042);
  record.descriptor().driving_mode = object::DrivingMode::kAudio;
  record.SetAttribute("patient", "case 1042").ok();
  const uint32_t xray = record.AddImage(MakeXray()).value();
  object::VisualLogicalMessage message;
  message.text = "XRAY right wrist, case 1042";
  message.image_index = xray;
  message.voice_anchors.push_back(
      object::VoiceAnchor{radiology.begin, radiology.end});
  record.descriptor().visual_messages.push_back(message);
  record.SetVoicePart(std::move(vdoc)).ok();
  if (!record.Archive().ok()) return 1;

  SimClock clock;
  render::Screen screen;
  core::MessagePlayer messages(&clock, voice::SpeakerParams{});
  core::EventLog log;
  auto browser = core::AudioBrowser::Open(&record, &screen, &messages,
                                          &clock, &log);
  if (!browser.ok()) return 1;

  std::printf("playing the dictation (%llds of voice, %d voice pages)\n",
              static_cast<long long>(
                  record.voice_part().pcm().Duration() / 1000000),
              (*browser)->page_count());
  (*browser)->Play().ok();

  const auto shown = log.OfKind(core::EventKind::kVisualMessageShown);
  const auto hidden = log.OfKind(core::EventKind::kVisualMessageHidden);
  std::printf("x-ray appeared at %llds and disappeared at %llds — exactly "
              "the Radiology section of the speech\n",
              static_cast<long long>(shown[0].at / 1000000),
              static_cast<long long>(hidden[0].at / 1000000));

  // Browsing near the fracture: rewind two short pauses and replay.
  (*browser)->RewindPauses(2, voice::PauseKind::kShort).ok();
  std::printf("rewound 2 short pauses back to sample %zu; replaying\n",
              (*browser)->position());
  (*browser)->Play().ok();

  // Spoken pattern browsing over the insertion-time recognition index.
  voice::RecognizerParams rp;
  rp.hit_rate = 0.9;
  voice::Recognizer recognizer({"fracture", "cast", "radiograph"}, rp);
  (*browser)->SetRecognitionIndex(voice::Recognizer::BuildIndex(
      recognizer.Recognize(record.voice_part().track()).utterances));
  (*browser)->GotoPage(1).ok();
  if ((*browser)->FindSpokenPattern("cast").ok()) {
    std::printf("spoken pattern 'cast' found: jumped to voice page %d\n",
                (*browser)->current_page());
  }

  // --- The symmetric visual-mode twin ----------------------------------
  object::MultimediaObject note(1043);
  note.descriptor().layout.width = 44;
  note.descriptor().layout.height = 7;  // Lower half under the x-ray.
  auto doc2 = parser.Parse(kDictation);
  note.SetTextPart(std::move(doc2).value()).ok();
  const uint32_t xray2 = note.AddImage(MakeXray()).value();
  {
    text::TextFormatter formatter(note.descriptor().layout);
    const size_t pages = formatter.Paginate(note.text_part()).value().size();
    for (size_t i = 0; i < pages; ++i) {
      object::VisualPageSpec page;
      page.text_page = static_cast<uint32_t>(i + 1);
      note.descriptor().pages.push_back(page);
    }
  }
  const std::string& contents = note.text_part().contents();
  object::VisualLogicalMessage pinned;
  pinned.text = "XRAY right wrist, case 1042";
  pinned.image_index = xray2;
  const size_t begin = contents.find("The radiograph");
  const size_t end = contents.find("Immobilize");
  pinned.text_anchors.push_back(object::TextAnchor{begin, end});
  note.descriptor().visual_messages.push_back(pinned);
  if (!note.Archive().ok()) return 1;

  core::EventLog vlog;
  auto vbrowser = core::VisualBrowser::Open(&note, &screen, &messages,
                                            &clock, &vlog);
  if (!vbrowser.ok()) return 1;
  std::printf("\nvisual twin: %d pages\n", (*vbrowser)->page_count());
  (*vbrowser)->FindPattern("radiograph").ok();
  std::printf("while reading the radiology text the x-ray stays pinned "
              "at the top: %s\n",
              vlog.OfKind(core::EventKind::kVisualMessageShown).empty()
                  ? "NO"
                  : "yes");
  std::printf("\nsymmetric capabilities demonstrated: the same record "
              "browses by voice and by text.\n");
  return 0;
}
