// Office filing (§3/§4 of the paper): documents are formed from synthesis
// files, archived on the optical disk, deduplicated through archiver
// pointers, mailed inside and outside the organization, and found again
// through content queries with miniature browsing. A transparency set
// compares two experiment curves on the same axes — "a much more
// effective way of presentation of information than just reading
// sequential text".
//
//   ./build/examples/office_filing

#include <cstdio>

#include "minos/format/archive_mailer.h"
#include "minos/format/workspace_store.h"
#include "minos/format/object_formatter.h"
#include "minos/image/raster.h"
#include "minos/server/object_server.h"
#include "minos/server/workstation.h"

using namespace minos;  // Example code only.

namespace {

// An "experiment curve" drawn as a polyline, used as a transparency.
image::Image CurveOverlay(int width, int height, int which) {
  image::GraphicsImage g(width, height);
  image::GraphicsObject curve;
  curve.shape = image::ShapeKind::kPolyline;
  for (int x = 0; x <= 10; ++x) {
    const int px = 10 + x * (width - 20) / 10;
    const int base = height - 20;
    const int py =
        which == 0 ? base - x * x * (height - 40) / 100
                   : base - x * (height - 40) / 12;
    curve.vertices.push_back({px, py});
  }
  curve.ink = 255;
  curve.label = {image::LabelKind::kText,
                 which == 0 ? "series A" : "series B",
                 {width - 70, 14 + which * 12}};
  g.Add(curve);
  return image::Image::FromGraphics(std::move(g));
}

image::Image Axes(int width, int height) {
  image::GraphicsImage g(width, height);
  image::GraphicsObject axes;
  axes.shape = image::ShapeKind::kPolyline;
  axes.vertices = {{10, 10}, {10, height - 20}, {width - 10, height - 20}};
  axes.ink = 200;
  g.Add(axes);
  return image::Image::FromGraphics(std::move(g));
}

}  // namespace

int main() {
  SimClock clock;
  storage::BlockDevice optical("optical", 1 << 15, 512,
                               storage::DeviceCostModel::OpticalDisk(),
                               /*write_once=*/true, &clock);
  storage::BlockCache cache(512);
  storage::Archiver archiver(&optical, &cache);
  storage::VersionStore versions;
  server::Link link = server::Link::Ethernet(&clock);
  server::ObjectServer server(&archiver, &versions, &clock, &link);
  format::ArchiveMailer mailer(&archiver, &versions, &clock);

  // --- 1. The quarterly report with a transparency comparison. ---------
  format::ObjectWorkspace ws("q3-report");
  ws.SetSynthesis(R"(@MODE visual
@LAYOUT 46 12
.TITLE Q3 Throughput Report
.PP
The two measurement series of the conversion experiment are compared
on the same axes by superimposing transparencies, as an active speaker
would with foils.
@IMAGE axes
@TRANSPARENCY series_a
@TRANSPARENCY series_b
)");
  ws.AddDataFile("axes", storage::DataType::kImage,
                 Axes(260, 160).Serialize());
  ws.AddDataFile("series_a", storage::DataType::kImage,
                 CurveOverlay(260, 160, 0).Serialize());
  ws.AddDataFile("series_b", storage::DataType::kImage,
                 CurveOverlay(260, 160, 1).Serialize());

  // Editing objects live on the workstation's magnetic disk, retrieved
  // by name (§5): save the workspace, then keep working from the disk
  // copy.
  storage::BlockDevice magnetic("workstation-disk", 1 << 12, 512,
                                storage::DeviceCostModel::MagneticDisk(),
                                /*write_once=*/false, &clock);
  storage::FileStore files(&magnetic);
  format::WorkspaceStore editing_disk(&files);
  editing_disk.Save(ws).ok();
  auto reloaded = editing_disk.Load("q3-report");
  std::printf("workspace '%s' saved to and reloaded from the "
              "workstation disk\n",
              reloaded->name().c_str());

  format::ObjectFormatter formatter;
  auto report = formatter.Format(*reloaded, 301);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  report->SetAttribute("department", "records").ok();
  report->Archive().ok();
  server.Store(*report).ok();
  std::printf("archived the Q3 report (object 301)\n");

  // --- 2. A second memo shares the axes image via an archiver pointer.
  const std::string axes_payload = Axes(260, 160).Serialize();
  auto shared_axes = archiver.Append(axes_payload);
  archiver.Flush().ok();
  format::ObjectWorkspace ws2("axes-memo");
  ws2.SetSynthesis(".PP\nSee the shared axes template attached.\n"
                   "@IMAGE axes\n");
  ws2.AddDataFile("axes", storage::DataType::kImage, axes_payload);
  auto memo = formatter.Format(ws2, 302);
  memo->Archive().ok();
  auto memo_bytes =
      mailer.SerializeWithArchiverRefs(*memo, {{"image:0", *shared_axes}});
  mailer.ArchiveBytes(302, *memo_bytes).ok();
  auto full_size = memo->SerializeArchived();
  std::printf("memo 302 stored with an archiver pointer: %zu bytes "
              "instead of %zu (dedup)\n",
              memo_bytes->size(), full_size->size());

  // --- 3. Mail the memo outside the organization. -----------------------
  auto mailed = mailer.MailOutside(302);
  std::printf("mailed outside: %zu bytes, self-contained "
              "(pointers resolved)\n",
              mailed->size());

  // --- 4. Content query + miniature browsing + presentation. -----------
  render::Screen screen;
  server::Workstation workstation(&server, &screen, &clock);
  auto cards = workstation.Query({"transparencies"});
  std::printf("query 'transparencies': %zu qualifying objects\n",
              cards->size());
  auto selected = cards->Select();
  workstation.Present(*selected).ok();
  core::VisualBrowser* browser =
      workstation.presentation().visual_browser();

  // Page through the transparency set: curves accumulate on the axes.
  const int base_page = browser->page_count() - 2;
  browser->GotoPage(base_page).ok();
  std::printf("axes page shown; superimposing the series...\n");
  browser->NextPage().ok();  // + series A
  browser->NextPage().ok();  // + series B
  std::printf("both series now on the same axes (transparency events: "
              "%zu)\n",
              workstation.presentation()
                  .log()
                  .OfKind(core::EventKind::kTransparencyShown)
                  .size());

  // The user chooses to see only series B projected on the axes.
  browser->ShowSelectedTransparencies(0, {1}).ok();
  std::printf("user-selected superimposition: only series B displayed\n");

  std::printf("\ntotal simulated session time: %lld ms "
              "(disk busy %lld ms, link moved %llu bytes)\n",
              static_cast<long long>(MicrosToMillis(clock.Now())),
              static_cast<long long>(
                  MicrosToMillis(optical.stats().busy_time)),
              static_cast<unsigned long long>(link.bytes_transferred()));
  return 0;
}
